//! The Adaptive Grid (AG) method — §IV-B of the paper.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{DenseGrid, Domain, GeoDataset, Rect, SummedAreaTable, MAX_GRID_CELLS};
use dpgrid_mech::{LaplaceMechanism, PrivacyBudget};

use crate::guidelines::{self, NEstimate, DEFAULT_ALPHA, DEFAULT_C, DEFAULT_C2};
use crate::inference::two_level_inference;
use crate::noise::{CountNoise, NoiseKind};
use crate::{Build, CoreError, Result, Synopsis};

/// Configuration for [`AdaptiveGrid`].
///
/// The paper's `A_{m₁,c₂}` notation corresponds to
/// `AgConfig::guideline(epsilon).with_m1(m1).with_c2(c2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Fraction of ε spent on the first level (`α`, default 0.5).
    pub alpha: f64,
    /// Guideline-1 constant used for the `m₁` formula (default 10).
    pub c: f64,
    /// Guideline-2 constant (default `c / 2 = 5`).
    pub c2: f64,
    /// Explicit first-level grid size; `None` uses
    /// `m₁ = max(10, ¼·√(N·ε/c))`.
    pub m1: Option<usize>,
    /// Upper bound on any cell's second-level grid size (memory guard;
    /// default 1024, far above anything Guideline 2 produces on the
    /// paper's datasets).
    pub m2_cap: usize,
    /// How `N` is obtained for the `m₁` formula.
    pub n_estimate: NEstimate,
    /// Noise distribution (extension; the paper uses Laplace).
    pub noise: NoiseKind,
    /// Run the two-level constrained inference of §IV-B (on by default;
    /// the off switch exists for the `ablate` experiment).
    pub constrained_inference: bool,
    /// Partition every first-level cell into the same `m₂ × m₂` grid
    /// instead of adapting `m₂` to the noisy count (ablation of
    /// Guideline 2's adaptivity).
    pub m2_override: Option<usize>,
}

impl AgConfig {
    /// The paper's recommended configuration: `α = 0.5`, `c = 10`,
    /// `c₂ = 5`, `m₁` from the formula.
    pub fn guideline(epsilon: f64) -> Self {
        AgConfig {
            epsilon,
            alpha: DEFAULT_ALPHA,
            c: DEFAULT_C,
            c2: DEFAULT_C2,
            m1: None,
            m2_cap: 1024,
            n_estimate: NEstimate::Exact,
            noise: NoiseKind::Laplace,
            constrained_inference: true,
            m2_override: None,
        }
    }

    /// Switches the noise distribution.
    pub fn with_noise(mut self, noise: NoiseKind) -> Self {
        self.noise = noise;
        self
    }

    /// Disables constrained inference (ablation).
    pub fn without_inference(mut self) -> Self {
        self.constrained_inference = false;
        self
    }

    /// Forces a fixed second-level grid size for every cell (ablation
    /// of Guideline 2's adaptivity).
    pub fn with_fixed_m2(mut self, m2: usize) -> Self {
        self.m2_override = Some(m2);
        self
    }

    /// Overrides the first-level grid size (the paper's `A_{m₁,·}`).
    pub fn with_m1(mut self, m1: usize) -> Self {
        self.m1 = Some(m1);
        self
    }

    /// Overrides the budget split `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the Guideline-2 constant `c₂`.
    pub fn with_c2(mut self, c2: f64) -> Self {
        self.c2 = c2;
        self
    }

    /// Switches to a noisy estimate of `N` consuming `fraction` of ε.
    pub fn with_noisy_n(mut self, fraction: f64) -> Self {
        self.n_estimate = NEstimate::Noisy { fraction };
        self
    }

    fn validate(&self) -> Result<()> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 || self.alpha >= 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "alpha must lie strictly inside (0, 1), got {}",
                self.alpha
            )));
        }
        if !self.c.is_finite() || self.c <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "c must be positive, got {}",
                self.c
            )));
        }
        if !self.c2.is_finite() || self.c2 <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "c2 must be positive, got {}",
                self.c2
            )));
        }
        if self.m1 == Some(0) {
            return Err(CoreError::InvalidConfig("m1 must be ≥ 1".into()));
        }
        if self.m2_cap == 0 {
            return Err(CoreError::InvalidConfig("m2_cap must be ≥ 1".into()));
        }
        if self.m2_override == Some(0) {
            return Err(CoreError::InvalidConfig("m2_override must be ≥ 1".into()));
        }
        self.n_estimate.validate()?;
        Ok(())
    }
}

/// One first-level cell of the adaptive grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AgCell {
    /// Second-level grid size chosen by Guideline 2.
    m2: usize,
    /// Constrained-inference-adjusted total (`v′`); equals the sum of
    /// `leaves` by construction.
    adjusted_total: f64,
    /// Consistent second-level counts as an `m₂ × m₂` grid over the
    /// cell's rectangle.
    leaves: DenseGrid,
    /// Prefix sums over `leaves` for O(1) partial-cell answering.
    sat: SummedAreaTable,
}

/// Public diagnostic view of one first-level cell (used by the parameter
/// experiments and examples).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgCellInfo {
    /// The cell's rectangle.
    pub rect: Rect,
    /// Its second-level grid size.
    pub m2: usize,
    /// Its constrained-inference-adjusted total count.
    pub adjusted_total: f64,
}

/// The **AG** synopsis: a coarse `m₁ × m₁` grid whose cells are
/// adaptively re-partitioned by their noisy density, with two-level
/// constrained inference.
///
/// * dense first-level cells get fine second-level grids (non-uniformity
///   error dominates there);
/// * sparse cells stay coarse (noise error dominates there);
/// * constrained inference merges the two observations of every cell.
///
/// Building takes two passes over the data (one per level), exactly as
/// §IV-C advertises.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveGrid {
    domain: Domain,
    epsilon: f64,
    alpha: f64,
    m1: usize,
    /// Row-major `m₁²` first-level cells.
    cells: Vec<AgCell>,
    /// Adjusted first-level totals as a grid, for O(1) interior sums.
    totals: DenseGrid,
    totals_sat: SummedAreaTable,
}

impl AdaptiveGrid {
    /// Builds the synopsis over `dataset` with the given configuration.
    /// Thin delegation to the uniform [`Build`] trait.
    pub fn build(dataset: &GeoDataset, config: &AgConfig, rng: &mut impl Rng) -> Result<Self> {
        <AdaptiveGrid as Build>::build(dataset, config, rng)
    }
}

impl Build for AdaptiveGrid {
    type Config = AgConfig;

    fn build(dataset: &GeoDataset, config: &AgConfig, rng: &mut impl Rng) -> Result<Self> {
        config.validate()?;
        let mut budget = PrivacyBudget::new(config.epsilon)?;
        let domain = *dataset.domain();

        // Optional noisy-N step.
        let n = match config.n_estimate {
            NEstimate::Exact => dataset.len() as f64,
            NEstimate::Noisy { fraction } => {
                let eps_n = budget.spend_fraction(fraction)?;
                let mech = LaplaceMechanism::for_count(eps_n)?;
                mech.randomize(dataset.len() as f64, rng).max(0.0)
            }
        };

        // First-level size: explicit override or the paper's formula.
        let m1 = match config.m1 {
            Some(m) => m,
            None => guidelines::suggested_m1(n.round() as usize, config.epsilon, config.c),
        };

        // Level-1: count, then noise with α·ε.
        let eps_l1 = budget.spend_fraction(config.alpha)?;
        let level1 = DenseGrid::count(dataset, m1, m1)?;
        let noise_l1 = CountNoise::new(config.noise, eps_l1)?;
        let noisy_l1: Vec<f64> = level1
            .values()
            .iter()
            .map(|&v| noise_l1.randomize(v, rng))
            .collect();

        // Level-2 sizes via Guideline 2 on the *noisy* counts.
        let eps_l2 = budget.spend_all();
        if eps_l2 <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "no budget left for the second level".into(),
            ));
        }
        let m2s: Vec<usize> = match config.m2_override {
            Some(m2) => vec![m2.min(config.m2_cap); noisy_l1.len()],
            None => noisy_l1
                .iter()
                .map(|&v| guidelines::guideline2(v, eps_l2, config.c2).min(config.m2_cap))
                .collect(),
        };
        let total_leaves: usize = m2s.iter().map(|m| m * m).sum();
        if total_leaves > MAX_GRID_CELLS {
            return Err(CoreError::InvalidConfig(format!(
                "AG would allocate {total_leaves} leaf cells (cap {MAX_GRID_CELLS}); \
                 raise c2 or lower m1"
            )));
        }

        // Second pass: count points into their leaf cells.
        let mut leaf_counts: Vec<Vec<f64>> = m2s.iter().map(|m| vec![0.0; m * m]).collect();
        let d = domain.rect();
        for p in dataset.points() {
            let (c1, r1) = domain
                .cell_of(p, m1, m1)
                .expect("dataset point outside its own domain");
            let idx = r1 * m1 + c1;
            let m2 = m2s[idx];
            // Cell-local continuous coordinates in [0, m2).
            let u = ((p.x - d.x0()) / d.width() * m1 as f64 - c1 as f64) * m2 as f64;
            let v = ((p.y - d.y0()) / d.height() * m1 as f64 - r1 as f64) * m2 as f64;
            let c2 = (u.max(0.0) as usize).min(m2 - 1);
            let r2 = (v.max(0.0) as usize).min(m2 - 1);
            leaf_counts[idx][r2 * m2 + c2] += 1.0;
        }

        // Noise the leaves with (1−α)·ε, then run constrained inference.
        let noise_l2 = CountNoise::new(config.noise, eps_l2)?;
        let mut cells = Vec::with_capacity(m1 * m1);
        let mut totals = DenseGrid::zeros(domain, m1, m1)?;
        for r1 in 0..m1 {
            for c1 in 0..m1 {
                let idx = r1 * m1 + c1;
                let m2 = m2s[idx];
                let mut leaves = std::mem::take(&mut leaf_counts[idx]);
                noise_l2.randomize_slice(&mut leaves, rng);
                let adjusted_total = if config.constrained_inference {
                    two_level_inference(noisy_l1[idx], config.alpha, &mut leaves).adjusted_total
                } else {
                    // Ablation: ignore the first-level observation when
                    // answering; leaves stand alone and the cell total is
                    // their raw sum (keeping interior answering
                    // consistent with border answering).
                    leaves.iter().sum()
                };

                let rect = domain.cell_rect(m1, m1, c1, r1);
                let cell_domain = Domain::new(rect)?;
                let mut leaf_grid = DenseGrid::zeros(cell_domain, m2, m2)?;
                leaf_grid.values_mut().copy_from_slice(&leaves);
                let sat = leaf_grid.sat();
                totals.set(c1, r1, adjusted_total);
                cells.push(AgCell {
                    m2,
                    adjusted_total,
                    leaves: leaf_grid,
                    sat,
                });
            }
        }
        let totals_sat = totals.sat();
        Ok(AdaptiveGrid {
            domain,
            epsilon: config.epsilon,
            alpha: config.alpha,
            m1,
            cells,
            totals,
            totals_sat,
        })
    }
}

impl AdaptiveGrid {
    /// The first-level grid size `m₁`.
    #[inline]
    pub fn m1(&self) -> usize {
        self.m1
    }

    /// The budget split `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total number of leaf cells across all first-level cells.
    pub fn leaf_count(&self) -> usize {
        self.cells.iter().map(|c| c.m2 * c.m2).sum()
    }

    /// Diagnostic view of first-level cell `(col, row)`.
    pub fn cell_info(&self, col: usize, row: usize) -> Option<AgCellInfo> {
        if col >= self.m1 || row >= self.m1 {
            return None;
        }
        let cell = &self.cells[row * self.m1 + col];
        Some(AgCellInfo {
            rect: self.domain.cell_rect(self.m1, self.m1, col, row),
            m2: cell.m2,
            adjusted_total: cell.adjusted_total,
        })
    }

    /// Diagnostic view of every first-level cell, row-major.
    pub fn cells_info(&self) -> Vec<AgCellInfo> {
        (0..self.m1 * self.m1)
            .map(|i| self.cell_info(i % self.m1, i / self.m1).unwrap())
            .collect()
    }
}

impl Synopsis for AdaptiveGrid {
    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn answer(&self, query: &Rect) -> f64 {
        let Some(q) = self.domain.clip(query) else {
            return 0.0;
        };
        let d = self.domain.rect();
        let m1 = self.m1;
        let mf = m1 as f64;
        // Continuous first-level coordinates of the query edges.
        let u0 = ((q.x0() - d.x0()) / d.width() * mf).clamp(0.0, mf);
        let u1 = ((q.x1() - d.x0()) / d.width() * mf).clamp(0.0, mf);
        let v0 = ((q.y0() - d.y0()) / d.height() * mf).clamp(0.0, mf);
        let v1 = ((q.y1() - d.y0()) / d.height() * mf).clamp(0.0, mf);
        if u1 <= u0 || v1 <= v0 {
            return 0.0;
        }
        // Touched index ranges (inclusive).
        let c0 = (u0.floor() as usize).min(m1 - 1);
        let c1 = ((u1 - f64::EPSILON).floor() as usize).clamp(c0, m1 - 1);
        let r0 = (v0.floor() as usize).min(m1 - 1);
        let r1 = ((v1 - f64::EPSILON).floor() as usize).clamp(r0, m1 - 1);
        // Fully-covered index window [fc0, fc1) × [fr0, fr1).
        let fc0 = u0.ceil() as usize;
        let fc1 = (u1.floor() as usize).min(m1);
        let fr0 = v0.ceil() as usize;
        let fr1 = (v1.floor() as usize).min(m1);

        let mut sum = 0.0;
        // Interior: one prefix-sum lookup over the adjusted totals.
        if fc0 < fc1 && fr0 < fr1 {
            sum += self.totals_sat.sum(fc0, fr0, fc1, fr1);
        }
        // Border cells: answer from the cell's leaf grid.
        for r in r0..=r1 {
            for c in c0..=c1 {
                let interior = c >= fc0 && c < fc1 && r >= fr0 && r < fr1;
                if interior {
                    continue;
                }
                let cell = &self.cells[r * m1 + c];
                sum += cell.leaves.answer_uniform(&cell.sat, &q);
            }
        }
        sum
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        let mut out = Vec::with_capacity(self.leaf_count());
        for cell in &self.cells {
            for (_, _, rect, v) in cell.leaves.iter_cells() {
                out.push((rect, v));
            }
        }
        out
    }

    /// O(1) from the first-level prefix sums (adjusted totals equal the
    /// leaf sums by the constrained-inference invariant) — no cell
    /// export needed.
    fn total_estimate(&self) -> f64 {
        self.totals_sat.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::{generators, Point};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn uniform_dataset(n: usize, seed: u64) -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        generators::uniform(domain, n, &mut rng(seed))
    }

    #[test]
    fn config_validation() {
        let ds = uniform_dataset(100, 0);
        for bad in [
            AgConfig::guideline(0.0),
            AgConfig::guideline(1.0).with_alpha(0.0),
            AgConfig::guideline(1.0).with_alpha(1.0),
            AgConfig::guideline(1.0).with_c2(0.0),
            AgConfig::guideline(1.0).with_m1(0),
        ] {
            assert!(
                AdaptiveGrid::build(&ds, &bad, &mut rng(1)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn m1_defaults_to_formula() {
        let ds = uniform_dataset(4_000, 1);
        let ag = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(2)).unwrap();
        // max(10, √(4000/10)/4) = max(10, 5) = 10.
        assert_eq!(ag.m1(), 10);
        let ag2 =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0).with_m1(16), &mut rng(2)).unwrap();
        assert_eq!(ag2.m1(), 16);
    }

    #[test]
    fn dense_cells_get_finer_partitions() {
        // All mass in one corner: that corner's m2 must exceed the empty
        // corner's.
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let mut points = Vec::new();
        let mut r = rng(3);
        for _ in 0..20_000 {
            points.push(Point::new(
                rand::Rng::random_range(&mut r, 0.0..2.0),
                rand::Rng::random_range(&mut r, 0.0..2.0),
            ));
        }
        let ds = GeoDataset::from_points(points, domain).unwrap();
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0).with_m1(5), &mut rng(4)).unwrap();
        let dense = ag.cell_info(0, 0).unwrap();
        let empty = ag.cell_info(4, 4).unwrap();
        assert!(
            dense.m2 > empty.m2,
            "dense m2 {} should exceed empty m2 {}",
            dense.m2,
            empty.m2
        );
        assert!(dense.adjusted_total > 1_000.0);
        assert!(empty.adjusted_total < 100.0);
    }

    #[test]
    fn consistency_total_matches_cells() {
        let ds = uniform_dataset(2_000, 5);
        let ag = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(6)).unwrap();
        // Σ leaves == Σ adjusted totals (constrained inference).
        let leaf_total: f64 = ag.cells().iter().map(|(_, v)| v).sum();
        let cell_total: f64 = ag.cells_info().iter().map(|c| c.adjusted_total).sum();
        assert!((leaf_total - cell_total).abs() < 1e-6);
        // And the whole-domain query answers the same number.
        let whole = *ds.domain().rect();
        assert!((ag.answer(&whole) - leaf_total).abs() < 1e-6);
    }

    #[test]
    fn huge_epsilon_recovers_exact_counts() {
        let ds = uniform_dataset(3_000, 7);
        let mut cfg = AgConfig::guideline(1e9).with_m1(8);
        // Keep the leaf allocation small: at ε = 10⁹ Guideline 2 would
        // otherwise ask for gigantic second-level grids.
        cfg.m2_cap = 16;
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(8)).unwrap();
        for q in [
            Rect::new(0.0, 0.0, 5.0, 5.0).unwrap(),
            Rect::new(1.25, 2.5, 8.75, 9.0).unwrap(),
            Rect::new(0.3, 0.3, 0.4, 0.4).unwrap(),
        ] {
            let truth = ds.count_in(&q) as f64;
            let got = ag.answer(&q);
            // Sub-cell queries keep a small uniformity error even without
            // noise; cell-aligned ones are exact.
            assert!(
                (got - truth).abs() < truth.max(30.0) * 0.25 + 1e-6,
                "query {q:?}: got {got}, truth {truth}"
            );
        }
        let aligned = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        assert!((ag.answer(&aligned) - ds.count_in(&aligned) as f64).abs() < 1e-3);
    }

    #[test]
    fn answer_matches_bruteforce_over_leaves() {
        // The interior/border decomposition must agree with summing every
        // leaf's fractional overlap.
        let ds = uniform_dataset(1_000, 9);
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0).with_m1(6), &mut rng(10)).unwrap();
        let queries = [
            Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            Rect::new(0.7, 1.3, 9.2, 8.8).unwrap(),
            Rect::new(2.0, 2.0, 4.0, 4.0).unwrap(),
            Rect::new(0.05, 0.05, 0.15, 9.95).unwrap(),
            Rect::new(3.33, 0.0, 3.34, 10.0).unwrap(),
        ];
        for q in queries {
            let brute: f64 = ag
                .cells()
                .iter()
                .map(|(rect, v)| v * rect.overlap_fraction(&q))
                .sum();
            let fast = ag.answer(&q);
            assert!(
                (fast - brute).abs() < 1e-6,
                "query {q:?}: fast {fast} vs brute {brute}"
            );
        }
    }

    #[test]
    fn leaves_partition_domain() {
        let ds = uniform_dataset(500, 11);
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(0.5).with_m1(4), &mut rng(12)).unwrap();
        let area: f64 = ag.cells().iter().map(|(r, _)| r.area()).sum();
        assert!((area - ds.domain().area()).abs() < 1e-6);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = uniform_dataset(800, 13);
        let a = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(42)).unwrap();
        let b = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(42)).unwrap();
        let q = Rect::new(1.0, 1.0, 6.0, 7.0).unwrap();
        assert_eq!(a.answer(&q), b.answer(&q));
    }

    #[test]
    fn misses_domain_answers_zero() {
        let ds = uniform_dataset(100, 14);
        let ag = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(15)).unwrap();
        let q = Rect::new(100.0, 100.0, 200.0, 200.0).unwrap();
        assert_eq!(ag.answer(&q), 0.0);
    }

    #[test]
    fn m2_cap_respected() {
        let ds = uniform_dataset(50_000, 16);
        let mut cfg = AgConfig::guideline(1.0).with_m1(2);
        cfg.m2_cap = 3;
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(17)).unwrap();
        for info in ag.cells_info() {
            assert!(info.m2 <= 3);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_answers() {
        let ds = uniform_dataset(400, 18);
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0).with_m1(5), &mut rng(19)).unwrap();
        let json = serde_json::to_string(&ag).unwrap();
        let back: AdaptiveGrid = serde_json::from_str(&json).unwrap();
        let q = Rect::new(0.5, 2.0, 7.7, 9.1).unwrap();
        assert!((back.answer(&q) - ag.answer(&q)).abs() < 1e-12);
    }

    #[test]
    fn without_inference_still_consistent_for_answering() {
        let ds = uniform_dataset(2_000, 30);
        let cfg = AgConfig::guideline(1.0).with_m1(5).without_inference();
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(31)).unwrap();
        // Interior totals equal leaf sums even without CI.
        let whole = *ds.domain().rect();
        let leaf_total: f64 = ag.cells().iter().map(|(_, v)| v).sum();
        assert!((ag.answer(&whole) - leaf_total).abs() < 1e-6);
        // And CI actually changes the release.
        let with_ci =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0).with_m1(5), &mut rng(31)).unwrap();
        let q = Rect::new(1.0, 1.0, 7.0, 9.0).unwrap();
        assert_ne!(ag.answer(&q), with_ci.answer(&q));
    }

    #[test]
    fn inference_reduces_error_statistically() {
        // The ablation direction: on repeated builds, AG with CI has a
        // lower mean absolute error on a mid-size query than without.
        let ds = uniform_dataset(5_000, 32);
        let q = Rect::new(0.5, 0.5, 6.5, 8.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        let (mut err_ci, mut err_raw) = (0.0, 0.0);
        for seed in 0..60 {
            let base = AgConfig::guideline(0.2).with_m1(6);
            let a = AdaptiveGrid::build(&ds, &base, &mut rng(seed)).unwrap();
            err_ci += (a.answer(&q) - truth).abs();
            let b = AdaptiveGrid::build(&ds, &base.without_inference(), &mut rng(seed)).unwrap();
            err_raw += (b.answer(&q) - truth).abs();
        }
        assert!(
            err_ci < err_raw,
            "CI total error {err_ci} should beat raw {err_raw}"
        );
    }

    #[test]
    fn fixed_m2_override_applies_everywhere() {
        let ds = uniform_dataset(3_000, 33);
        let cfg = AgConfig::guideline(1.0).with_m1(4).with_fixed_m2(3);
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(34)).unwrap();
        for info in ag.cells_info() {
            assert_eq!(info.m2, 3);
        }
        assert_eq!(ag.leaf_count(), 4 * 4 * 9);
        // Zero override rejected.
        let bad = AgConfig::guideline(1.0).with_fixed_m2(0);
        assert!(AdaptiveGrid::build(&ds, &bad, &mut rng(35)).is_err());
    }

    #[test]
    fn geometric_noise_without_ci_keeps_integers() {
        let ds = uniform_dataset(1_000, 36);
        let cfg = AgConfig::guideline(1.0)
            .with_m1(4)
            .with_noise(crate::NoiseKind::Geometric)
            .without_inference();
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(37)).unwrap();
        for (_, v) in ag.cells() {
            assert_eq!(v, v.round(), "geometric AG leaves must be integral");
        }
    }

    #[test]
    fn alpha_range_produces_similar_m1() {
        // α only affects budgets, not m1 selection.
        let ds = uniform_dataset(10_000, 20);
        for alpha in [0.25, 0.5, 0.75] {
            let ag = AdaptiveGrid::build(
                &ds,
                &AgConfig::guideline(1.0).with_alpha(alpha),
                &mut rng(21),
            )
            .unwrap();
            assert_eq!(ag.m1(), 10);
        }
    }
}
