//! Temporal subsystem throughput — the acceptance benchmark of
//! `dpgrid-stream` and the windowed read path.
//!
//! Three axes, matching how the subsystem is deployed:
//!
//! * **ingest points/sec** — staging throughput of
//!   `StreamIngestor::push` with the watermark held inside one epoch
//!   (no seals), the hot path every arriving point takes;
//! * **epoch-close latency** — the milliseconds one seal costs
//!   (`seal_through`: grid build + noise + publish) at several staged
//!   epoch sizes;
//! * **windowed vs single-release query rate** — `answer_window`
//!   fanning one batch over the covering epoch surfaces, against the
//!   same rectangles answered on a single release — the read-side
//!   price of epoch slicing.
//!
//! Medians are recorded to `BENCH_stream_throughput.json` at the
//! workspace root (same shape as the other `BENCH_*.json` files).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use dpgrid_core::{EpochLayout, Release};
use dpgrid_geo::{Domain, Point, Rect};
use dpgrid_mech::BudgetSchedule;
use dpgrid_serve::{answer_window, Catalog, QueryEngine, QueryRequest, WindowQuery};
use dpgrid_stream::StreamIngestor;

const EPS: f64 = 1.0;
/// Epochs published into the windowed read-path engine.
const EPOCHS: u64 = 8;
/// Rectangles per measured query batch.
const RECTS: usize = 1_024;

fn domain() -> Domain {
    Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap()
}

fn ingestor(horizon: usize) -> StreamIngestor {
    StreamIngestor::new(
        "bench",
        domain(),
        EpochLayout::new(0.0, 60.0).unwrap(),
        BudgetSchedule::uniform(EPS, horizon).unwrap(),
    )
    .unwrap()
    .with_seed(7)
    .with_epoch_capacity(1 << 22)
}

/// Deterministic in-domain points, cheap enough to not dominate push.
fn point(i: u64) -> Point {
    Point::new(
        0.05 + ((i as f64) * 7.3) % 9.9,
        0.05 + ((i as f64) * 3.1) % 9.9,
    )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    label: String,
    value: f64,
    unit: &'static str,
}

fn bench_stream_throughput(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("stream_throughput");

    // --- Ingest: staging throughput, no seals (all timestamps land in
    // one epoch; the sink never sees a release).
    const BATCH: u64 = 200_000;
    let mut samples = Vec::new();
    for _ in 0..5 {
        let mut ing = ingestor(4);
        let mut sink: Vec<(String, Release)> = Vec::new();
        let t = Instant::now();
        for i in 0..BATCH {
            let ts = (i % 59) as f64;
            ing.push(point(i), ts, &mut sink).unwrap();
        }
        black_box(ing.open_epochs());
        assert!(sink.is_empty(), "no epoch may seal mid-measurement");
        samples.push(t.elapsed().as_nanos() as f64);
    }
    let ns = median(&mut samples);
    let ingest_pps = BATCH as f64 / (ns / 1e9);
    rows.push(Row {
        label: "ingest".into(),
        value: ingest_pps,
        unit: "points_per_sec",
    });

    // --- Epoch close: seal latency at three staged sizes.
    for staged in [10_000u64, 50_000, 200_000] {
        let mut samples = Vec::new();
        for _ in 0..3 {
            let mut ing = ingestor(4);
            let mut sink: Vec<(String, Release)> = Vec::new();
            for i in 0..staged {
                ing.push(point(i), (i % 59) as f64, &mut sink).unwrap();
            }
            let t = Instant::now();
            let sealed = ing.seal_through(0, &mut sink).unwrap();
            samples.push(t.elapsed().as_nanos() as f64);
            assert_eq!(sealed.len(), 1);
            assert_eq!(sealed[0].points, staged as usize);
        }
        let ns = median(&mut samples);
        rows.push(Row {
            label: format!("epoch_close_{staged}"),
            value: ns / 1e6,
            unit: "ms",
        });
    }

    // --- Read path: windowed vs single-release query rate over the
    // same rectangles, surfaces warm in both cases.
    let mut catalog = Catalog::new();
    let mut ing = ingestor(EPOCHS as usize);
    for epoch in 0..EPOCHS {
        for i in 0..20_000u64 {
            ing.push(
                point(i ^ epoch),
                epoch as f64 * 60.0 + (i % 59) as f64,
                &mut catalog,
            )
            .unwrap();
        }
    }
    ing.flush(&mut catalog).unwrap();
    let engine = QueryEngine::new(catalog);
    let rects: Vec<Rect> = (0..RECTS)
        .map(|i| {
            let x = (i as f64 * 0.37) % 8.0;
            let y = (i as f64 * 0.73) % 8.0;
            Rect::new(x, y, x + 1.5, y + 1.5).unwrap()
        })
        .collect();

    let window = WindowQuery::new("bench", 0, EPOCHS, rects.clone()).unwrap();
    // Warm every surface once before timing.
    black_box(answer_window(&engine, &window).unwrap());
    let mut samples = Vec::new();
    for _ in 0..15 {
        let t = Instant::now();
        black_box(answer_window(&engine, &window).unwrap());
        samples.push(t.elapsed().as_nanos() as f64);
    }
    let window_ns = median(&mut samples);
    let window_qps = RECTS as f64 / (window_ns / 1e9);
    rows.push(Row {
        label: format!("window_{EPOCHS}_epochs"),
        value: window_qps,
        unit: "queries_per_sec",
    });

    let single = QueryRequest::new("bench@epoch:0", rects.clone());
    black_box(engine.answer(&single).unwrap());
    let mut samples = Vec::new();
    for _ in 0..15 {
        let t = Instant::now();
        black_box(engine.answer(&single).unwrap());
        samples.push(t.elapsed().as_nanos() as f64);
    }
    let single_ns = median(&mut samples);
    let single_qps = RECTS as f64 / (single_ns / 1e9);
    rows.push(Row {
        label: "single_release".into(),
        value: single_qps,
        unit: "queries_per_sec",
    });

    // Criterion-visible wrappers for trend tracking.
    group.bench_function("window_8_epochs", |b| {
        b.iter(|| black_box(answer_window(&engine, &window).unwrap()))
    });
    group.bench_function("single_release", |b| {
        b.iter(|| black_box(engine.answer(&single).unwrap()))
    });
    group.finish();

    for r in &rows {
        println!("stream_throughput/{}: {:.1} {}", r.label, r.value, r.unit);
    }
    println!(
        "stream_throughput: window/single rate ratio {:.3}",
        window_qps / single_qps
    );
    write_json(&rows, window_qps / single_qps);
}

/// Records the measurements to `BENCH_stream_throughput.json` at the
/// workspace root (perf-trajectory files live in-repo).
fn write_json(rows: &[Row], window_ratio: f64) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_stream_throughput.json"
    );
    let mut out = format!(
        "{{\n  \"bench\": \"stream_throughput\",\n  \
         \"epochs\": {EPOCHS},\n  \"rects_per_batch\": {RECTS},\n  \
         \"window_vs_single_ratio\": {window_ratio:.3},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"value\": {:.1}, \"unit\": \"{}\"}}{}\n",
            r.label,
            r.value,
            r.unit,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("stream_throughput: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_stream_throughput);
criterion_main!(benches);
