//! Figures 5 and 6 — the final six-method comparison.
//!
//! For every dataset and ε the paper compares, left to right: KD-hybrid,
//! UG at the experimentally best size, Privelet at that size, AG at the
//! experimentally best `m₁`, UG at the suggested size, AG at the
//! suggested size. Figure 5 reports relative error, Figure 6 absolute
//! error; both come from the same runs, so this module computes both and
//! [`super::fig6`] reuses its output.
//!
//! "Experimentally best" sizes are found with a pilot sweep (fewer
//! trials), mirroring how the paper selected them from Figure 2/4.

use dpgrid_core::guidelines;
use dpgrid_geo::generators::PaperDataset;

use super::{best_by_mean, size_ladder, DataBundle, ExpContext};
use crate::method::Method;
use crate::report::{abs_profile_table, by_size_table, profile_table};
use crate::runner::MethodEval;
use crate::Result;

/// The six final-comparison evaluations for one (dataset, ε) panel.
pub struct FinalPanel {
    /// Dataset name.
    pub dataset: &'static str,
    /// Privacy budget.
    pub epsilon: f64,
    /// Evaluations in the paper's order.
    pub evals: Vec<MethodEval>,
}

/// Runs pilot sweeps + the final comparison for every dataset and ε.
pub fn final_comparison(ctx: &ExpContext) -> Result<Vec<FinalPanel>> {
    let dir = ctx.dir("fig5");
    let mut panels = Vec::new();
    for which in PaperDataset::ALL {
        let bundle = DataBundle::prepare(which, ctx)?;
        let n = bundle.dataset.len();
        for &eps in &ctx.epsilons {
            let ug_suggested = guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
            let m1_suggested = guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C);

            // Pilot sweeps to find the empirically best sizes (1 trial).
            let mut pilot_ctx = ctx.clone();
            pilot_ctx.trials = 1;
            let ug_sizes = size_ladder(ug_suggested);
            let ug_methods: Vec<Method> = ug_sizes.iter().map(|&m| Method::ug(m)).collect();
            let stem = format!("{}_eps{eps}_pilot_ug", which.name());
            let pilot_ug = bundle.run_panel(&dir, &stem, &ug_methods, eps, &pilot_ctx)?;
            let ug_best = ug_sizes[best_by_mean(&pilot_ug)];

            let m1_sizes = size_ladder(m1_suggested);
            let ag_methods: Vec<Method> = m1_sizes.iter().map(|&m| Method::ag(m)).collect();
            let stem = format!("{}_eps{eps}_pilot_ag", which.name());
            let pilot_ag = bundle.run_panel(&dir, &stem, &ag_methods, eps, &pilot_ctx)?;
            let ag_best = m1_sizes[best_by_mean(&pilot_ag)];

            // Final comparison, paper order.
            let methods = vec![
                Method::KdHybrid,
                Method::ug(ug_best),
                Method::privelet(ug_best),
                Method::ag(ag_best),
                Method::ug_suggested(),
                Method::ag_suggested(),
            ];
            let stem = format!("{}_eps{eps}_final", which.name());
            let evals = bundle.run_panel(&dir, &stem, &methods, eps, ctx)?;
            panels.push(FinalPanel {
                dataset: which.name(),
                epsilon: eps,
                evals,
            });
        }
    }
    Ok(panels)
}

/// Runs the experiment and renders the Figure 5 (relative error) views.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let panels = final_comparison(ctx)?;
    let mut md = String::from("## Figure 5 — final comparison (relative error)\n\n");
    for p in &panels {
        let title = format!("fig5: {} ε={}", p.dataset, p.epsilon);
        md.push_str(&by_size_table(&title, &p.evals).to_markdown());
        md.push_str(&profile_table(&format!("{title} (profile)"), &p.evals).to_markdown());
    }
    Ok(md)
}

/// Renders the Figure 6 (absolute error) view of the same runs; called
/// by [`super::fig6`].
pub fn run_absolute(ctx: &ExpContext) -> Result<String> {
    let panels = final_comparison(ctx)?;
    let dir = ctx.dir("fig6");
    let mut md = String::from("## Figure 6 — final comparison (absolute error)\n\n");
    for p in &panels {
        let title = format!("fig6: {} ε={}", p.dataset, p.epsilon);
        let t = abs_profile_table(&title, &p.evals);
        t.write_csv(&dir.join(format!("{}_eps{}_abs.csv", p.dataset, p.epsilon)))?;
        md.push_str(&t.to_markdown());
    }
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_fig5_test"));
        ctx.scale = 2048;
        ctx.queries_per_size = 4;
        let md = run(&ctx).unwrap();
        assert!(md.contains("Khy"));
        assert!(md.contains("fig5: storage"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
