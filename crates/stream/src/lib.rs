//! Streaming ingestion: timestamped points in, epoch-sliced releases
//! out.
//!
//! The batch pipeline publishes one release per dataset; a *stream* has
//! no final dataset, so this crate slices it into fixed-length time
//! **epochs** (see [`dpgrid_core::EpochLayout`]) and publishes one
//! differentially private release per epoch through the ordinary
//! [`Pipeline`]/[`ReleaseSink`] path:
//!
//! * [`StreamIngestor`] buffers timestamped points into bounded
//!   per-epoch staging buffers and, as the event-time watermark
//!   advances, seals finished epochs: each sealed epoch's points become
//!   a [`dpgrid_geo::GeoDataset`], its ε share is drawn from a
//!   [`BudgetSchedule`] (sequential composition across epochs — the
//!   shares sum to the configured total), and the release is published
//!   under the epoch key `{keyspace}@epoch:{i}`. Because the output is
//!   a plain keyed release, every existing sink works unchanged: a
//!   serving catalog, a sharded fan-out, a test collector.
//! * [`Compactor`] retires old fine epochs: once a tier-aligned run of
//!   epochs has aged out of the fine-retention window it is merged into
//!   a single coarser release ([`dpgrid_core::merge_releases`] — exact
//!   under the uniformity answer model, privacy-free post-processing),
//!   re-published under the tier key `{keyspace}@epoch:{start}-{end}`,
//!   and the fine releases are evicted through
//!   [`ReleaseSink::evict_release`].
//!
//! # Epoch contract
//!
//! Epochs seal in order behind the watermark (the maximum event time
//! seen, minus the configured allowed lateness in epochs). A point
//! whose epoch already sealed is rejected with a typed
//! [`StreamError::LateArrival`] — never silently folded into a later
//! epoch, which would make the published surfaces lie about when mass
//! occurred. Epochs that received **no** points publish nothing and
//! spend no ε; the set of published epoch keys therefore reveals which
//! epochs were non-empty, exactly as the keyspace itself reveals which
//! datasets exist. Deployments that need cover releases can push
//! sentinel-free synthetic traffic or pre-pad epochs upstream.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use dpgrid_core::{EpochLayout, Method, Release};
//! use dpgrid_geo::{Domain, Point};
//! use dpgrid_mech::BudgetSchedule;
//! use dpgrid_stream::StreamIngestor;
//!
//! let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
//! let layout = EpochLayout::new(0.0, 60.0).unwrap();
//! let schedule = BudgetSchedule::uniform(1.0, 4).unwrap();
//! let mut ingestor = StreamIngestor::new("taxi", domain, layout, schedule)
//!     .unwrap()
//!     .with_method(Method::ug(6))
//!     .with_seed(7);
//!
//! let mut sink: HashMap<String, Release> = HashMap::new();
//! for minute in 0..3u64 {
//!     for i in 0..50 {
//!         let p = Point::new(1.0 + (i % 8) as f64, 2.0 + (i % 5) as f64);
//!         ingestor.push(p, minute as f64 * 60.0 + i as f64, &mut sink).unwrap();
//!     }
//! }
//! // Epochs 0 and 1 sealed as the watermark reached epoch 2…
//! assert!(sink.contains_key("taxi@epoch:0"));
//! assert!(sink.contains_key("taxi@epoch:1"));
//! // …and the still-open epoch 2 seals on flush.
//! ingestor.flush(&mut sink).unwrap();
//! assert!(sink.contains_key("taxi@epoch:2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use dpgrid_core::{
    epoch_key, merge_releases, CoreError, EpochLayout, EpochRange, Method, Pipeline, Release,
    ReleaseSink,
};
use dpgrid_geo::{Domain, GeoError, Point};
use dpgrid_mech::{BudgetSchedule, MechError};

/// Errors of the streaming layer.
#[derive(Debug)]
pub enum StreamError {
    /// A point's timestamp maps to an epoch that already sealed.
    LateArrival {
        /// The epoch the late point belongs to.
        epoch: u64,
        /// First epoch still accepting points.
        frontier: u64,
    },
    /// A point's timestamp is non-finite or before the layout origin.
    BeforeOrigin {
        /// The offending timestamp.
        timestamp: f64,
    },
    /// A point lies outside the ingestor's public domain.
    OutsideDomain {
        /// The offending coordinates.
        point: (f64, f64),
    },
    /// An epoch's bounded staging buffer is full.
    BufferOverflow {
        /// The epoch whose buffer overflowed.
        epoch: u64,
        /// The configured per-epoch capacity.
        capacity: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// Failure in the underlying build/publish/accounting layers
    /// (budget exhaustion surfaces here as a
    /// [`dpgrid_mech::MechError`]).
    Core(CoreError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::LateArrival { epoch, frontier } => write!(
                f,
                "late arrival: epoch {epoch} already sealed (frontier is {frontier})"
            ),
            StreamError::BeforeOrigin { timestamp } => write!(
                f,
                "timestamp {timestamp} is non-finite or before the epoch origin"
            ),
            StreamError::OutsideDomain { point } => write!(
                f,
                "point ({}, {}) lies outside the ingestion domain",
                point.0, point.1
            ),
            StreamError::BufferOverflow { epoch, capacity } => write!(
                f,
                "epoch {epoch} staging buffer is full (capacity {capacity})"
            ),
            StreamError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StreamError::Core(e) => write!(f, "publish failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Core(e)
    }
}

impl From<MechError> for StreamError {
    fn from(e: MechError) -> Self {
        StreamError::Core(CoreError::Mech(e))
    }
}

impl From<GeoError> for StreamError {
    fn from(e: GeoError) -> Self {
        StreamError::Core(CoreError::Geo(e))
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StreamError>;

/// Receipt for one epoch's published release.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedEpoch {
    /// The sealed epoch index.
    pub epoch: u64,
    /// The release key the epoch published under
    /// (`{keyspace}@epoch:{epoch}`).
    pub key: String,
    /// The ε the epoch's release spent (its [`BudgetSchedule`] share).
    pub epsilon: f64,
    /// Number of points the epoch ingested.
    pub points: usize,
}

/// Default per-epoch staging capacity (points).
pub const DEFAULT_EPOCH_CAPACITY: usize = 1 << 18;

/// Buffers a timestamped point stream and publishes one release per
/// sealed epoch — see the [crate docs](crate) for the epoch contract.
#[derive(Debug, Clone)]
pub struct StreamIngestor {
    keyspace: String,
    domain: Domain,
    layout: EpochLayout,
    schedule: BudgetSchedule,
    method: Method,
    base_seed: Option<u64>,
    epoch_capacity: usize,
    /// Allowed out-of-orderness, in whole epochs: epoch `e` seals only
    /// once the watermark epoch exceeds `e + lateness`.
    lateness: u64,
    /// Per-epoch staging buffers, keyed by epoch index.
    staged: BTreeMap<u64, Vec<Point>>,
    /// First epoch still accepting points; everything below sealed.
    frontier: u64,
    /// Highest epoch any accepted point has mapped to.
    watermark: Option<u64>,
    /// Fine releases still retained for compaction, keyed by epoch.
    retained: BTreeMap<u64, Release>,
}

impl StreamIngestor {
    /// An ingestor publishing under `keyspace` for points inside
    /// `domain`, slicing time by `layout` and drawing per-epoch ε from
    /// `schedule`.
    ///
    /// Defaults: the paper's suggested adaptive grid
    /// ([`Method::ag_suggested`]), unseeded builds, staging capacity
    /// [`DEFAULT_EPOCH_CAPACITY`], zero allowed lateness.
    pub fn new(
        keyspace: impl Into<String>,
        domain: Domain,
        layout: EpochLayout,
        schedule: BudgetSchedule,
    ) -> Result<Self> {
        let keyspace = keyspace.into();
        if keyspace.is_empty() {
            return Err(StreamError::InvalidConfig(
                "keyspace must be non-empty (epoch keys would not round-trip)".into(),
            ));
        }
        Ok(StreamIngestor {
            keyspace,
            domain,
            layout,
            schedule,
            method: Method::ag_suggested(),
            base_seed: None,
            epoch_capacity: DEFAULT_EPOCH_CAPACITY,
            lateness: 0,
            staged: BTreeMap::new(),
            frontier: 0,
            watermark: None,
            retained: BTreeMap::new(),
        })
    }

    /// Sets the synopsis method every epoch builds with.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Seeds the per-epoch build RNGs deterministically: epoch `i`
    /// builds with seed `base ⊕ mix(i)`, so the same stream replays to
    /// byte-identical releases. The usual caveat applies — a release
    /// whose seed is public is not private; seed only replay tests.
    pub fn with_seed(mut self, base: u64) -> Self {
        self.base_seed = Some(base);
        self
    }

    /// Sets the bounded per-epoch staging capacity (points). Pushing
    /// past it fails typed ([`StreamError::BufferOverflow`]) instead of
    /// growing without bound.
    pub fn with_epoch_capacity(mut self, capacity: usize) -> Self {
        self.epoch_capacity = capacity.max(1);
        self
    }

    /// Sets the allowed out-of-orderness in whole epochs: epoch `e`
    /// seals once the watermark epoch exceeds `e + lateness`.
    pub fn with_allowed_lateness(mut self, epochs: u64) -> Self {
        self.lateness = epochs;
        self
    }

    /// The keyspace epoch releases publish under.
    pub fn keyspace(&self) -> &str {
        &self.keyspace
    }

    /// The public domain every ingested point must lie in.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The epoch layout slicing event time.
    pub fn layout(&self) -> &EpochLayout {
        &self.layout
    }

    /// The per-epoch budget schedule (accounting state included).
    pub fn schedule(&self) -> &BudgetSchedule {
        &self.schedule
    }

    /// First epoch still accepting points (everything below sealed).
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Highest epoch any accepted point has mapped to, if any.
    pub fn watermark_epoch(&self) -> Option<u64> {
        self.watermark
    }

    /// Epochs currently holding staged (unsealed) points, ascending.
    pub fn open_epochs(&self) -> Vec<u64> {
        self.staged.keys().copied().collect()
    }

    /// Fine releases retained for compaction, keyed by epoch index.
    /// Clones are cheap: the compiled query surface is shared.
    pub fn retained_fine(&self) -> &BTreeMap<u64, Release> {
        &self.retained
    }

    /// Ingests one timestamped point, sealing (and publishing into
    /// `sink`) every epoch the advancing watermark finishes. Returns
    /// receipts for the epochs this push sealed — usually none, one
    /// when the stream crosses an epoch boundary.
    ///
    /// Failures are typed and leave the ingestor consistent: a late,
    /// out-of-domain, or before-origin point is rejected without side
    /// effects; a publish failure (e.g. budget exhaustion) keeps the
    /// failing epoch's points staged.
    pub fn push<S: ReleaseSink>(
        &mut self,
        point: Point,
        timestamp: f64,
        sink: &mut S,
    ) -> Result<Vec<PublishedEpoch>> {
        let epoch = self
            .layout
            .epoch_of(timestamp)
            .ok_or(StreamError::BeforeOrigin { timestamp })?;
        if epoch < self.frontier {
            return Err(StreamError::LateArrival {
                epoch,
                frontier: self.frontier,
            });
        }
        if !point.is_finite() || !self.domain.contains(&point) {
            return Err(StreamError::OutsideDomain {
                point: (point.x, point.y),
            });
        }
        let buffer = self.staged.entry(epoch).or_default();
        if buffer.len() >= self.epoch_capacity {
            return Err(StreamError::BufferOverflow {
                epoch,
                capacity: self.epoch_capacity,
            });
        }
        buffer.push(point);
        self.watermark = Some(self.watermark.map_or(epoch, |w| w.max(epoch)));
        let target = self
            .watermark
            .expect("watermark set above")
            .saturating_sub(self.lateness);
        self.seal_below(target, sink)
    }

    /// Seals every epoch up to and including `epoch`, publishing the
    /// non-empty ones into `sink`, and advances the frontier past it —
    /// late points for the sealed range are rejected from here on.
    /// Idempotent: epochs already sealed are skipped.
    pub fn seal_through<S: ReleaseSink>(
        &mut self,
        epoch: u64,
        sink: &mut S,
    ) -> Result<Vec<PublishedEpoch>> {
        let target = epoch
            .checked_add(1)
            .ok_or_else(|| StreamError::InvalidConfig("epoch index overflow".into()))?;
        self.seal_below(target, sink)
    }

    /// Seals every epoch still holding staged points (end-of-stream).
    pub fn flush<S: ReleaseSink>(&mut self, sink: &mut S) -> Result<Vec<PublishedEpoch>> {
        match self.staged.keys().next_back().copied() {
            Some(last) => self.seal_through(last, sink),
            None => Ok(Vec::new()),
        }
    }

    /// Seals epochs `< target` in ascending order. On a publish
    /// failure the failing epoch's points go back into staging and the
    /// frontier stays below it, so the error is retryable.
    fn seal_below<S: ReleaseSink>(
        &mut self,
        target: u64,
        sink: &mut S,
    ) -> Result<Vec<PublishedEpoch>> {
        let mut published = Vec::new();
        while self.frontier < target {
            let epoch = match self.staged.keys().next().copied() {
                Some(first) if first < target => first,
                // No staged epoch left below the target: empty epochs
                // publish nothing and spend nothing.
                _ => {
                    self.frontier = target;
                    break;
                }
            };
            let points = self.staged.remove(&epoch).expect("key just observed");
            match self.publish_epoch(epoch, &points, sink) {
                Ok(receipt) => {
                    self.frontier = epoch + 1;
                    published.push(receipt);
                }
                Err(e) => {
                    self.staged.insert(epoch, points);
                    return Err(e);
                }
            }
        }
        Ok(published)
    }

    /// Builds and publishes one sealed epoch: dataset from the staged
    /// points, ε from the schedule (charged once per epoch), release
    /// under the epoch key, a retained clone for future compaction.
    fn publish_epoch<S: ReleaseSink>(
        &mut self,
        epoch: u64,
        points: &[Point],
        sink: &mut S,
    ) -> Result<PublishedEpoch> {
        let dataset = dpgrid_geo::GeoDataset::from_points(points.to_vec(), self.domain)?;
        let epsilon = self.schedule.spend_epoch(epoch)?;
        let mut pipeline = Pipeline::new(&dataset).epsilon(epsilon).method(self.method);
        if let Some(base) = self.base_seed {
            // splitmix64-style odd-constant mix keeps per-epoch seeds
            // distinct even for adjacent epochs.
            pipeline = pipeline.seed(base ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        let release = pipeline.publish()?;
        let key = epoch_key(&self.keyspace, EpochRange::single(epoch));
        self.retained.insert(epoch, release.clone());
        sink.accept_release(key.clone(), release);
        Ok(PublishedEpoch {
            epoch,
            key,
            epsilon,
            points: points.len(),
        })
    }
}

/// Receipt for one compacted tier.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactedTier {
    /// The tier-aligned epoch range the merged release covers.
    pub range: EpochRange,
    /// The key the merged release published under
    /// (`{keyspace}@epoch:{start}-{end}`).
    pub key: String,
    /// The fine epochs that were merged (and evicted).
    pub epochs: Vec<u64>,
    /// The merged release's ε — the sum of the constituents'
    /// (sequential composition; the merge itself spends nothing).
    pub epsilon: f64,
}

/// Merges expired fine epochs into coarser tier releases and evicts
/// the fine ones — the retention half of the streaming story.
///
/// Epochs are grouped into tiers of `tier_len` aligned at multiples
/// (`tier t` covers `[t·len, (t+1)·len)`). A tier compacts once its
/// entire range has aged out of the fine-retention window (`frontier −
/// retain_fine`): its retained fine releases merge exactly
/// ([`dpgrid_core::merge_releases`]) into one release published under
/// the tier key, and each fine key is withdrawn through
/// [`ReleaseSink::evict_release`]. Window queries that straddle a
/// compacted tier therefore see the *whole* tier — the epoch-
/// granularity contract coarsens with age, and the response's covered
/// range makes that visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compactor {
    tier_len: u64,
    retain_fine: u64,
}

impl Compactor {
    /// A compactor merging `tier_len` fine epochs per tier (≥ 2),
    /// keeping the most recent `retain_fine` epochs fine.
    pub fn new(tier_len: u64, retain_fine: u64) -> Result<Self> {
        if tier_len < 2 {
            return Err(StreamError::InvalidConfig(format!(
                "tier length must be at least 2 epochs, got {tier_len}"
            )));
        }
        Ok(Compactor {
            tier_len,
            retain_fine,
        })
    }

    /// Fine epochs per tier.
    pub fn tier_len(&self) -> u64 {
        self.tier_len
    }

    /// Number of most-recent epochs kept fine.
    pub fn retain_fine(&self) -> u64 {
        self.retain_fine
    }

    /// Compacts every fully-expired tier of `ingestor`'s retained fine
    /// releases, publishing each merged tier into `sink` (before the
    /// fine evictions, so the keyspace never transiently loses
    /// coverage) and returning one receipt per tier. Idempotent:
    /// already-compacted tiers have no retained fine epochs left.
    pub fn compact<S: ReleaseSink>(
        &self,
        ingestor: &mut StreamIngestor,
        sink: &mut S,
    ) -> Result<Vec<CompactedTier>> {
        let cutoff = ingestor.frontier().saturating_sub(self.retain_fine);
        let mut tiers: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &epoch in ingestor.retained.keys() {
            // The whole tier must be behind the cutoff, not just this
            // epoch — compacting a tier the ingestor is still filling
            // would orphan its later epochs.
            let tier = epoch / self.tier_len;
            let tier_end = (tier + 1).saturating_mul(self.tier_len);
            if tier_end <= cutoff {
                tiers.entry(tier).or_default().push(epoch);
            }
        }
        let mut receipts = Vec::new();
        for (tier, epochs) in tiers {
            let range = EpochRange::new(tier * self.tier_len, (tier + 1) * self.tier_len)
                .expect("tier ranges are non-empty by construction");
            let fine: Vec<&Release> = epochs.iter().map(|e| &ingestor.retained[e]).collect();
            let merged = merge_releases(format!("compact:{range}"), &fine)?;
            let epsilon = dpgrid_geo::Synopsis::epsilon(&merged);
            let key = epoch_key(ingestor.keyspace(), range);
            sink.accept_release(key.clone(), merged);
            for epoch in &epochs {
                sink.evict_release(&epoch_key(ingestor.keyspace(), EpochRange::single(*epoch)));
                ingestor.retained.remove(epoch);
            }
            receipts.push(CompactedTier {
                range,
                key,
                epochs,
                epsilon,
            });
        }
        Ok(receipts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_core::Synopsis;
    use std::collections::HashMap;

    fn domain() -> Domain {
        Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap()
    }

    /// Minute-long epochs starting at t = 0.
    fn layout() -> EpochLayout {
        EpochLayout::new(0.0, 60.0).unwrap()
    }

    fn ingestor(schedule: BudgetSchedule) -> StreamIngestor {
        StreamIngestor::new("s", domain(), layout(), schedule)
            .unwrap()
            .with_method(Method::ug(6))
            .with_seed(11)
    }

    /// `n` deterministic points spread over the domain, pushed at
    /// evenly spaced times inside `epoch`.
    fn fill_epoch(
        ing: &mut StreamIngestor,
        sink: &mut HashMap<String, Release>,
        epoch: u64,
        n: usize,
    ) -> Vec<PublishedEpoch> {
        let mut published = Vec::new();
        for i in 0..n {
            let p = Point::new(0.5 + (i % 9) as f64, 0.5 + (i % 7) as f64);
            let t = epoch as f64 * 60.0 + 60.0 * (i as f64 + 0.5) / n as f64;
            published.extend(ing.push(p, t, sink).unwrap());
        }
        published
    }

    #[test]
    fn epochs_seal_behind_the_watermark_and_spend_their_shares() {
        let mut ing = ingestor(BudgetSchedule::uniform(1.0, 4).unwrap());
        let mut sink = HashMap::new();
        let mut receipts = Vec::new();
        for epoch in 0..4 {
            receipts.extend(fill_epoch(&mut ing, &mut sink, epoch, 40));
        }
        // Watermark at epoch 3 seals 0..3; epoch 3 is still open.
        assert_eq!(
            receipts.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(ing.frontier(), 3);
        assert_eq!(ing.open_epochs(), vec![3]);
        receipts.extend(ing.flush(&mut sink).unwrap());
        assert_eq!(receipts.len(), 4);
        for r in &receipts {
            assert_eq!(r.key, format!("s@epoch:{}", r.epoch));
            assert!((r.epsilon - 0.25).abs() < 1e-12, "uniform share");
            assert_eq!(r.points, 40);
            assert!(sink.contains_key(&r.key));
        }
        assert!((ing.schedule().spent() - 1.0).abs() < 1e-12);
        assert_eq!(ing.retained_fine().len(), 4);
        // Flush with nothing staged is a no-op.
        assert!(ing.flush(&mut sink).unwrap().is_empty());
    }

    #[test]
    fn late_out_of_domain_and_pre_origin_points_fail_typed() {
        let mut ing = ingestor(BudgetSchedule::exponential_decay(1.0, 0.5).unwrap());
        let mut sink = HashMap::new();
        fill_epoch(&mut ing, &mut sink, 0, 10);
        fill_epoch(&mut ing, &mut sink, 2, 10); // seals 0 and (empty) 1
        assert_eq!(ing.frontier(), 2);
        assert!(matches!(
            ing.push(Point::new(1.0, 1.0), 30.0, &mut sink),
            Err(StreamError::LateArrival {
                epoch: 0,
                frontier: 2
            })
        ));
        assert!(matches!(
            ing.push(Point::new(11.0, 1.0), 130.0, &mut sink),
            Err(StreamError::OutsideDomain { .. })
        ));
        assert!(matches!(
            ing.push(Point::new(1.0, 1.0), -5.0, &mut sink),
            Err(StreamError::BeforeOrigin { .. })
        ));
        assert!(matches!(
            ing.push(Point::new(1.0, 1.0), f64::NAN, &mut sink),
            Err(StreamError::BeforeOrigin { .. })
        ));
        // The empty epoch 1 published nothing and spent nothing.
        assert!(!sink.contains_key("s@epoch:1"));
        assert_eq!(ing.schedule().charged_epochs(), vec![0]);
    }

    #[test]
    fn allowed_lateness_defers_sealing() {
        let mut ing = ingestor(BudgetSchedule::uniform(1.0, 8).unwrap()).with_allowed_lateness(1);
        let mut sink = HashMap::new();
        fill_epoch(&mut ing, &mut sink, 0, 5);
        fill_epoch(&mut ing, &mut sink, 1, 5);
        // Watermark 1, lateness 1: nothing seals, epoch 0 still open.
        assert_eq!(ing.frontier(), 0);
        ing.push(Point::new(1.0, 1.0), 10.0, &mut sink).unwrap();
        // Watermark 2 seals only epoch 0.
        let sealed = fill_epoch(&mut ing, &mut sink, 2, 5);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].epoch, 0);
        assert_eq!(sealed[0].points, 6);
    }

    #[test]
    fn bounded_buffers_reject_overflow() {
        let mut ing = ingestor(BudgetSchedule::uniform(1.0, 2).unwrap()).with_epoch_capacity(3);
        let mut sink: Vec<(String, Release)> = Vec::new();
        for i in 0..3 {
            ing.push(Point::new(1.0, 1.0), i as f64, &mut sink).unwrap();
        }
        assert!(matches!(
            ing.push(Point::new(1.0, 1.0), 3.0, &mut sink),
            Err(StreamError::BufferOverflow {
                epoch: 0,
                capacity: 3
            })
        ));
    }

    #[test]
    fn seeded_streams_replay_to_identical_releases() {
        let run = || {
            let mut ing = ingestor(BudgetSchedule::uniform(1.0, 4).unwrap());
            let mut sink = HashMap::new();
            for epoch in 0..3 {
                fill_epoch(&mut ing, &mut sink, epoch, 30);
            }
            ing.flush(&mut sink).unwrap();
            sink
        };
        let (a, b) = (run(), run());
        let q = dpgrid_geo::Rect::new(1.0, 1.0, 6.0, 6.0).unwrap();
        for key in ["s@epoch:0", "s@epoch:1", "s@epoch:2"] {
            assert_eq!(a[key].answer(&q), b[key].answer(&q), "{key}");
            // Distinct epochs draw distinct noise (different seeds).
        }
        assert_ne!(a["s@epoch:0"].answer(&q), a["s@epoch:1"].answer(&q));
    }

    #[test]
    fn budget_exhaustion_is_typed_and_retryable() {
        let mut ing = ingestor(BudgetSchedule::uniform(1.0, 2).unwrap());
        let mut sink = HashMap::new();
        for epoch in 0..3 {
            fill_epoch(&mut ing, &mut sink, epoch, 10);
        }
        // Epochs 0 and 1 consumed the two uniform shares; sealing
        // epoch 2 must fail typed and keep its points staged.
        let err = ing.flush(&mut sink).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Core(CoreError::Mech(MechError::BudgetExhausted { .. }))
        ));
        assert_eq!(ing.open_epochs(), vec![2]);
        assert!(!sink.contains_key("s@epoch:2"));
    }

    #[test]
    fn compaction_merges_expired_tiers_exactly_and_evicts_fine_keys() {
        let mut ing = ingestor(BudgetSchedule::exponential_decay(2.0, 0.7).unwrap());
        let mut sink = HashMap::new();
        for epoch in 0..6 {
            fill_epoch(&mut ing, &mut sink, epoch, 50 + 10 * epoch as usize);
        }
        ing.flush(&mut sink).unwrap();
        let fine: HashMap<u64, Release> = (0..6)
            .map(|e| (e, ing.retained_fine()[&e].clone()))
            .collect();
        // Tiers of 2, keep the last 2 epochs fine: tiers {0,1} and
        // {2,3} are fully expired, {4,5} stays fine.
        let compactor = Compactor::new(2, 2).unwrap();
        let receipts = compactor.compact(&mut ing, &mut sink).unwrap();
        assert_eq!(receipts.len(), 2);
        assert_eq!(receipts[0].range, EpochRange::new(0, 2).unwrap());
        assert_eq!(receipts[1].range, EpochRange::new(2, 4).unwrap());
        let q = dpgrid_geo::Rect::new(0.3, 0.9, 7.7, 6.1).unwrap();
        for receipt in &receipts {
            assert_eq!(receipt.key, format!("s@epoch:{}", receipt.range));
            let merged = &sink[&receipt.key];
            let sum: f64 = receipt.epochs.iter().map(|e| fine[e].answer(&q)).sum();
            assert!(
                (merged.answer(&q) - sum).abs() <= 1e-9 * (1.0 + sum.abs()),
                "tier {} must answer as the sum of its fine epochs",
                receipt.range
            );
            let eps_sum: f64 = receipt.epochs.iter().map(|e| fine[e].epsilon()).sum();
            assert!((receipt.epsilon - eps_sum).abs() < 1e-12);
            for epoch in &receipt.epochs {
                assert!(
                    !sink.contains_key(&format!("s@epoch:{epoch}")),
                    "fine key evicted"
                );
            }
        }
        // Fine retention survives for the recent epochs…
        assert!(sink.contains_key("s@epoch:4"));
        assert!(sink.contains_key("s@epoch:5"));
        assert_eq!(
            ing.retained_fine().keys().copied().collect::<Vec<_>>(),
            vec![4, 5]
        );
        // …and compacting again is a no-op.
        assert!(compactor.compact(&mut ing, &mut sink).unwrap().is_empty());
    }

    #[test]
    fn compactor_validates_and_partial_tiers_wait() {
        assert!(Compactor::new(1, 0).is_err());
        let mut ing = ingestor(BudgetSchedule::exponential_decay(1.0, 0.5).unwrap());
        let mut sink = HashMap::new();
        for epoch in 0..3 {
            fill_epoch(&mut ing, &mut sink, epoch, 10);
        }
        ing.flush(&mut sink).unwrap();
        // Tier {2,3} is only half-filled (epoch 3 never happened), so
        // with retain_fine = 0 only tier {0,1} compacts.
        let receipts = Compactor::new(2, 0)
            .unwrap()
            .compact(&mut ing, &mut sink)
            .unwrap();
        assert_eq!(receipts.len(), 1);
        assert_eq!(receipts[0].range, EpochRange::new(0, 2).unwrap());
        assert!(sink.contains_key("s@epoch:2"));
    }

    #[test]
    fn empty_keyspace_is_rejected() {
        assert!(matches!(
            StreamIngestor::new(
                "",
                domain(),
                layout(),
                BudgetSchedule::uniform(1.0, 1).unwrap()
            ),
            Err(StreamError::InvalidConfig(_))
        ));
    }
}
