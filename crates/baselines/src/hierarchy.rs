//! The `H_{b,d}` hierarchical-grid baseline of Figure 3.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{Build, DenseGrid, Domain, GeoDataset, Rect, SummedAreaTable, Synopsis};
use dpgrid_mech::{geometric_allocation, uniform_allocation, LaplaceMechanism};

use crate::inference::CiTree;
use crate::{BaselineError, Result};

/// How the privacy budget is divided among the levels of a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Allocation {
    /// Equal ε per level (what the paper's Figure 3 hierarchies use).
    Uniform,
    /// Geometric allocation: level `i` (0 = coarsest) gets ε ∝ `ratio^i`,
    /// so finer levels receive more budget (Cormode et al.'s
    /// recommendation, with `ratio = fanout^(1/3)`).
    Geometric {
        /// Per-level growth factor (> 0).
        ratio: f64,
    },
}

impl Allocation {
    /// Resolves the per-level ε values, coarsest level first.
    pub fn resolve(&self, epsilon: f64, levels: usize) -> Result<Vec<f64>> {
        match self {
            Allocation::Uniform => Ok(uniform_allocation(epsilon, levels)?),
            Allocation::Geometric { ratio } => Ok(geometric_allocation(epsilon, levels, *ratio)?),
        }
    }
}

/// Configuration for [`HierarchicalGrid`].
///
/// The paper's `H_{b,d}` lays a `base_m × base_m` grid and builds `d`
/// levels on top with `b × b` branching; e.g. `H_{2,3}` over `m = 360`
/// uses level sizes 360, 180, 90.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Finest-level grid size.
    pub base_m: usize,
    /// Branching factor per axis (`b ≥ 2`).
    pub branching: usize,
    /// Number of levels (`d ≥ 1`); `d = 1` degenerates to a flat grid.
    pub depth: usize,
    /// Budget division among levels.
    pub allocation: Allocation,
}

impl HierarchyConfig {
    /// Creates the paper's `H_{b,d}` over a `base_m` grid with uniform
    /// budget allocation.
    pub fn new(epsilon: f64, base_m: usize, branching: usize, depth: usize) -> Self {
        HierarchyConfig {
            epsilon,
            base_m,
            branching,
            depth,
            allocation: Allocation::Uniform,
        }
    }

    /// Switches to geometric budget allocation with the given ratio.
    pub fn with_geometric(mut self, ratio: f64) -> Self {
        self.allocation = Allocation::Geometric { ratio };
        self
    }

    fn validate(&self) -> Result<()> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if self.base_m == 0 {
            return Err(BaselineError::InvalidConfig("base_m must be ≥ 1".into()));
        }
        if self.depth == 0 {
            return Err(BaselineError::InvalidConfig("depth must be ≥ 1".into()));
        }
        if self.depth > 1 && self.branching < 2 {
            return Err(BaselineError::InvalidConfig(
                "branching must be ≥ 2 for depth > 1".into(),
            ));
        }
        // base_m must divide evenly through all levels.
        let factor = self
            .branching
            .checked_pow(self.depth.saturating_sub(1) as u32)
            .ok_or_else(|| BaselineError::InvalidConfig("branching^depth overflows".into()))?;
        if factor == 0 || !self.base_m.is_multiple_of(factor) {
            return Err(BaselineError::InvalidConfig(format!(
                "base_m {} not divisible by branching^(depth-1) = {factor}",
                self.base_m
            )));
        }
        Ok(())
    }
}

/// The `H_{b,d}` baseline: a pyramid of noisy grids glued together by
/// constrained inference, answering queries from the consistent finest
/// level.
///
/// After inference the tree is consistent (every node equals the sum of
/// its children), so answering from the finest level alone is exactly
/// equivalent to any mixed-level decomposition of the query — with the
/// accuracy benefit of the coarse observations baked into the leaf
/// values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchicalGrid {
    grid: DenseGrid,
    sat: SummedAreaTable,
    epsilon: f64,
    config: HierarchyConfig,
}

impl HierarchicalGrid {
    /// Builds the synopsis over `dataset`. Thin delegation to the
    /// uniform [`Build`] trait.
    pub fn build(
        dataset: &GeoDataset,
        config: &HierarchyConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        <HierarchicalGrid as Build>::build(dataset, config, rng)
    }
}

impl Build for HierarchicalGrid {
    type Config = HierarchyConfig;

    fn build(dataset: &GeoDataset, config: &HierarchyConfig, rng: &mut impl Rng) -> Result<Self> {
        config.validate()?;
        let d = config.depth;
        let b = config.branching;

        // Level sizes, coarsest first: base_m / b^(d-1), ..., base_m.
        let sizes: Vec<usize> = (0..d)
            .map(|i| config.base_m / b.pow((d - 1 - i) as u32))
            .collect();

        // True counts per level: count the finest, aggregate upwards.
        let finest = DenseGrid::count(dataset, config.base_m, config.base_m)?;
        let mut levels: Vec<DenseGrid> = Vec::with_capacity(d);
        for (i, &size) in sizes.iter().enumerate() {
            if i + 1 == d {
                levels.push(finest.clone());
            } else {
                let block = config.base_m / size;
                levels.push(finest.aggregate(block, block)?);
            }
        }

        // Noise each level with its share of ε.
        let epsilons = config.allocation.resolve(config.epsilon, d)?;
        for (level, &eps) in levels.iter_mut().zip(&epsilons) {
            let mech = LaplaceMechanism::for_count(eps)?;
            mech.randomize_slice(level.values_mut(), rng);
        }

        // Single level: no inference needed.
        if d == 1 {
            let grid = levels.pop().expect("one level exists");
            let sat = grid.sat();
            return Ok(HierarchicalGrid {
                grid,
                sat,
                epsilon: config.epsilon,
                config: *config,
            });
        }

        // Build the forest: roots are the coarsest level's cells.
        let total_nodes: usize = sizes.iter().map(|s| s * s).sum();
        let mut tree = CiTree::with_capacity(total_nodes);
        // ids[level][row-major index] = node id
        let mut ids: Vec<Vec<usize>> = Vec::with_capacity(d);
        for (level, &eps) in levels.iter().zip(&epsilons) {
            let var = 2.0 / (eps * eps);
            let mut level_ids = Vec::with_capacity(level.cell_count());
            for &v in level.values() {
                level_ids.push(tree.add_node(v, var)?);
            }
            ids.push(level_ids);
        }
        for i in 0..d - 1 {
            let coarse = sizes[i];
            let fine = sizes[i + 1];
            debug_assert_eq!(fine, coarse * b);
            for r in 0..coarse {
                for c in 0..coarse {
                    let mut children = Vec::with_capacity(b * b);
                    for dr in 0..b {
                        for dc in 0..b {
                            let fc = c * b + dc;
                            let fr = r * b + dr;
                            children.push(ids[i + 1][fr * fine + fc]);
                        }
                    }
                    tree.set_children(ids[i][r * coarse + c], children)?;
                }
            }
        }
        let consistent = tree.run(&ids[0])?;

        // Extract the consistent finest level.
        let mut grid = DenseGrid::zeros(*dataset.domain(), config.base_m, config.base_m)?;
        for (cell, &id) in grid.values_mut().iter_mut().zip(ids[d - 1].iter()) {
            *cell = consistent[id];
        }
        let sat = grid.sat();
        Ok(HierarchicalGrid {
            grid,
            sat,
            epsilon: config.epsilon,
            config: *config,
        })
    }
}

impl HierarchicalGrid {
    /// The configuration the synopsis was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The consistent finest-level grid.
    pub fn grid(&self) -> &DenseGrid {
        &self.grid
    }
}

impl Synopsis for HierarchicalGrid {
    fn domain(&self) -> &Domain {
        self.grid.domain()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn answer(&self, query: &Rect) -> f64 {
        self.grid.answer_uniform(&self.sat, query)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        self.grid
            .iter_cells()
            .map(|(_, _, rect, v)| (rect, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset(n: usize, seed: u64) -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 12.0, 12.0).unwrap();
        generators::uniform(domain, n, &mut rng(seed))
    }

    #[test]
    fn validates_config() {
        let ds = dataset(100, 0);
        for bad in [
            HierarchyConfig::new(0.0, 8, 2, 2),
            HierarchyConfig::new(1.0, 0, 2, 2),
            HierarchyConfig::new(1.0, 8, 2, 0),
            HierarchyConfig::new(1.0, 8, 1, 2),
            HierarchyConfig::new(1.0, 6, 2, 3), // 6 % 4 != 0
        ] {
            assert!(
                HierarchicalGrid::build(&ds, &bad, &mut rng(1)).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn level_sizes_match_paper_notation() {
        // H_{2,3} over 360 → levels 90, 180, 360. We verify through a
        // smaller analogue H_{2,3} over 8 → 2, 4, 8 building fine.
        let ds = dataset(500, 2);
        let h =
            HierarchicalGrid::build(&ds, &HierarchyConfig::new(1.0, 8, 2, 3), &mut rng(3)).unwrap();
        assert_eq!(h.grid().cols(), 8);
    }

    #[test]
    fn depth_one_is_flat_grid() {
        let ds = dataset(400, 4);
        let h =
            HierarchicalGrid::build(&ds, &HierarchyConfig::new(1.0, 8, 2, 1), &mut rng(5)).unwrap();
        assert_eq!(h.grid().cols(), 8);
        let q = Rect::new(0.0, 0.0, 12.0, 12.0).unwrap();
        assert!(h.answer(&q).is_finite());
    }

    #[test]
    fn huge_epsilon_recovers_exact_counts() {
        let ds = dataset(2_000, 6);
        let h =
            HierarchicalGrid::build(&ds, &HierarchyConfig::new(1e9, 8, 2, 3), &mut rng(7)).unwrap();
        let q = Rect::new(0.0, 0.0, 6.0, 6.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        assert!(
            (h.answer(&q) - truth).abs() < 1e-2,
            "got {} truth {truth}",
            h.answer(&q)
        );
    }

    #[test]
    fn hierarchy_reduces_large_range_noise() {
        // On an empty dataset the whole-domain answer is pure noise;
        // with CI the root observation (one Laplace draw at ε/d) pins
        // the total far better than summing base_m² independent draws.
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds = GeoDataset::from_points(vec![], domain).unwrap();
        let eps = 1.0;
        let m = 16usize;
        let trials = 200;
        let mut r = rng(8);
        let mut sum_sq_h = 0.0;
        for _ in 0..trials {
            let h =
                HierarchicalGrid::build(&ds, &HierarchyConfig::new(eps, m, 4, 2), &mut r).unwrap();
            let t = h.total_estimate();
            sum_sq_h += t * t;
        }
        let std_h = (sum_sq_h / trials as f64).sqrt();
        // Flat grid at the same ε: std = √(m²·2/ε²) = m·√2. The H_{4,2}
        // coarse level has (m/4)² = 16 nodes at ε/2, so the CI-pinned
        // total has expected std ≈ √(16·2·4) ≈ 0.5·std_flat; the factor
        // 0.6 leaves ~2σ headroom for the 200-trial sample estimate.
        let std_flat = (m as f64) * std::f64::consts::SQRT_2;
        assert!(
            std_h < std_flat * 0.6,
            "hierarchy total std {std_h} vs flat {std_flat}"
        );
    }

    #[test]
    fn geometric_allocation_builds() {
        let ds = dataset(300, 9);
        let cfg = HierarchyConfig::new(1.0, 8, 2, 3).with_geometric(2f64.powf(1.0 / 3.0));
        let h = HierarchicalGrid::build(&ds, &cfg, &mut rng(10)).unwrap();
        assert!(h.total_estimate().is_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = dataset(200, 11);
        let cfg = HierarchyConfig::new(1.0, 8, 2, 2);
        let a = HierarchicalGrid::build(&ds, &cfg, &mut rng(12)).unwrap();
        let b = HierarchicalGrid::build(&ds, &cfg, &mut rng(12)).unwrap();
        assert_eq!(a.grid().values(), b.grid().values());
    }

    #[test]
    fn cells_partition_domain() {
        let ds = dataset(100, 13);
        let h = HierarchicalGrid::build(&ds, &HierarchyConfig::new(1.0, 4, 2, 2), &mut rng(14))
            .unwrap();
        let area: f64 = h.cells().iter().map(|(r, _)| r.area()).sum();
        assert!((area - 144.0).abs() < 1e-9);
    }
}
