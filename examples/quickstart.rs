//! Quickstart: release a differentially private synopsis of a location
//! dataset and answer range queries from it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dpgrid::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. A location dataset. In production this is your private data;
    //    here we generate a landmark-shaped synthetic dataset.
    let dataset = PaperDataset::Landmark
        .generate_n(42, 100_000)
        .expect("generate dataset");
    println!(
        "dataset: {} points on a {:.0} x {:.0} domain",
        dataset.len(),
        dataset.domain().width(),
        dataset.domain().height()
    );

    // 2. Release synopses under ε = 1 differential privacy.
    //    UG: single-level uniform grid, size from Guideline 1.
    //    AG: two-level adaptive grid (the paper's best method).
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ug = UniformGrid::build(&dataset, &UgConfig::guideline(1.0), &mut rng).expect("build UG");
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(1.0), &mut rng).expect("build AG");
    println!(
        "released: UG with {}x{} cells, AG with m1={} and {} leaf cells",
        ug.m(),
        ug.m(),
        ag.m1(),
        ag.leaf_count()
    );

    // 3. Answer count queries from the private releases only.
    let queries = [
        (
            "east coast strip",
            Rect::new(-80.0, 30.0, -70.0, 45.0).unwrap(),
        ),
        (
            "mid-west block",
            Rect::new(-105.0, 35.0, -95.0, 45.0).unwrap(),
        ),
        (
            "small city window",
            Rect::new(-88.0, 41.0, -87.0, 42.0).unwrap(),
        ),
    ];
    println!(
        "\n{:<20} {:>10} {:>12} {:>12}",
        "query", "truth", "UG", "AG"
    );
    for (name, q) in &queries {
        let truth = dataset.count_in(q) as f64;
        println!(
            "{:<20} {:>10} {:>12.1} {:>12.1}",
            name,
            truth,
            ug.answer(q),
            ag.answer(q)
        );
    }

    // 4. The synopsis is safe to share: serialize the release. Every
    //    value inside is ε-DP, so post-processing (storage, publication,
    //    synthetic data generation) incurs no further privacy cost.
    let json = serde_json::to_string(&ag).expect("serialize release");
    println!("\nAG release serializes to {} bytes of JSON", json.len());
}
