//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Value` tree as standard JSON.
//!
//! Numbers are emitted with Rust's shortest round-trip float formatting
//! (integral values get no trailing `.0`, matching `serde_json`'s
//! integer encoding), and parsed with the standard library's correctly
//! rounded `f64` parser, so `value == from_str(&to_string(&value))`
//! holds bit-for-bit for every finite number.

#![forbid(unsafe_code)]

use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value());
    Ok(out)
}

/// Serialises `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(format!("write failed: {e}")))
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parses a value from a JSON byte slice.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Reads `reader` to the end and parses a value from the JSON it held.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error(format!("read failed: {e}")))?;
    from_str(&buf)
}

// ---------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json's behaviour for non-finite floats.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 && !(n == 0.0 && n.is_sign_negative()) {
        // Integral values inside the exactly-representable range print
        // without a fraction, like serde_json prints integers.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip representation.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined).ok_or_else(|| {
                                            Error("invalid surrogate pair".into())
                                        })?,
                                    );
                                } else {
                                    return Err(Error("lone high surrogate".into()));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid \\u escape".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(format!("invalid number: {e}")))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(1.5)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x \"y\" \n z".into())),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v);
        let back = parse_value(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-300,
            123456789.123456,
            -0.0,
            2.0f64.powi(60),
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&5usize).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&5.0f64).unwrap(), "5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\u0041\", \"\\t\" ] ").unwrap();
        assert_eq!(v, vec!["aA".to_string(), "\t".to_string()]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<f64>("[1").is_err());
        assert!(from_str::<bool>("troo").is_err());
    }
}
