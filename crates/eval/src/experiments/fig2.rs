//! Figure 2 — KD-standard and KD-hybrid versus UG at several grid sizes.
//!
//! 16 panels in the paper: for each of the four datasets and
//! ε ∈ {0.1, 1}, a line graph of mean relative error per query size and
//! a candlestick profile. Shape criteria: UG error is U-shaped in `m`;
//! the best UG is at least as good as KD-hybrid on road/storage and
//! comparable on checkin/landmark; relative error peaks at mid-size
//! queries.

use dpgrid_core::guidelines;
use dpgrid_geo::generators::PaperDataset;

use super::{size_ladder, DataBundle, ExpContext};
use crate::method::Method;
use crate::report::{by_size_table, profile_table};
use crate::Result;

/// Runs the experiment; writes per-panel CSVs and returns the markdown.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("fig2");
    let mut md = String::from("## Figure 2 — KD trees vs UG size sweep\n\n");
    for which in PaperDataset::ALL {
        let bundle = DataBundle::prepare(which, ctx)?;
        let n = bundle.dataset.len();
        for &eps in &ctx.epsilons {
            let suggested = guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
            let mut methods = vec![Method::KdStandard, Method::KdHybrid];
            methods.extend(size_ladder(suggested).into_iter().map(Method::ug));
            let stem = format!("{}_eps{eps}", which.name());
            let evals = bundle.run_panel(&dir, &stem, &methods, eps, ctx)?;
            let title = format!("fig2: {} ε={eps}", which.name());
            md.push_str(&by_size_table(&title, &evals).to_markdown());
            md.push_str(&profile_table(&format!("{title} (profile)"), &evals).to_markdown());
        }
    }
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_fig2_test"));
        ctx.scale = 1024;
        ctx.queries_per_size = 5;
        let md = run(&ctx).unwrap();
        assert!(md.contains("Khy"));
        assert!(ctx.dir("fig2").join("storage_eps1_by_size.csv").exists());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
