//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENT: table2 | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | dim | ablate | all
//!
//! OPTIONS:
//!   --out <DIR>       output directory            [default: results]
//!   --scale <K>       dataset scale divisor       [default: 1 = paper scale]
//!   --trials <T>      noise trials per method     [default: 3]
//!   --queries <Q>     queries per size class      [default: 200]
//!   --seed <S>        master seed                 [default: 20130408]
//!   --eps <LIST>      comma-separated ε values    [default: 0.1,1.0]
//! ```
//!
//! Each experiment writes CSV series under `<out>/<experiment>/` and the
//! run appends a markdown summary to `<out>/SUMMARY.md` (for `all`) or
//! prints it to stdout.

use std::process::ExitCode;

use dpgrid_eval::experiments::{self, ExpContext};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--out DIR] [--scale K] [--trials T] [--queries Q] \
         [--seed S] [--eps LIST] <table2|fig1|fig2|fig3|fig4|fig5|fig6|dim|ablate|all>..."
    );
    std::process::exit(2);
}

fn parse_args() -> (ExpContext, Vec<String>) {
    let mut ctx = ExpContext::paper("results");
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match arg.as_str() {
            "--out" => ctx.out_dir = value("--out").into(),
            "--scale" => {
                ctx.scale = value("--scale").parse().unwrap_or_else(|_| usage());
            }
            "--trials" => {
                ctx.trials = value("--trials").parse().unwrap_or_else(|_| usage());
            }
            "--queries" => {
                ctx.queries_per_size = value("--queries").parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                ctx.seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--eps" => {
                ctx.epsilons = value("--eps")
                    .split(',')
                    .map(|t| t.trim().parse::<f64>().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    (ctx, experiments)
}

fn main() -> ExitCode {
    let (ctx, requested) = parse_args();
    eprintln!(
        "repro: out={} scale=1/{} trials={} queries/size={} seed={} eps={:?}",
        ctx.out_dir.display(),
        ctx.scale,
        ctx.trials,
        ctx.queries_per_size,
        ctx.seed,
        ctx.epsilons
    );
    let mut all_md = String::new();
    for exp in &requested {
        let started = std::time::Instant::now();
        let result = match exp.as_str() {
            "table2" => experiments::table2::run(&ctx),
            "fig1" => experiments::fig1::run(&ctx),
            "fig2" => experiments::fig2::run(&ctx),
            "fig3" => experiments::fig3::run(&ctx),
            "fig4" => experiments::fig4::run(&ctx),
            "fig5" => experiments::fig5::run(&ctx),
            "fig6" => experiments::fig6::run(&ctx),
            "dim" => experiments::dim::run(&ctx),
            "ablate" => experiments::ablate::run(&ctx),
            "all" => experiments::run_all(&ctx),
            other => {
                eprintln!("unknown experiment `{other}`");
                usage();
            }
        };
        match result {
            Ok(md) => {
                eprintln!(
                    "repro: {exp} done in {:.1}s",
                    started.elapsed().as_secs_f64()
                );
                all_md.push_str(&md);
            }
            Err(e) => {
                eprintln!("repro: {exp} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{all_md}");
    ExitCode::SUCCESS
}
