//! Integration tests for the extension features: the portable release
//! format, ablation method variants, noise sources, and the 1-D
//! histograms.

use dpgrid::baselines::oned::{project_x, Histogram1D};
use dpgrid::core::{synthetic, Release};
use dpgrid::eval::Method;
use dpgrid::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn release_interop_across_all_methods() {
    // Every method's synopsis can be exported, serialized, re-loaded by
    // a consumer, and still answers identically.
    let ds = PaperDataset::Landmark.generate_n(1, 4_000).unwrap();
    let q = Rect::new(-100.0, 30.0, -85.0, 42.0).unwrap();
    let methods = [
        Method::ug(12),
        Method::ag(6),
        Method::privelet(12),
        Method::KdHybrid,
        Method::hierarchy(12, 2, 2),
        Method::Flat,
    ];
    for m in methods {
        let syn = m.build_boxed(&ds, 1.0, &mut rng(7)).unwrap();
        let rel = Release::from_synopsis(format!("{m:?}"), &syn);
        let mut buf = Vec::new();
        rel.write_json(&mut buf).unwrap();
        let back = Release::read_json(&buf[..]).unwrap();
        assert!(
            (back.answer(&q) - syn.answer(&q)).abs() < 1e-9,
            "{m:?}: release answer diverges"
        );
        assert_eq!(back.epsilon(), 1.0);
    }
}

#[test]
fn ablation_variants_build_and_differ() {
    let ds = PaperDataset::Checkin.generate_n(2, 20_000).unwrap();
    let q = Rect::new(-30.0, 20.0, 60.0, 70.0).unwrap();
    let base = Method::AgVariant {
        m1: Some(8),
        ci: true,
        fixed_m2: None,
    };
    let no_ci = Method::AgVariant {
        m1: Some(8),
        ci: false,
        fixed_m2: None,
    };
    let a = base.build_boxed(&ds, 0.5, &mut rng(3)).unwrap();
    let b = no_ci.build_boxed(&ds, 0.5, &mut rng(3)).unwrap();
    assert_ne!(a.answer(&q), b.answer(&q));

    // Geometric UG answers are sums of integers on aligned queries.
    let geo = Method::UgVariant {
        m: Some(10),
        geometric: true,
        aspect: false,
    };
    let g = geo.build_boxed(&ds, 1.0, &mut rng(4)).unwrap();
    let whole = *ds.domain().rect();
    let total = g.answer(&whole);
    assert!((total - total.round()).abs() < 1e-6);

    // Aspect-aware variant builds and covers the domain.
    let aspect = Method::UgVariant {
        m: Some(10),
        geometric: false,
        aspect: true,
    };
    let a = aspect.build_boxed(&ds, 1.0, &mut rng(5)).unwrap();
    let area: f64 = a.cells().iter().map(|(r, _)| r.area()).sum();
    assert!((area - ds.domain().area()).abs() < 1e-6);

    // Variant labels are distinguishable.
    assert_eq!(no_ci.label(0, 1.0), "A8[noCI]");
    assert_eq!(geo.label(0, 1.0), "U10[geo]");
    assert_eq!(
        Method::KdHybridVariant { stop_factor: 0.0 }.label(0, 1.0),
        "Khy[stop=0]"
    );
}

#[test]
fn synthetic_from_any_release() {
    let ds = PaperDataset::Storage.generate_n(3, 2_000).unwrap();
    let syn = Method::KdHybrid.build_boxed(&ds, 2.0, &mut rng(6)).unwrap();
    let rel = Release::from_synopsis("kd", &syn);
    let out = synthetic::synthesize(&rel, 1_000, &mut rng(7)).unwrap();
    assert_eq!(out.len(), 1_000);
    for p in out.points() {
        assert!(ds.domain().contains(p));
    }
}

#[test]
fn oned_projection_consistent_with_2d_counts() {
    let ds = PaperDataset::Road.generate_n(4, 5_000).unwrap();
    let bins = project_x(&ds, 50);
    assert_eq!(bins.iter().sum::<f64>(), 5_000.0);
    // Bin i's count equals the 2-D count of the corresponding strip.
    let d = ds.domain().rect();
    let w = d.width() / 50.0;
    for i in [0usize, 13, 37, 49] {
        let strip = Rect::new(
            d.x0() + i as f64 * w,
            d.y0(),
            d.x0() + (i + 1) as f64 * w,
            d.y1() + 1.0, // include the closed top edge
        )
        .unwrap();
        let strip_count = ds.count_in(&strip) as f64;
        // The last bin also holds points on the closed right edge.
        let expect = if i == 49 {
            let edge = ds.points().iter().filter(|p| p.x == d.x1()).count() as f64;
            strip_count + edge
        } else {
            strip_count
        };
        assert_eq!(bins[i], expect, "bin {i}");
    }
}

proptest! {
    /// 1-D interval answers are additive under splitting.
    #[test]
    fn histogram1d_additivity(
        seed in 0u64..500,
        n_bins in 1usize..64,
        split in 0.0f64..1.0,
    ) {
        let counts: Vec<f64> = (0..n_bins).map(|i| ((i * 7) % 5) as f64).collect();
        let h = Histogram1D::flat(&counts, 1.0, &mut rng(seed)).unwrap();
        let n = n_bins as f64;
        let mid = split * n;
        let whole = h.answer(0.0, n);
        let parts = h.answer(0.0, mid) + h.answer(mid, n);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// Hierarchical and flat 1-D histograms agree exactly at huge ε.
    #[test]
    fn histogram1d_methods_agree_noiseless(
        n_bins in 2usize..40,
        a_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let counts: Vec<f64> = (0..n_bins).map(|i| (i % 7) as f64).collect();
        let f = Histogram1D::flat(&counts, 1e12, &mut rng(1)).unwrap();
        let h = Histogram1D::hierarchical(&counts, 1e12, 2, &mut rng(2)).unwrap();
        let n = n_bins as f64;
        let a = a_frac * n;
        let b = (a + len_frac * (n - a)).min(n);
        prop_assert!((f.answer(a, b) - h.answer(a, b)).abs() < 1e-3);
    }

    /// Releases survive arbitrary valid-grid roundtrips.
    #[test]
    fn release_roundtrip_property(
        cols in 1usize..8,
        rows in 1usize..8,
        seed in 0u64..200,
    ) {
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
        let ds = dpgrid::geo::generators::uniform(domain, 100, &mut rng(seed));
        let grid = DenseGrid::count(&ds, cols, rows).unwrap();
        let cells: Vec<(Rect, f64)> = grid
            .iter_cells()
            .map(|(_, _, r, v)| (r, v))
            .collect();
        let rel = Release::from_parts("prop", 1.0, domain, cells).unwrap();
        let mut buf = Vec::new();
        rel.write_json(&mut buf).unwrap();
        let back = Release::read_json(&buf[..]).unwrap();
        prop_assert_eq!(back.cell_count(), cols * rows);
        prop_assert!((back.total_estimate() - 100.0).abs() < 1e-9);
    }
}
