//! Deterministic key → shard placement, shared by publishing and
//! serving.
//!
//! A sharded deployment needs *one* answer to "which shard owns
//! release key `k`?", and it needs that answer to be identical in the
//! publisher that places releases, in every router that routes queries,
//! and across process restarts and host boundaries. This module is
//! that single source of truth: **rendezvous (highest-random-weight)
//! hashing** over shard *names*, built on a fixed FNV-1a/splitmix64
//! construction with no per-process state (`RandomState`, ASLR,
//! anything seeded) anywhere near it.
//!
//! Rendezvous hashing gives two properties the serving tier leans on:
//!
//! * **Determinism** — [`rendezvous_score`] is a pure function of the
//!   shard-name and key bytes, so any two processes (or machines) that
//!   agree on the shard names agree on placement.
//! * **Minimal disruption** — removing one of `k` shards remaps
//!   *exactly* the keys that lived on it (~1/k of the keyspace);
//!   adding a shard steals only the keys it now wins. No other key
//!   moves, so topology changes never invalidate the bulk of a
//!   deployment's placement (and with it, every warm surface cache).
//!
//! The publishing side uses the same placement through
//! [`ShardedSink`]: a [`crate::Pipeline::publish_into`] against the
//! sink lands each release on the sink whose name wins the rendezvous
//! for that key, so build → publish → route agree by construction.

use crate::pipeline::ReleaseSink;
use crate::release::Release;

/// The deterministic placement score of `(shard, key)`.
///
/// FNV-1a over the shard-name bytes, a `0xff` separator (a byte that
/// cannot occur in UTF-8, so `("ab", "c")` and `("a", "bc")` never
/// collide), FNV-1a over the key bytes, then a splitmix64 finalizer
/// for avalanche — FNV alone is too weak on short, similar names to
/// balance a rendezvous election. Pure function of its arguments:
/// no process-local state, so scores agree across processes and hosts.
///
/// The highest score over a set of shard names wins the key (see
/// [`rendezvous_route`]).
pub fn rendezvous_score(shard: &str, key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in shard.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h = (h ^ 0xff).wrapping_mul(FNV_PRIME);
    for &b in key.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Index of the shard that owns `key` under rendezvous hashing: the
/// shard whose [`rendezvous_score`] with the key is highest (ties —
/// only possible with duplicate names — go to the lower index).
/// Returns `None` when `shards` is empty.
pub fn rendezvous_route<S: AsRef<str>>(shards: &[S], key: &str) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    for (i, shard) in shards.iter().enumerate() {
        let score = rendezvous_score(shard.as_ref(), key);
        if best.is_none_or(|(_, top)| score > top) {
            best = Some((i, score));
        }
    }
    best.map(|(i, _)| i)
}

/// A publishing sink that fans releases out over named shard sinks by
/// the rendezvous placement — the build-side half of a sharded
/// deployment.
///
/// Give each backing sink the *same name its serving shard uses* and
/// every [`crate::Pipeline::publish_into`] lands the release exactly
/// where the query router will later look for it; nothing else keeps
/// the two sides consistent, so the names are the contract.
///
/// ```
/// use dpgrid_core::{Method, Pipeline, Release, ShardedSink};
/// use dpgrid_geo::generators::PaperDataset;
///
/// let dataset = PaperDataset::Storage.generate_n(1, 1_500).unwrap();
/// let mut sink: ShardedSink<Vec<(String, Release)>> = ShardedSink::new(
///     [("alpha", Vec::new()), ("beta", Vec::new())]
///         .map(|(name, sink)| (name.to_string(), sink))
///         .into(),
/// );
/// for key in ["k1", "k2", "k3", "k4"] {
///     Pipeline::new(&dataset)
///         .method(Method::ug(8))
///         .seed(7)
///         .publish_into(&mut sink, key)
///         .unwrap();
/// }
/// // Every release sits on the shard the rendezvous names for its key.
/// for (name, releases) in sink.shards() {
///     for (key, _) in releases {
///         assert_eq!(sink.route(key), Some(name.as_str()));
///     }
/// }
/// ```
#[derive(Debug)]
pub struct ShardedSink<S> {
    shards: Vec<(String, S)>,
}

impl<S> ShardedSink<S> {
    /// A sink routing over `shards` (name, backing sink) pairs. The
    /// iteration order only breaks rendezvous ties between *duplicate*
    /// names — use distinct names.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty: a zero-shard sink could only
    /// drop published releases on the floor, and that data loss would
    /// otherwise surface much later (as unknown keys at query time)
    /// with nothing pointing back at the publish.
    pub fn new(shards: Vec<(String, S)>) -> Self {
        assert!(
            !shards.is_empty(),
            "ShardedSink requires at least one shard; publishing into a zero-shard sink would \
             silently discard releases"
        );
        ShardedSink { shards }
    }

    /// The shard names, in construction order.
    pub fn shard_names(&self) -> Vec<&str> {
        self.shards.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// Name of the shard that owns `key` (`None` on an empty sink).
    pub fn route(&self, key: &str) -> Option<&str> {
        rendezvous_route(&self.shard_names(), key).map(|i| self.shards[i].0.as_str())
    }

    /// The backing sink under `name`, if present.
    pub fn get(&self, name: &str) -> Option<&S> {
        self.shards.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The (name, sink) pairs, in construction order.
    pub fn shards(&self) -> &[(String, S)] {
        &self.shards
    }

    /// Consumes the sink, returning the (name, sink) pairs.
    pub fn into_shards(self) -> Vec<(String, S)> {
        self.shards
    }
}

impl<S: ReleaseSink> ReleaseSink for ShardedSink<S> {
    /// Routes the release to the rendezvous winner for `key` (the
    /// constructor guarantees at least one shard exists).
    fn accept_release(&mut self, key: String, release: Release) {
        let i = rendezvous_route(&self.shard_names(), &key).expect("sink has at least one shard");
        self.shards[i].1.accept_release(key, release);
    }

    /// Evicts from the shard that owns `key` — the same rendezvous
    /// winner the release was published to.
    fn evict_release(&mut self, key: &str) -> bool {
        let i = rendezvous_route(&self.shard_names(), key).expect("sink has at least one shard");
        self.shards[i].1.evict_release(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;

    /// Cross-process determinism is pinned by literal score values: a
    /// hash that consults any per-process state (or a silently changed
    /// constant) breaks these fixtures, not just same-process
    /// comparisons.
    #[test]
    fn scores_are_pinned_constants() {
        assert_eq!(rendezvous_score("alpha", "storage"), 14084156026146814010);
        assert_eq!(rendezvous_score("beta", "storage"), 4985210857555750811);
        assert_eq!(rendezvous_score("alpha", ""), 10491324824080500766);
        assert_eq!(rendezvous_score("", "storage"), 14816588118878888080);
        assert_eq!(rendezvous_score("", ""), 134870256705401553);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_sink_is_rejected_at_construction() {
        let _: ShardedSink<Vec<(String, Release)>> = ShardedSink::new(Vec::new());
    }

    #[test]
    fn separator_prevents_concatenation_collisions() {
        assert_ne!(
            rendezvous_score("ab", "c"),
            rendezvous_score("a", "bc"),
            "shard/key boundary must be part of the hash"
        );
    }

    #[test]
    fn route_is_stable_and_total() {
        let shards = ["s0", "s1", "s2", "s3"];
        assert_eq!(rendezvous_route::<&str>(&[], "k"), None);
        for key in ["a", "b", "release-7", "ünïcødé", ""] {
            let first = rendezvous_route(&shards, key).unwrap();
            assert!(first < shards.len());
            assert_eq!(rendezvous_route(&shards, key), Some(first));
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        let all = ["s0", "s1", "s2", "s3"];
        let keep: Vec<&str> = all.iter().copied().filter(|s| *s != "s2").collect();
        for i in 0..200 {
            let key = format!("key-{i}");
            let before = all[rendezvous_route(&all, &key).unwrap()];
            let after = keep[rendezvous_route(&keep, &key).unwrap()];
            if before != "s2" {
                assert_eq!(before, after, "{key} moved although its shard survived");
            }
        }
    }

    #[test]
    fn sharded_sink_places_by_rendezvous() {
        let dataset = PaperDataset::Storage.generate_n(3, 1_500).unwrap();
        let mut sink: ShardedSink<Vec<(String, Release)>> = ShardedSink::new(
            ["alpha", "beta", "gamma"]
                .iter()
                .map(|n| (n.to_string(), Vec::new()))
                .collect(),
        );
        let keys: Vec<String> = (0..12).map(|i| format!("r{i:02}")).collect();
        for key in &keys {
            Pipeline::new(&dataset)
                .method(Method::ug(4))
                .seed(1)
                .publish_into(&mut sink, key.clone())
                .unwrap();
        }
        let mut placed = 0;
        for (name, releases) in sink.shards() {
            for (key, _) in releases {
                assert_eq!(sink.route(key), Some(name.as_str()));
                placed += 1;
            }
        }
        assert_eq!(placed, keys.len(), "every release landed somewhere");
        assert!(sink.get("alpha").is_some());
        assert!(sink.get("nope").is_none());
    }
}
