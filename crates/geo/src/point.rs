//! A point in the plane.

use serde::{Deserialize, Serialize};

use crate::{GeoError, Result};

/// A point in 2-D space.
///
/// Coordinates are `f64` and are required to be finite by every validated
/// constructor in this crate ([`Point::try_new`], dataset loading, the
/// synthetic generators). [`Point::new`] is provided for literals and test
/// code where the values are known to be finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (longitude for geospatial data).
    pub x: f64,
    /// Vertical coordinate (latitude for geospatial data).
    pub y: f64,
}

impl Point {
    /// Creates a point without validation.
    ///
    /// Prefer [`Point::try_new`] for untrusted input.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point, rejecting NaN and infinite coordinates.
    pub fn try_new(x: f64, y: f64) -> Result<Self> {
        if !x.is_finite() {
            return Err(GeoError::NonFiniteCoordinate {
                value: x,
                context: "point x",
            });
        }
        if !y.is_finite() {
            return Err(GeoError::NonFiniteCoordinate {
                value: y,
                context: "point y",
            });
        }
        Ok(Point { x, y })
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_accepts_finite() {
        let p = Point::try_new(1.5, -2.5).unwrap();
        assert_eq!(p.x, 1.5);
        assert_eq!(p.y, -2.5);
    }

    #[test]
    fn try_new_rejects_nan() {
        assert!(Point::try_new(f64::NAN, 0.0).is_err());
        assert!(Point::try_new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn try_new_rejects_infinity() {
        assert!(Point::try_new(f64::INFINITY, 0.0).is_err());
        assert!(Point::try_new(0.0, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (2.0, 3.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 3.0));
    }
}
