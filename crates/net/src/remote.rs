//! A shard on the far side of a TCP connection.
//!
//! [`RemoteShard`] implements [`dpgrid_serve::QueryService`] and
//! [`dpgrid_serve::shard::Shard`] over a [`TcpClientPool`], so a
//! [`dpgrid_serve::ShardRouter`] mixes in-process engines and engines
//! on other hosts transparently: the router scatter–gathers, each
//! remote sub-batch travels as pipelined binary frames on one pooled
//! connection (one `Batch` frame when the peer only speaks JSON v1),
//! and the answers come back as the same typed results an in-process
//! shard produces.
//!
//! # Error mapping
//!
//! Per-query wire errors map back onto the typed [`ServeError`]s the
//! engine itself raises, so callers match one enum whether the shard
//! was local or remote — a remote `Overloaded` even keeps the
//! server's in-flight/limit counters (they travel structured in the
//! wire error's `overload` field; only a pre-`overload` peer degrades
//! to zeroes). One honest loss of fidelity: unexpected codes
//! (`Internal`, `MalformedRequest`, …) collapse into
//! [`ServeError::Unavailable`]. A *transport* failure — the host is
//! unreachable, the pool's dial failed — fails the whole sub-batch
//! with [`ServeError::Unavailable`], which the router isolates to
//! exactly the requests routed here.

use std::net::{SocketAddr, ToSocketAddrs};

use dpgrid_serve::shard::Shard;
use dpgrid_serve::wire::{ErrorCode, OverloadInfo, WireError};
use dpgrid_serve::{
    EngineStats, QueryRequest, QueryResponse, QueryService, ServeError, WindowAnswer, WindowQuery,
};

use crate::error::{NetError, Result};
use crate::pool::TcpClientPool;

/// A [`Shard`] served by a remote `TcpServer`, reached through a
/// reconnecting connection pool.
#[derive(Debug)]
pub struct RemoteShard {
    pool: TcpClientPool,
    /// How the shard names itself in errors: the dialed address.
    label: String,
}

impl RemoteShard {
    /// Dials `addr` (verifying reachability with a ping) and wraps it
    /// as a routable shard.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Ok(RemoteShard::with_pool(TcpClientPool::connect(addr)?))
    }

    /// Wraps an existing pool (e.g. one with a custom idle cap).
    pub fn with_pool(pool: TcpClientPool) -> Self {
        let label = pool.addr().to_string();
        RemoteShard { pool, label }
    }

    /// The remote address this shard dials.
    pub fn addr(&self) -> SocketAddr {
        self.pool.addr()
    }

    /// The connection pool (for idle-cap tuning or diagnostics).
    pub fn pool(&self) -> &TcpClientPool {
        &self.pool
    }

    /// The whole-sub-batch failure for an unreachable host.
    fn unavailable(&self, reason: &impl std::fmt::Display) -> ServeError {
        ServeError::Unavailable {
            shard: self.label.clone(),
            reason: reason.to_string(),
        }
    }

    /// Maps one per-query wire error back onto the typed in-process
    /// error a local shard would have returned.
    fn wire_to_serve(&self, e: WireError, key: &str) -> ServeError {
        match e.code {
            ErrorCode::UnknownKey => ServeError::UnknownRelease(key.to_string()),
            ErrorCode::InvalidQuery => ServeError::InvalidQuery(e.message),
            // The server sends its counters structured (the
            // `overload` field, additive within protocol v1); a
            // pre-`overload` peer's error simply carries zeroes.
            ErrorCode::Overloaded => {
                let info = e.overload.unwrap_or(OverloadInfo {
                    inflight_rects: 0,
                    limit: 0,
                });
                ServeError::Overloaded {
                    inflight_rects: info.inflight_rects,
                    limit: info.limit,
                }
            }
            ErrorCode::MalformedRequest | ErrorCode::UnsupportedVersion | ErrorCode::Internal => {
                self.unavailable(&e)
            }
        }
    }
}

impl QueryService for RemoteShard {
    /// One pipelined round trip on a pooled connection: every request
    /// travels as its own id-correlated binary frame, written in one
    /// burst so the socket stays busy while the server answers (a
    /// JSON-v1-only peer gets one `Batch` frame instead — same
    /// semantics). Transport failure fails every request in the
    /// sub-batch with [`ServeError::Unavailable`]; per-query failures
    /// come back typed, exactly as a local shard isolates them.
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<dpgrid_serve::Result<QueryResponse>> {
        if requests.is_empty() {
            return Vec::new();
        }
        match self
            .pool
            .with_client(|client| client.query_pipelined(requests))
        {
            Ok(outcomes) => outcomes
                .into_iter()
                .zip(requests)
                .map(|(outcome, request)| {
                    outcome.map_err(|e| self.wire_to_serve(e, &request.release_key))
                })
                .collect(),
            Err(e) => {
                let reason = e.to_string();
                requests
                    .iter()
                    .map(|_| {
                        Err(ServeError::Unavailable {
                            shard: self.label.clone(),
                            reason: reason.clone(),
                        })
                    })
                    .collect()
            }
        }
    }

    /// The remote engine's counters; an unreachable host reports
    /// zeroes (the router's own per-shard `routed`/`failed` counters
    /// stay exact regardless).
    fn stats(&self) -> EngineStats {
        self.pool
            .with_client(|client| client.stats())
            .unwrap_or_else(|_| EngineStats::zeroed())
    }

    /// The remote's advertised keys; empty when unreachable (or when
    /// the remote predates the `Keys` request).
    fn keys(&self) -> Vec<String> {
        self.pool
            .with_client(|client| client.keys())
            .unwrap_or_default()
    }

    /// One native `Window` frame — the server resolves the covering
    /// epochs and sums them in a single round trip, instead of the
    /// default resolution (a `Keys` round trip followed by a batch),
    /// which pays per-epoch work across the wire. A pre-`Window` peer
    /// rejects the kind as `MalformedRequest` — the standard "feature
    /// unsupported" signal — and this falls back to that keys-based
    /// resolution, which only needs request kinds every peer has.
    fn window(&self, query: &WindowQuery) -> dpgrid_serve::Result<WindowAnswer> {
        let sent = self.pool.with_client(|client| {
            client.window(
                &query.keyspace,
                query.range.start,
                query.range.end,
                &query.rects,
            )
        });
        match sent {
            Ok(answer) => Ok(answer),
            Err(NetError::Server(e)) if e.code == ErrorCode::MalformedRequest => {
                dpgrid_serve::resolve_window_via_keys(self, query)
            }
            Err(NetError::Server(e)) => {
                // Attribute UnknownKey to the window's own epoch key
                // (the same label the in-process resolver uses for an
                // uncovered range).
                let key = format!(
                    "{}@epoch:{}-{}",
                    query.keyspace, query.range.start, query.range.end
                );
                Err(self.wire_to_serve(e, &key))
            }
            Err(e) => Err(self.unavailable(&e)),
        }
    }
}

impl Shard for RemoteShard {}
