//! The batched query frontend over a release catalog.
//!
//! A [`QueryEngine`] wraps a [`Catalog`] behind interior locking so any
//! number of threads can answer queries and insert releases
//! concurrently. The serving discipline:
//!
//! 1. **Admit before touching anything.** Every request first reserves
//!    its rectangles against a bounded in-flight budget
//!    ([`QueryEngine::with_admission_limit`]); a request that does not
//!    fit is *shed* with a typed [`ServeError::Overloaded`] instead of
//!    queueing unboundedly — overload degrades into fast, explicit
//!    rejections rather than latency collapse, and a transport can
//!    surface the error code for client backoff.
//! 2. **Resolve under the lock, compile and answer outside it.** A
//!    request (or a whole batch) takes the catalog lock only long
//!    enough to lease warm `Arc<CompiledSurface>` handles or cold
//!    release leases; O(cells·log cells) surface compilations run
//!    *unlocked* (each release's `OnceLock` keeps them exactly-once)
//!    and answering holds no lock either, so neither slow queries nor
//!    cold compiles block inserts or other requests.
//! 3. **Shard over scoped threads.** Batches fan out across
//!    `std::thread::scope` workers, and each request's rectangles run
//!    through the same [`dpgrid_geo::answer_all_batched`] driver the
//!    rest of the workspace uses (or a pinned worker count via
//!    [`QueryEngine::with_workers`]).
//! 4. **Typed responses.** Every [`QueryResponse`] carries the release
//!    version it answered against and whether the surface was warm,
//!    so callers can reason about staleness and cache behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dpgrid_core::{Release, ReleaseSink};
use dpgrid_geo::{answer_all_with_workers, Rect};
use serde::{Deserialize, Serialize};

use crate::catalog::{CacheState, Catalog, CatalogStats, Lease, SurfaceHandle};
use crate::error::{Result, ServeError};

/// Default in-flight rectangle budget: generous enough that only a
/// genuine overload (thousands of concurrent heavy batches) sheds.
pub const DEFAULT_ADMISSION_LIMIT: usize = 1 << 20;

/// A batch of rectangle count queries addressed to one release.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Catalog key of the release to answer from.
    pub release_key: String,
    /// The query rectangles, answered in order.
    pub rects: Vec<Rect>,
}

impl QueryRequest {
    /// A request for `rects` against the release under `key`.
    pub fn new(key: impl Into<String>, rects: Vec<Rect>) -> Self {
        QueryRequest {
            release_key: key.into(),
            rects,
        }
    }
}

/// The typed answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Key the request was routed to.
    pub release_key: String,
    /// Version of the release that answered (see [`Catalog::version`]).
    pub version: u64,
    /// Whether the compiled surface was resident when the request
    /// arrived.
    pub cache: CacheState,
    /// One answer per requested rectangle, same order.
    pub answers: Vec<f64>,
}

/// Point-in-time transport counters a network server layers onto
/// [`EngineStats`] — socket-level traffic the engine itself never
/// sees. Produced by `dpgrid-net`'s servers; `None` for an engine
/// queried in-process (there is no transport to count).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Request frames decoded (both codecs, malformed ones excluded).
    pub frames_decoded: u64,
    /// Times a connection's input processing was paused because its
    /// outbound buffer crossed the high-water mark (multiplexed
    /// server backpressure; always 0 for the threaded server, whose
    /// blocking writes stall implicitly).
    pub read_stalls: u64,
    /// Writes that hit `WouldBlock` and had to wait for socket
    /// writability (multiplexed server only).
    pub write_stalls: u64,
    /// Request payload bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Individual LDP reports accepted on the write path (the sum of
    /// every `Report` ack's `accepted` count, both codecs) — distinct
    /// from `frames_decoded`, which counts decoded request frames
    /// regardless of kind or batch size. Additive within the protocol:
    /// older peers omit the field and it decodes as 0.
    #[serde(default)]
    pub reports_accepted: u64,
}

impl TransportStats {
    /// Element-wise sum — aggregating several servers' counters reads
    /// as one tier's transport traffic.
    #[must_use]
    pub fn merge(&self, other: &TransportStats) -> TransportStats {
        TransportStats {
            accepted: self.accepted + other.accepted,
            active: self.active + other.active,
            frames_decoded: self.frames_decoded + other.frames_decoded,
            read_stalls: self.read_stalls + other.read_stalls,
            write_stalls: self.write_stalls + other.write_stalls,
            bytes_in: self.bytes_in + other.bytes_in,
            bytes_out: self.bytes_out + other.bytes_out,
            reports_accepted: self.reports_accepted + other.reports_accepted,
        }
    }
}

/// The kernel backend a host's data plane selected (see
/// `dpgrid_kernels`), carried in [`EngineStats`] so an operator can
/// confirm AVX2 is live on a production box through the same
/// connection they query over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelBackend {
    /// The portable scalar reference kernels.
    Scalar,
    /// The x86_64 AVX2 kernels.
    Avx2,
    /// An aggregate over engines running different backends (only
    /// produced by [`EngineStats::merge`], never selected directly).
    Mixed,
}

impl KernelBackend {
    /// The backend the kernel layer selected in this process.
    pub fn current() -> KernelBackend {
        match dpgrid_kernels::backend() {
            dpgrid_kernels::Backend::Scalar => KernelBackend::Scalar,
            dpgrid_kernels::Backend::Avx2 => KernelBackend::Avx2,
        }
    }

    /// The stable lowercase name, matching
    /// `dpgrid_kernels::active_backend()`.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Mixed => "mixed",
        }
    }

    /// Aggregation over a tier: agreeing members keep their backend,
    /// disagreeing members read as [`KernelBackend::Mixed`].
    #[must_use]
    pub fn merge(self, other: KernelBackend) -> KernelBackend {
        if self == other {
            self
        } else {
            KernelBackend::Mixed
        }
    }
}

/// Point-in-time engine counters: request traffic on top of the
/// catalog's surface-cache counters.
///
/// Serialisable: exposed over the wire protocol's `Stats` request so
/// operators can watch traffic, shedding and cache behaviour through
/// the same connection they query over.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Requests routed (successful or not, including shed ones).
    pub requests: u64,
    /// Individual rectangle queries answered.
    pub answers: u64,
    /// Requests that named an unknown release key.
    pub unknown_keys: u64,
    /// Requests shed by admission control ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Rectangles currently being answered (admitted, not yet done).
    pub inflight_rects: u64,
    /// The in-flight rectangle budget admission control enforces.
    pub admission_limit: u64,
    /// The wrapped catalog's counters.
    pub catalog: CatalogStats,
    /// Socket-level counters, when a network server answered this
    /// `Stats` request (additive within protocol v1/v2: older peers
    /// simply omit the field and it decodes as `None`).
    #[serde(default)]
    pub transport: Option<TransportStats>,
    /// The kernel backend the answering host's data plane selected
    /// (additive within v1/v2: older peers omit the field and it
    /// decodes as `None`).
    #[serde(default)]
    pub kernel_backend: Option<KernelBackend>,
}

impl EngineStats {
    /// All-zero counters: the identity of [`EngineStats::merge`] and
    /// the honest placeholder a router reports for a shard it cannot
    /// reach.
    pub fn zeroed() -> Self {
        EngineStats::default()
    }

    /// Element-wise aggregation of two engines' counters — the exact
    /// stats of a tier serving through both (a shard router sums its
    /// backends this way).
    ///
    /// Traffic counters add. The *bounds* (`admission_limit`, and the
    /// catalog's `capacity`/`budget_bytes`) add **saturating**, so an
    /// unbounded member (`u64::MAX`/`usize::MAX`) keeps the aggregate
    /// unbounded instead of wrapping — the sum reads as "total
    /// capacity of the tier".
    #[must_use]
    pub fn merge(&self, other: &EngineStats) -> EngineStats {
        EngineStats {
            requests: self.requests + other.requests,
            answers: self.answers + other.answers,
            unknown_keys: self.unknown_keys + other.unknown_keys,
            shed: self.shed + other.shed,
            inflight_rects: self.inflight_rects + other.inflight_rects,
            admission_limit: self.admission_limit.saturating_add(other.admission_limit),
            catalog: self.catalog.merge(&other.catalog),
            transport: match (&self.transport, &other.transport) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or_default().merge(&b.unwrap_or_default())),
            },
            // A member with no backend report (e.g. a zeroed
            // placeholder for an unreachable shard) doesn't dilute the
            // tier's reading.
            kernel_backend: match (self.kernel_backend, other.kernel_backend) {
                (Some(a), Some(b)) => Some(a.merge(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> Self {
        iter.fold(EngineStats::zeroed(), |acc, s| acc.merge(&s))
    }
}

impl<'a> std::iter::Sum<&'a EngineStats> for EngineStats {
    fn sum<I: Iterator<Item = &'a EngineStats>>(iter: I) -> Self {
        iter.fold(EngineStats::zeroed(), |acc, s| acc.merge(s))
    }
}

/// A thread-safe, batched, multi-release query frontend.
///
/// ```
/// use dpgrid_core::{Method, Pipeline};
/// use dpgrid_geo::generators::PaperDataset;
/// use dpgrid_geo::Rect;
/// use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
///
/// let dataset = PaperDataset::Storage.generate_n(1, 2_000).unwrap();
/// let mut catalog = Catalog::new();
/// Pipeline::new(&dataset)
///     .method(Method::ug(16))
///     .seed(7)
///     .publish_into(&mut catalog, "storage")
///     .unwrap();
///
/// let engine = QueryEngine::new(catalog);
/// let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
/// let response = engine
///     .answer(&QueryRequest::new("storage", vec![q]))
///     .unwrap();
/// assert_eq!(response.answers.len(), 1);
/// assert_eq!(response.version, 1);
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    catalog: Mutex<Catalog>,
    /// Worker budget for one batch: 0 means adaptive (the
    /// `answer_all_batched` driver decides per batch).
    workers: usize,
    /// In-flight rectangle budget; requests that would exceed it shed.
    admission_limit: usize,
    inflight_rects: AtomicU64,
    requests: AtomicU64,
    answers: AtomicU64,
    unknown_keys: AtomicU64,
    shed: AtomicU64,
}

/// An admission reservation: `rects` rectangles counted in flight
/// until the permit drops (response computed or request failed).
#[derive(Debug)]
struct RectPermit<'a> {
    engine: &'a QueryEngine,
    rects: u64,
}

impl Drop for RectPermit<'_> {
    fn drop(&mut self) {
        self.engine
            .inflight_rects
            .fetch_sub(self.rects, Ordering::Relaxed);
    }
}

/// Phase-one outcome for one request of a batch: shed at admission, or
/// admitted with its catalog lease.
enum Prepared<'a> {
    Shed(ServeError),
    Admitted {
        /// Held (in flight) until the request's answers are computed.
        permit: RectPermit<'a>,
        lease: Result<Lease>,
    },
}

impl QueryEngine {
    /// Wraps `catalog` with the adaptive worker policy and the
    /// [`DEFAULT_ADMISSION_LIMIT`] in-flight rectangle budget.
    pub fn new(catalog: Catalog) -> Self {
        QueryEngine {
            catalog: Mutex::new(catalog),
            workers: 0,
            admission_limit: DEFAULT_ADMISSION_LIMIT,
            inflight_rects: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            answers: AtomicU64::new(0),
            unknown_keys: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Pins the total worker budget per batch. `1` answers strictly
    /// sequentially (the benchmarking baseline); `0` restores the
    /// adaptive policy.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the number of rectangles the engine answers concurrently.
    ///
    /// A request whose rectangles do not fit under the budget —
    /// including a single request larger than the whole budget — is
    /// shed with [`ServeError::Overloaded`] instead of queueing. This
    /// is the engine's backpressure seam: transports map the error to
    /// a retryable wire code rather than letting load queue
    /// unboundedly behind the listener.
    pub fn with_admission_limit(mut self, rects: usize) -> Self {
        self.admission_limit = rects;
        self
    }

    /// The configured worker budget (0 = adaptive).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The in-flight rectangle budget.
    pub fn admission_limit(&self) -> usize {
        self.admission_limit
    }

    /// Inserts (or re-versions) a release, returning its version.
    /// Concurrent queries keep answering against the surface they
    /// already leased.
    pub fn insert(&self, key: impl Into<String>, release: Release) -> u64 {
        self.lock().insert(key, release)
    }

    /// Runs `f` with exclusive access to the wrapped catalog — the
    /// escape hatch for maintenance (directory loads, removals,
    /// budget inspection) without tearing the engine down.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        f(&mut self.lock())
    }

    /// The sorted release keys currently held (the engine's advertised
    /// keyspace; takes the catalog lock briefly).
    pub fn keys(&self) -> Vec<String> {
        self.lock().keys()
    }

    /// Answers one request: admits its rectangles against the
    /// in-flight budget, resolves the release's compiled surface
    /// (compiling outside the catalog lock if cold), then answers
    /// every rectangle with no lock held — the same
    /// admit → lease → finish flow as one slot of [`answer_batch`],
    /// so both paths share their accounting.
    ///
    /// [`answer_batch`]: QueryEngine::answer_batch
    pub fn answer(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let prepared = match self.admit(request.rects.len()) {
            Err(e) => Prepared::Shed(e),
            Ok(permit) => Prepared::Admitted {
                permit,
                lease: self.lock().lease(&request.release_key),
            },
        };
        self.finish_prepared(request, prepared, self.workers)
    }

    /// Routes a batch of requests across releases: every request is
    /// admitted against the in-flight rectangle budget (those that do
    /// not fit are shed with [`ServeError::Overloaded`], without
    /// touching the catalog), warm surfaces are leased under one short
    /// catalog lock, then the requests are sharded over
    /// `std::thread::scope` workers — cold compilations run on the
    /// workers with no lock held (concurrently across distinct
    /// releases, exactly once per release whatever the batch shape) —
    /// and each request's rectangles are answered through the shared
    /// batched driver.
    ///
    /// Responses come back in request order; a request for an unknown
    /// key (or one shed by admission control) fails alone without
    /// poisoning the rest of the batch.
    pub fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        // Phase one: admission (lock-free), then warm handles and cold
        // leases for the admitted requests under one short lock.
        let permits: Vec<Result<RectPermit>> =
            requests.iter().map(|r| self.admit(r.rects.len())).collect();
        let mut prepared: Vec<Option<Prepared>> = {
            let mut catalog = self.lock();
            requests
                .iter()
                .zip(permits)
                .map(|(r, permit)| {
                    Some(match permit {
                        Err(e) => Prepared::Shed(e),
                        Ok(permit) => Prepared::Admitted {
                            permit,
                            lease: catalog.lease(&r.release_key),
                        },
                    })
                })
                .collect()
        };
        // Phase two runs inside the shards: each worker finishes its
        // requests' leases (cold compiles execute on the worker, so a
        // batch over K cold releases compiles them concurrently — the
        // per-release `OnceLock` dedups same-key races) and answers.
        // Other threads keep leasing and inserting meanwhile.
        let budget = self.budget();
        let shards = requests.len().min(budget).max(1);
        if shards <= 1 {
            return requests
                .iter()
                .zip(&mut prepared)
                .map(|(req, slot)| {
                    self.finish_prepared(req, slot.take().expect("prepared once"), self.workers)
                })
                .collect();
        }
        // Shard requests across scoped workers. With a pinned budget,
        // divide it so the per-request fan-out keeps the total thread
        // count near the budget instead of multiplying the two levels;
        // the adaptive policy (0) needs no division — the shared
        // driver already counts concurrent fan-outs and sizes itself.
        let per_request = if self.workers == 0 {
            0
        } else {
            (self.workers / shards).max(1)
        };
        let chunk = requests.len().div_ceil(shards);
        let mut out: Vec<Option<Result<QueryResponse>>> = requests.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((req_chunk, prep_chunk), out_chunk) in requests
                .chunks(chunk)
                .zip(prepared.chunks_mut(chunk))
                .zip(out.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for ((req, prep), slot) in req_chunk.iter().zip(prep_chunk).zip(out_chunk) {
                        *slot = Some(self.finish_prepared(
                            req,
                            prep.take().expect("prepared once"),
                            per_request,
                        ));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every shard fills its slots"))
            .collect()
    }

    /// Point-in-time counters (takes the catalog lock briefly).
    ///
    /// Reconciles the catalog first, so surfaces compiled through the
    /// [`QueryEngine::with_catalog`] escape hatch are swept into the
    /// byte budget before the counters are read — an idle engine's
    /// stats never under-report residency or leave the budget sitting
    /// violated until the next query arrives.
    pub fn stats(&self) -> EngineStats {
        let catalog = {
            let mut catalog = self.lock();
            catalog.reconcile();
            catalog.stats()
        };
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            answers: self.answers.load(Ordering::Relaxed),
            unknown_keys: self.unknown_keys.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            inflight_rects: self.inflight_rects.load(Ordering::Relaxed),
            admission_limit: self.admission_limit as u64,
            catalog,
            transport: None,
            kernel_backend: Some(KernelBackend::current()),
        }
    }

    /// Reserves `rects` rectangles against the in-flight budget, or
    /// sheds with [`ServeError::Overloaded`]. The returned permit
    /// releases the reservation on drop.
    ///
    /// The reservation commits only when it fits (compare-exchange),
    /// so an oversized request that can never be admitted leaves no
    /// transient spike in the counter — concurrent requests that do
    /// fit are never spuriously shed by a rejected one.
    fn admit(&self, rects: usize) -> Result<RectPermit<'_>> {
        let rects = rects as u64;
        let limit = self.admission_limit as u64;
        let mut inflight = self.inflight_rects.load(Ordering::Relaxed);
        loop {
            if inflight + rects > limit {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    inflight_rects: inflight,
                    limit,
                });
            }
            match self.inflight_rects.compare_exchange_weak(
                inflight,
                inflight + rects,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(RectPermit {
                        engine: self,
                        rects,
                    })
                }
                Err(current) => inflight = current,
            }
        }
    }

    /// Completes one prepared batch slot: shed requests fail typed,
    /// admitted ones finish their lease and answer (the permit stays
    /// alive — rects count as in flight — until the answers exist).
    fn finish_prepared(
        &self,
        req: &QueryRequest,
        prepared: Prepared<'_>,
        workers: usize,
    ) -> Result<QueryResponse> {
        match prepared {
            Prepared::Shed(e) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Prepared::Admitted { permit, lease } => {
                let resolved = self.finish_lease(&req.release_key, lease);
                let response = self.respond(req, resolved, workers);
                drop(permit);
                response
            }
        }
    }

    /// Turns a phase-one lease into a handle, running any compilation
    /// with no lock held.
    fn finish_lease(&self, key: &str, lease: Result<Lease>) -> Result<SurfaceHandle> {
        match lease? {
            Lease::Warm(handle) => Ok(handle),
            Lease::Cold(cold) => {
                let handle = cold.compile();
                self.lock().note_compiled(key, handle.version);
                Ok(handle)
            }
        }
    }

    /// Answers `request` against an already-resolved surface handle,
    /// with `workers` = 0 meaning the adaptive driver.
    fn respond(
        &self,
        request: &QueryRequest,
        resolved: Result<SurfaceHandle>,
        workers: usize,
    ) -> Result<QueryResponse> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let handle = match resolved {
            Ok(handle) => handle,
            Err(e) => {
                if matches!(e, ServeError::UnknownRelease(_)) {
                    self.unknown_keys.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        let answers = if workers == 0 {
            // Adaptive: the shared driver sizes the fan-out against the
            // machine and the other fan-outs currently in flight.
            handle.surface.answer_all(&request.rects)
        } else {
            answer_all_with_workers(&request.rects, |q| handle.surface.answer(q), workers)
        };
        self.answers
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        Ok(QueryResponse {
            release_key: request.release_key.clone(),
            version: handle.version,
            cache: handle.cache,
            answers,
        })
    }

    /// Total worker budget for one batch.
    fn budget(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The catalog lock, surviving panics in other lock holders: the
    /// catalog's state stays consistent under poisoning because every
    /// mutation (insert, touch, evict) completes or never started.
    fn lock(&self) -> MutexGuard<'_, Catalog> {
        self.catalog
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Zero-copy handoff from [`dpgrid_core::Pipeline::publish_into`].
impl ReleaseSink for QueryEngine {
    fn accept_release(&mut self, key: String, release: Release) {
        self.insert(key, release);
    }

    /// Removes `key` from the wrapped catalog; in-flight queries that
    /// already leased its surface keep answering through their `Arc`.
    fn evict_release(&mut self, key: &str) -> bool {
        self.with_catalog(|catalog| catalog.remove(key).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use dpgrid_core::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;

    fn engine_with(keys: &[(&str, u64)]) -> QueryEngine {
        let ds = PaperDataset::Storage.generate_n(3, 2_000).unwrap();
        let mut catalog = Catalog::new();
        for (key, seed) in keys {
            Pipeline::new(&ds)
                .method(Method::ug(12))
                .seed(*seed)
                .publish_into(&mut catalog, *key)
                .unwrap();
        }
        QueryEngine::new(catalog)
    }

    fn rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Rect::new(
                    -120.0 + 30.0 * t,
                    15.0 + 20.0 * t,
                    -90.0 + 10.0 * t,
                    40.0 + 5.0 * t,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn answer_routes_and_reports_cache_state() {
        let engine = engine_with(&[("a", 1), ("b", 2)]);
        let req = QueryRequest::new("a", rects(5));
        let cold = engine.answer(&req).unwrap();
        assert_eq!(cold.cache, CacheState::Cold);
        assert_eq!(cold.answers.len(), 5);
        assert_eq!(cold.version, 1);
        let warm = engine.answer(&req).unwrap();
        assert_eq!(warm.cache, CacheState::Warm);
        assert_eq!(warm.answers, cold.answers);
        assert!(matches!(
            engine.answer(&QueryRequest::new("zz", rects(1))),
            Err(ServeError::UnknownRelease(_))
        ));
        let stats = engine.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.answers, 10);
        assert_eq!(stats.unknown_keys, 1);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.inflight_rects, 0);
        assert_eq!(stats.catalog.compilations, 1);
    }

    #[test]
    fn answer_batch_keeps_request_order_and_isolates_failures() {
        let engine = engine_with(&[("a", 1), ("b", 2), ("c", 3)]);
        let requests = vec![
            QueryRequest::new("c", rects(4)),
            QueryRequest::new("missing", rects(2)),
            QueryRequest::new("a", rects(3)),
            QueryRequest::new("c", rects(4)),
        ];
        let responses = engine.answer_batch(&requests);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].as_ref().unwrap().release_key, "c");
        assert!(matches!(
            responses[1],
            Err(ServeError::UnknownRelease(ref k)) if k == "missing"
        ));
        assert_eq!(responses[2].as_ref().unwrap().release_key, "a");
        // Same release twice in one batch: both leases predate the
        // compile so both report cold, but the release's `OnceLock`
        // compiled once and the catalog counted once.
        assert_eq!(responses[0].as_ref().unwrap().cache, CacheState::Cold);
        assert_eq!(responses[3].as_ref().unwrap().cache, CacheState::Cold);
        assert_eq!(
            responses[0].as_ref().unwrap().answers,
            responses[3].as_ref().unwrap().answers
        );
        assert_eq!(engine.stats().catalog.compilations, 2);
        // The next batch runs entirely warm.
        for response in engine.answer_batch(&requests[2..]) {
            assert_eq!(response.unwrap().cache, CacheState::Warm);
        }
        assert_eq!(engine.stats().catalog.compilations, 2);
    }

    #[test]
    fn batch_matches_per_request_answers_across_worker_policies() {
        let requests: Vec<QueryRequest> = [("a", 40), ("b", 7), ("a", 1)]
            .iter()
            .map(|(k, n)| QueryRequest::new(*k, rects(*n)))
            .collect();
        let sequential = engine_with(&[("a", 1), ("b", 2)]).with_workers(1);
        let expected: Vec<Vec<f64>> = requests
            .iter()
            .map(|r| sequential.answer(r).unwrap().answers)
            .collect();
        for workers in [0usize, 1, 2, 4] {
            let engine = engine_with(&[("a", 1), ("b", 2)]).with_workers(workers);
            let responses = engine.answer_batch(&requests);
            for (resp, expect) in responses.iter().zip(&expected) {
                assert_eq!(&resp.as_ref().unwrap().answers, expect, "workers {workers}");
            }
        }
    }

    #[test]
    fn admission_sheds_oversized_requests_with_typed_overload() {
        let engine = engine_with(&[("a", 1)]).with_admission_limit(8);
        assert_eq!(engine.admission_limit(), 8);
        // Within budget: answered normally.
        assert!(engine.answer(&QueryRequest::new("a", rects(8))).is_ok());
        // A single request larger than the whole budget sheds — it can
        // never be admitted, and typed rejection beats a silent hang.
        let big = QueryRequest::new("a", rects(9));
        match engine.answer(&big) {
            Err(ServeError::Overloaded {
                inflight_rects,
                limit,
            }) => {
                assert_eq!(inflight_rects, 0);
                assert_eq!(limit, 8);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 2);
        // The budget fully recovers: nothing leaked in flight.
        assert_eq!(stats.inflight_rects, 0);
        assert!(engine.answer(&QueryRequest::new("a", rects(8))).is_ok());
    }

    #[test]
    fn batch_sheds_excess_load_without_poisoning_admitted_requests() {
        let engine = engine_with(&[("a", 1), ("b", 2)]).with_admission_limit(10);
        // 4 + 4 fit; the third request (4 more) exceeds 10 and sheds;
        // the last fits again only if the earlier permits were still
        // held — within one batch they are, so it sheds too.
        let requests = vec![
            QueryRequest::new("a", rects(4)),
            QueryRequest::new("b", rects(4)),
            QueryRequest::new("a", rects(4)),
            QueryRequest::new("b", rects(4)),
        ];
        let responses = engine.answer_batch(&requests);
        assert!(responses[0].is_ok());
        assert!(responses[1].is_ok());
        assert!(matches!(responses[2], Err(ServeError::Overloaded { .. })));
        assert!(matches!(responses[3], Err(ServeError::Overloaded { .. })));
        assert_eq!(engine.stats().shed, 2);
        assert_eq!(engine.stats().inflight_rects, 0);
        // After the batch, the shed requests go through alone.
        assert!(engine.answer(&requests[2]).is_ok());
    }

    #[test]
    fn insert_through_engine_reversions_live_keys() {
        let engine = engine_with(&[("a", 1)]);
        let req = QueryRequest::new("a", rects(3));
        let before = engine.answer(&req).unwrap();
        let ds = PaperDataset::Storage.generate_n(3, 2_000).unwrap();
        let v2 = engine.insert(
            "a",
            Pipeline::new(&ds)
                .method(Method::ug(12))
                .seed(99)
                .publish()
                .unwrap(),
        );
        assert_eq!(v2, 2);
        let after = engine.answer(&req).unwrap();
        assert_eq!(after.version, 2);
        assert_eq!(after.cache, CacheState::Cold);
        assert_ne!(before.answers, after.answers);
    }
}
