//! Client-side report fan-out over the rendezvous placement.
//!
//! [`ReportRouter`] is the write-path twin of [`crate::RemoteShard`]:
//! where the read side scatters *queries* to the shards that hold
//! their releases, this scatters *LDP report batches* to the shards
//! that will eventually **serve** the epochs they feed. Placement is
//! the same `dpgrid_core::rendezvous_route` over shard names, applied
//! to the epoch key the collector's seal will publish under
//! (`{keyspace}@epoch:{epoch}`, via `dpgrid_core::epoch_key`) — so a
//! deployment whose publishing side uses a `dpgrid_core::ShardedSink`
//! with the same names aggregates every epoch's reports on exactly the
//! node its sealed release will live on. No cross-shard merge step
//! exists or is needed; the names are the whole contract.
//!
//! Per-shard sub-batches travel as pipelined binary `Report` frames on
//! one pooled connection ([`crate::TcpClient::submit_reports`]), and —
//! because report submission mutates collector state — are **never
//! resent** on a stale connection: a shard whose connection dies
//! mid-submit fails exactly its own slice of the batch with
//! [`ServeError::Unavailable`], and the caller decides whether
//! re-submitting could double-count.

use std::net::ToSocketAddrs;

use dpgrid_core::{epoch_key, rendezvous_route, EpochRange};
use dpgrid_serve::wire::{ErrorCode, OverloadInfo, WireError};
use dpgrid_serve::{ReportAck, ReportBatch, ServeError};

use crate::error::Result;
use crate::pool::TcpClientPool;

/// Fans report batches out to the shard that owns each batch's epoch
/// key under rendezvous placement — see the module docs above.
#[derive(Debug)]
pub struct ReportRouter {
    shards: Vec<(String, TcpClientPool)>,
}

impl ReportRouter {
    /// A router over `shards` (name, pool) pairs. The names must match
    /// the serving tier's shard names — they are what placement hashes.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty, for the same reason
    /// `dpgrid_core::ShardedSink::new` does: a zero-shard router could
    /// only drop reports on the floor.
    pub fn new(shards: Vec<(String, TcpClientPool)>) -> Self {
        assert!(
            !shards.is_empty(),
            "ReportRouter requires at least one shard; submitting into a zero-shard router \
             would silently discard reports"
        );
        ReportRouter { shards }
    }

    /// Dials every `(name, addr)` pair (verifying reachability) and
    /// wraps the pools as a router. Fails on the first unreachable
    /// shard — a router that silently starts without one of its shards
    /// would misplace every key that shard owns.
    pub fn connect<A: ToSocketAddrs>(
        shards: impl IntoIterator<Item = (String, A)>,
    ) -> Result<Self> {
        let mut pools = Vec::new();
        for (name, addr) in shards {
            pools.push((name, TcpClientPool::connect(addr)?));
        }
        Ok(ReportRouter::new(pools))
    }

    /// The shard names, in construction order.
    pub fn shard_names(&self) -> Vec<&str> {
        self.shards.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// The release key `(keyspace, epoch)`'s sealed release will
    /// publish under — the string placement hashes on both the
    /// publishing and the ingestion side.
    pub fn placement_key(keyspace: &str, epoch: u64) -> String {
        epoch_key(keyspace, EpochRange::single(epoch))
    }

    /// Name of the shard that owns `(keyspace, epoch)` — always agrees
    /// with a `dpgrid_core::ShardedSink` over the same names.
    pub fn route(&self, keyspace: &str, epoch: u64) -> &str {
        let key = Self::placement_key(keyspace, epoch);
        let i = rendezvous_route(&self.shard_names(), &key).expect("router has at least one shard");
        self.shards[i].0.as_str()
    }

    /// Scatters `batches` to their owning shards and gathers the acks
    /// back **in input order**. Each shard's sub-batch travels as one
    /// pipelined burst; within it, typed collector rejections (sealed
    /// epoch, ε mismatch, a read-only peer's `MalformedRequest`) fail
    /// only their own slot, mapped onto the same [`ServeError`]s an
    /// in-process collector raises. A shard that cannot be reached —
    /// or whose connection dies mid-submit (never retried; see the
    /// module docs) — fails exactly the batches routed to it
    /// with [`ServeError::Unavailable`]; the other shards' slices are
    /// unaffected.
    pub fn submit_reports(
        &self,
        batches: &[ReportBatch],
    ) -> Vec<std::result::Result<ReportAck, ServeError>> {
        let names = self.shard_names();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, batch) in batches.iter().enumerate() {
            let key = Self::placement_key(&batch.keyspace, batch.epoch);
            let s = rendezvous_route(&names, &key).expect("router has at least one shard");
            per_shard[s].push(i);
        }

        let mut out: Vec<Option<std::result::Result<ReportAck, ServeError>>> =
            (0..batches.len()).map(|_| None).collect();
        for (s, indices) in per_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let (name, pool) = &self.shards[s];
            let sub: Vec<&ReportBatch> = indices.iter().map(|&i| &batches[i]).collect();
            match pool.with_client(|client| client.submit_reports(&sub)) {
                Ok(outcomes) => {
                    for (&i, outcome) in indices.iter().zip(outcomes) {
                        out[i] =
                            Some(outcome.map_err(|e| wire_to_serve(name, e, &batches[i].keyspace)));
                    }
                }
                Err(e) => {
                    let reason = e.to_string();
                    for &i in indices {
                        out[i] = Some(Err(ServeError::Unavailable {
                            shard: name.clone(),
                            reason: reason.clone(),
                        }));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every batch was routed to exactly one shard"))
            .collect()
    }
}

/// Maps one per-batch wire error back onto the typed error an
/// in-process collector raises — the write-path mirror of
/// `RemoteShard`'s read-path mapping, with the same honest loss of
/// fidelity: unexpected codes (including a read-only peer's
/// `MalformedRequest`) collapse into [`ServeError::Unavailable`].
fn wire_to_serve(shard: &str, e: WireError, keyspace: &str) -> ServeError {
    match e.code {
        ErrorCode::UnknownKey => ServeError::UnknownRelease(keyspace.to_string()),
        ErrorCode::InvalidQuery => ServeError::InvalidQuery(e.message),
        ErrorCode::Overloaded => {
            let info = e.overload.unwrap_or(OverloadInfo {
                inflight_rects: 0,
                limit: 0,
            });
            ServeError::Overloaded {
                inflight_rects: info.inflight_rects,
                limit: info.limit,
            }
        }
        ErrorCode::MalformedRequest | ErrorCode::UnsupportedVersion | ErrorCode::Internal => {
            ServeError::Unavailable {
                shard: shard.to_string(),
                reason: e.to_string(),
            }
        }
    }
}
