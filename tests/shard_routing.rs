//! Property tests for the rendezvous placement the sharded tier is
//! built on: determinism (across processes — no `RandomState`, pinned
//! fixtures), balance (within 2x of ideal), and minimal disruption
//! (removing one of k shards remaps exactly the keys it owned, ~1/k).

use std::collections::HashMap;

use dpgrid::core::{rendezvous_route, rendezvous_score};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shard_names(rng: &mut StdRng, k: usize) -> Vec<String> {
    (0..k)
        .map(|i| format!("shard-{i}-{:x}", rng.random::<u32>()))
        .collect()
}

fn keys(rng: &mut StdRng, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| format!("key-{:016x}", rng.random::<u64>()))
        .collect()
}

/// Cross-process determinism: the hash consults nothing per-process,
/// so these literal values hold in every build on every host. (A
/// same-process double call proves nothing — `RandomState` is stable
/// within a process; only pinned constants catch it.)
#[test]
fn scores_are_process_independent_constants() {
    assert_eq!(rendezvous_score("alpha", "storage"), 14084156026146814010);
    assert_eq!(rendezvous_score("beta", "storage"), 4985210857555750811);
    assert_eq!(rendezvous_score("alpha", ""), 10491324824080500766);
    assert_eq!(rendezvous_score("", "storage"), 14816588118878888080);
    assert_eq!(rendezvous_score("", ""), 134870256705401553);
}

proptest! {
    /// Routing is a pure function: same names + same key → same shard,
    /// call after call, and independent of every *other* name's
    /// presence order (renaming the vector order must not matter
    /// beyond tie-breaks, which distinct names never hit).
    #[test]
    fn routing_is_deterministic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = shard_names(&mut rng, 2 + (seed % 7) as usize);
        for key in keys(&mut rng, 50) {
            let owner = rendezvous_route(&names, &key).unwrap();
            prop_assert_eq!(rendezvous_route(&names, &key), Some(owner));
            // Reversing the registration order moves the winner's
            // index but not its identity.
            let reversed: Vec<String> = names.iter().rev().cloned().collect();
            let owner_rev = rendezvous_route(&reversed, &key).unwrap();
            prop_assert_eq!(&reversed[owner_rev], &names[owner]);
        }
    }

    /// Over 1k random keys the busiest shard stays within 2x of the
    /// ideal share and the emptiest within half of it, at 2, 4 and 8
    /// shards — the guarantee that one shard never silently becomes
    /// the hot spot.
    #[test]
    fn placement_is_balanced_within_2x_of_ideal(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for k in [2usize, 4, 8] {
            let names = shard_names(&mut rng, k);
            let keys = keys(&mut rng, 1_000);
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for key in &keys {
                *counts.entry(rendezvous_route(&names, key).unwrap()).or_default() += 1;
            }
            let ideal = keys.len() / k;
            for i in 0..k {
                let count = counts.get(&i).copied().unwrap_or(0);
                prop_assert!(
                    count <= 2 * ideal,
                    "shard {i}/{k} owns {count} keys, ideal {ideal}"
                );
                prop_assert!(
                    count >= ideal / 2,
                    "shard {i}/{k} owns only {count} keys, ideal {ideal}"
                );
            }
        }
    }

    /// Removing one of k shards remaps exactly the keys it owned —
    /// every other key keeps its shard — and that moved set is ~1/k of
    /// the keyspace (≤ 2/k by the balance bound).
    #[test]
    fn removing_a_shard_is_minimally_disruptive(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 2 + (seed % 7) as usize;
        let names = shard_names(&mut rng, k);
        let keys = keys(&mut rng, 1_000);
        let removed = rng.random_range(0..k);
        let survivors: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, n)| n.clone())
            .collect();
        let mut moved = 0usize;
        for key in &keys {
            let before = &names[rendezvous_route(&names, key).unwrap()];
            let after = &survivors[rendezvous_route(&survivors, key).unwrap()];
            if before == &names[removed] {
                moved += 1;
                prop_assert!(after != before, "{} stayed on the removed shard", key);
            } else {
                prop_assert_eq!(after, before, "{} moved off a surviving shard", key);
            }
        }
        prop_assert!(
            moved <= 2 * keys.len() / k,
            "removing 1/{k} shards moved {moved}/{} keys",
            keys.len()
        );
    }
}
