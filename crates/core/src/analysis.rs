//! The paper's closed-form error model, as executable code.
//!
//! §II-B identifies the two error sources of partition-based synopses and
//! §IV-A/§IV-C derive the guidelines and the dimensionality argument from
//! them. This module encodes those formulas so that:
//!
//! * tests can verify the guidelines really minimise the modelled error;
//! * the `dim` experiment regenerates the §IV-C numbers
//!   (`4√b/√M = 0.08` vs `2b/M = 0.0008` for `M = 10⁴`, `b = 4`);
//! * users can predict error levels before spending privacy budget.

/// Standard deviation of the summed Laplace noise for a query covering
/// an `r` fraction of the domain on an `m × m` grid with per-cell budget
/// ε: the query touches `≈ r·m²` cells, each with noise of standard
/// deviation `√2/ε`, so the sum has standard deviation `√(2·r)·m/ε`.
pub fn noise_error_std(r: f64, m: usize, epsilon: f64) -> f64 {
    let q_cells = (r * (m * m) as f64).max(0.0);
    (2.0 * q_cells).sqrt() / epsilon
}

/// The paper's model of the non-uniformity error: the query border
/// crosses `≈ √r·m` cells that together hold `≈ √r·N/m` points; the
/// error is a `1/c₀` portion of that density: `√r·N / (c₀·m)`.
pub fn nonuniformity_error(r: f64, n: usize, m: usize, c0: f64) -> f64 {
    (r.max(0.0)).sqrt() * n as f64 / (c0 * m as f64)
}

/// Total modelled error for UG: the sum of the two sources.
pub fn total_error(r: f64, n: usize, m: usize, epsilon: f64, c0: f64) -> f64 {
    noise_error_std(r, m, epsilon) + nonuniformity_error(r, n, m, c0)
}

/// The `m` minimising [`total_error`] analytically:
/// `m* = √(N·ε / (√2·c₀))` — i.e. Guideline 1 with `c = √2·c₀`.
pub fn optimal_m(n: usize, epsilon: f64, c0: f64) -> f64 {
    (n as f64 * epsilon / (std::f64::consts::SQRT_2 * c0)).sqrt()
}

/// Converts the paper's Guideline-1 constant `c` to the analysis constant
/// `c₀ = c / √2`.
pub fn c0_from_c(c: f64) -> f64 {
    c / std::f64::consts::SQRT_2
}

/// §IV-C's dimensionality analysis: for a `d`-dimensional domain divided
/// into `M` leaf cells, grouping `b` adjacent cells per hierarchy node,
/// the query border consists of `2d` hyperplanes, each a fraction
/// `b^(1/d) / M^(1/d)` of the domain. Returns the total border fraction
/// `2·d·(b/M)^(1/d)`.
///
/// For `d = 1` this is the familiar `2·b/M`; the paper's example —
/// `M = 10 000`, `b = 4` — gives `0.0008` at `d = 1` and `0.08` at
/// `d = 2`, a 100× growth that explains why hierarchies lose their edge
/// in two dimensions.
pub fn border_fraction(d: u32, m_cells: u64, b: u64) -> f64 {
    assert!(d >= 1, "dimension must be at least 1");
    let ratio = (b as f64 / m_cells as f64).powf(1.0 / d as f64);
    2.0 * d as f64 * ratio
}

/// Expected noise standard deviation on a single cell released with
/// budget ε (sensitivity-1 Laplace): `√2/ε`. A convenience the
/// experiment code uses when reporting predicted-vs-observed noise.
pub fn per_cell_noise_std(epsilon: f64) -> f64 {
    std::f64::consts::SQRT_2 / epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_error_grows_linearly_in_m() {
        let a = noise_error_std(0.25, 100, 1.0);
        let b = noise_error_std(0.25, 200, 1.0);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nonuniformity_error_shrinks_in_m() {
        let a = nonuniformity_error(0.25, 1_000_000, 100, 10.0);
        let b = nonuniformity_error(0.25, 1_000_000, 200, 10.0);
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_m_matches_guideline1() {
        // Guideline 1: m = √(Nε/c) with c = √2·c₀.
        let n = 1_000_000;
        let eps = 1.0;
        let c = 10.0;
        let m_star = optimal_m(n, eps, c0_from_c(c));
        let guideline = crate::guidelines::guideline1(n, eps, c);
        assert!(
            (m_star.round() as usize as i64 - guideline as i64).abs() <= 1,
            "analysis {m_star} vs guideline {guideline}"
        );
    }

    #[test]
    fn optimal_m_minimises_total_error() {
        // Evaluate the model around the optimum; the optimum must win.
        let (n, eps, c0, r) = (1_000_000usize, 1.0, 7.0, 0.25);
        let m_star = optimal_m(n, eps, c0).round() as usize;
        let best = total_error(r, n, m_star, eps, c0);
        for m in [m_star / 4, m_star / 2, m_star * 2, m_star * 4] {
            if m >= 1 {
                assert!(
                    total_error(r, n, m, eps, c0) >= best,
                    "m = {m} beats the optimum {m_star}"
                );
            }
        }
    }

    #[test]
    fn border_fraction_reproduces_paper_example() {
        // §IV-C: M = 10 000, b = 4 → 2b/M = 0.0008 in 1-D and
        // 4√b/√M = 0.08 in 2-D.
        let d1 = border_fraction(1, 10_000, 4);
        assert!((d1 - 0.0008).abs() < 1e-12, "d=1: {d1}");
        let d2 = border_fraction(2, 10_000, 4);
        assert!((d2 - 0.08).abs() < 1e-12, "d=2: {d2}");
    }

    #[test]
    fn border_fraction_grows_with_dimension() {
        let mut last = 0.0;
        for d in 1..=6 {
            let f = border_fraction(d, 1_000_000, 8);
            assert!(f > last, "d={d}: {f} <= {last}");
            last = f;
        }
    }

    #[test]
    fn per_cell_noise_matches_laplace() {
        let mech = dpgrid_mech::LaplaceMechanism::for_count(0.5).unwrap();
        assert!((per_cell_noise_std(0.5) - mech.noise_std_dev()).abs() < 1e-12);
    }
}
