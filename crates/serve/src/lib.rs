//! Multi-release serving engine for differentially private grid
//! releases.
//!
//! The paper's synopses are publish-once artefacts; the serving
//! problem starts *after* publication: hold many releases at once,
//! answer heavy batched query traffic against any of them, and keep
//! the expensive part — each release's compiled query surface — built
//! exactly once and bounded in memory. This crate is that layer, built
//! on the two seams below it (`dpgrid_core::Pipeline` publishes typed
//! releases, `dpgrid_core::CompiledSurface` answers one release fast):
//!
//! * [`Catalog`] — keyed, versioned releases, loaded from memory
//!   ([`Catalog::insert`], or zero-copy from a pipeline via
//!   [`dpgrid_core::Pipeline::publish_into`]) or from a directory of
//!   release JSON dumps ([`Catalog::load_dir`]), with a
//!   **memory-budgeted** LRU of compiled surfaces: at most
//!   [`Catalog::memory_budget`] bytes of compiled index stay resident
//!   (accounted through
//!   [`dpgrid_core::CompiledSurface::memory_bytes`]), least-recently
//!   used surfaces are evicted when a compile overflows the budget,
//!   and a resident surface is *never* recompiled — lookups lease
//!   `Arc` clones of the same index.
//! * [`QueryEngine`] — the batched frontend: admits requests against a
//!   bounded in-flight rectangle budget (overload sheds with a typed
//!   [`ServeError::Overloaded`] instead of queueing unboundedly),
//!   routes [`QueryRequest`]`{ release_key, rects }` batches across
//!   releases, leases every surface under one catalog lock, answers
//!   with no lock held, shards batches over `std::thread::scope`
//!   workers, and returns typed [`QueryResponse`]s carrying the
//!   release version and cache state. Interior locking makes the
//!   engine `Sync`: query threads and catalog inserts interleave
//!   freely.
//! * [`QueryService`] — the transport seam: the object-safe trait
//!   (`answer_batch` + `stats` + the advertised `keys`) transports are
//!   written against, so a TCP frontend, a mock, or a sharding router
//!   all plug in the same way. [`QueryEngine`] implements it.
//! * [`shard`] — the horizontal-scaling tier: the [`Shard`] backend
//!   trait ([`LocalShard`] in-process, `dpgrid-net`'s `RemoteShard`
//!   over TCP) and the [`ShardRouter`], a [`QueryService`] that
//!   rendezvous-routes one keyspace over many shards with
//!   scatter–gather batching, per-shard error isolation and exact
//!   merged stats. Publishing places releases with the same hash via
//!   [`dpgrid_core::ShardedSink`], so build → publish → route agree.
//! * [`window`] — sliding-window queries over epoch-sliced releases:
//!   [`window::answer_window`] resolves the `{keyspace}@epoch:{i}`
//!   surfaces covering a half-open epoch range from any
//!   [`QueryService`]'s advertised keys, sums them element-wise, and
//!   reports exactly which epoch ranges were covered (compacted tiers
//!   widen coverage visibly; uncovered windows fail typed).
//! * [`wire`] — the versioned wire protocol: single-line JSON
//!   [`wire::WireRequest`]/[`wire::WireResponse`] frames with boundary
//!   rectangle validation and stable [`wire::ErrorCode`]s
//!   (unknown-key / invalid-query / overloaded …), plus
//!   [`wire::handle_frame`] dispatching one frame against any
//!   [`QueryService`]. The `dpgrid-net` crate supplies TCP framing
//!   around it.
//! * [`report`] — the write path: the `Report` wire kind (the
//!   protocol's first mutating request) carries batches of
//!   locally-perturbed frequency-oracle reports to a
//!   [`ReportService`] collector reached through
//!   [`QueryService::reports`]; read-only services answer
//!   `MalformedRequest` exactly like a pre-`Report` server. The
//!   aggregating collector itself lives in the `dpgrid-ldp` crate.
//!
//! # Example
//!
//! ```
//! use dpgrid_core::{Method, Pipeline};
//! use dpgrid_geo::generators::PaperDataset;
//! use dpgrid_geo::Rect;
//! use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
//!
//! // Publish two releases straight into a catalog bounded at 64 MiB
//! // of resident compiled surface.
//! let mut catalog = Catalog::with_memory_budget(64 << 20);
//! for (key, seed) in [("storage", 1u64), ("landmark", 2)] {
//!     let data = PaperDataset::Storage.generate_n(seed, 2_000).unwrap();
//!     Pipeline::new(&data)
//!         .epsilon(1.0)
//!         .method(Method::ag_suggested())
//!         .seed(seed)
//!         .publish_into(&mut catalog, key)
//!         .unwrap();
//! }
//!
//! // Serve batched queries across both.
//! let engine = QueryEngine::new(catalog);
//! let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
//! let responses = engine.answer_batch(&[
//!     QueryRequest::new("storage", vec![q]),
//!     QueryRequest::new("landmark", vec![q, q]),
//! ]);
//! assert_eq!(responses[0].as_ref().unwrap().answers.len(), 1);
//! assert_eq!(responses[1].as_ref().unwrap().answers.len(), 2);
//! ```
//!
//! Everything served is ε-DP released output; catalog management,
//! compilation and eviction are privacy-free post-processing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod engine;
mod error;
pub mod report;
mod service;
pub mod shard;
pub mod window;
pub mod wire;

pub use catalog::{
    CacheState, Catalog, CatalogStats, ColdLease, Lease, SurfaceHandle,
    DEFAULT_MEMORY_BUDGET_BYTES, DEFAULT_SURFACE_CAPACITY,
};
pub use engine::{
    EngineStats, KernelBackend, QueryEngine, QueryRequest, QueryResponse, TransportStats,
    DEFAULT_ADMISSION_LIMIT,
};
pub use error::{Result, ServeError};
pub use report::{ReportAck, ReportBatch, ReportPayload, ReportService};
pub use service::QueryService;
pub use shard::{LocalShard, RouterStats, Shard, ShardRouter, ShardStats};
pub use window::{answer_window, resolve_window_via_keys, WindowAnswer, WindowQuery};
