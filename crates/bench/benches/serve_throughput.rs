//! Multi-release serving throughput — the acceptance benchmark of the
//! `dpgrid-serve` engine.
//!
//! Builds three releases (two lattice-path uniform grids and one
//! band-path adaptive grid) over the 100k-point landmark dataset,
//! loads them into a `QueryEngine`, and measures end-to-end batched
//! throughput (queries/sec across `answer_batch`) under the axes that
//! matter for serving:
//!
//! * **cold vs warm cache** — the first batch pays the per-release
//!   surface compilations, every later batch runs off the LRU;
//! * **1 vs N worker threads** — the pinned sequential baseline
//!   against scoped-thread sharding (the recorded `parallelism` field
//!   says how many hardware threads the measuring machine actually
//!   had; worker scaling is necessarily flat on a 1-CPU box).
//!
//! Medians are recorded to `BENCH_serve_throughput.json` at the
//! workspace root (same shape as `BENCH_release_query.json`) so the
//! serving perf trajectory is tracked in-repo.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{AdaptiveGrid, AgConfig, Release, UgConfig, UniformGrid};
use dpgrid_geo::Rect;
use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
use rand::Rng;

const N: usize = 100_000;
const EPS: f64 = 1.0;
/// Requests per release per batch.
const REQUESTS_PER_RELEASE: usize = 2;
/// Rectangles per request.
const RECTS_PER_REQUEST: usize = 2_048;

/// The three served releases — left uncompiled so cold runs can clone
/// genuinely cold copies (clones share a compiled surface, so masters
/// must never compile).
fn master_releases() -> Vec<(String, Release)> {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    let mut out = Vec::new();
    for m in [128usize, 512] {
        let ug = UniformGrid::build(&dataset, &UgConfig::fixed(EPS, m), &mut rng).unwrap();
        out.push((format!("ug_m{m}"), Release::from_synopsis("UG", &ug)));
    }
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap();
    out.push(("ag_guideline".into(), Release::from_synopsis("AG", &ag)));
    out
}

/// A mixed batch over the landmark domain `[-130, -70] × [10, 50]`:
/// mostly mid-size windows plus spanning and sliver queries.
fn batch(keys: &[String]) -> Vec<QueryRequest> {
    let mut rng = bench_rng();
    let mut requests = Vec::new();
    for key in keys {
        for _ in 0..REQUESTS_PER_RELEASE {
            let rects: Vec<Rect> = (0..RECTS_PER_REQUEST)
                .map(|i| match i % 16 {
                    0 => Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap(),
                    1 => Rect::new(-100.1, 10.0, -99.9, 50.0).unwrap(),
                    _ => {
                        let x = rng.random_range(-130.0..-75.0);
                        let y = rng.random_range(10.0..46.0);
                        let w = rng.random_range(0.5..5.0);
                        let h = rng.random_range(0.5..4.0);
                        Rect::new(x, y, x + w, y + h).unwrap()
                    }
                })
                .collect();
            requests.push(QueryRequest::new(key.clone(), rects));
        }
    }
    requests
}

/// A fresh engine over cold clones of the master releases.
fn cold_engine(masters: &[(String, Release)], workers: usize) -> QueryEngine {
    let mut catalog = Catalog::new();
    for (key, release) in masters {
        assert!(!release.surface_is_compiled(), "master must stay cold");
        catalog.insert(key.clone(), release.clone());
    }
    QueryEngine::new(catalog).with_workers(workers)
}

/// One full batch pass; returns the elapsed nanoseconds.
fn pass_ns(engine: &QueryEngine, requests: &[QueryRequest]) -> f64 {
    let t = Instant::now();
    for response in engine.answer_batch(requests) {
        black_box(response.expect("all keys known"));
    }
    t.elapsed().as_nanos() as f64
}

/// Median nanoseconds per warm pass, within a time budget.
fn measure_warm_ns(engine: &QueryEngine, requests: &[QueryRequest]) -> f64 {
    // Warmup compiles every surface (and pre-faults the answer paths).
    pass_ns(engine, requests);
    let mut samples = Vec::new();
    let budget = std::time::Duration::from_millis(1_500);
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        samples.push(pass_ns(engine, requests));
        if samples.len() >= 60 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    label: String,
    workers: usize,
    cache: &'static str,
    qps: f64,
    elapsed_ms: f64,
}

fn bench_serve_throughput(c: &mut Criterion) {
    let parallelism = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let masters = master_releases();
    let keys: Vec<String> = masters.iter().map(|(k, _)| k.clone()).collect();
    let requests = batch(&keys);
    let total_rects: usize = requests.iter().map(|r| r.rects.len()).sum();
    let mut rows = Vec::new();

    // Cold: every pass compiles all three surfaces from fresh clones.
    for workers in [1usize, parallelism.max(2)] {
        let mut samples = Vec::new();
        for _ in 0..3 {
            let engine = cold_engine(&masters, workers);
            samples.push(pass_ns(&engine, &requests));
        }
        samples.sort_by(f64::total_cmp);
        let ns = samples[samples.len() / 2];
        rows.push(Row {
            label: format!("cold_w{workers}"),
            workers,
            cache: "cold",
            qps: total_rects as f64 / (ns / 1e9),
            elapsed_ms: ns / 1e6,
        });
    }

    // Warm: surfaces resident, 1 worker vs scoped-thread sharding vs
    // the adaptive policy (workers = 0). Dedup so a low-core machine
    // does not measure the same width twice.
    let mut worker_settings = vec![1usize, 2, parallelism.max(2), 0];
    worker_settings.dedup();
    let mut group = c.benchmark_group("serve_throughput");
    for workers in worker_settings {
        let engine = cold_engine(&masters, workers);
        let ns = measure_warm_ns(&engine, &requests);
        let label = if workers == 0 {
            "warm_adaptive".to_string()
        } else {
            format!("warm_w{workers}")
        };
        group.bench_function(&label, |b| {
            b.iter(|| pass_ns(&engine, &requests));
        });
        rows.push(Row {
            label,
            workers,
            cache: "warm",
            qps: total_rects as f64 / (ns / 1e9),
            elapsed_ms: ns / 1e6,
        });
    }
    group.finish();

    let warm_w1 = rows
        .iter()
        .find(|r| r.label == "warm_w1")
        .map(|r| r.qps)
        .unwrap_or(f64::NAN);
    for r in &rows {
        println!(
            "serve_throughput/{}: {} releases, {} rects/batch, workers {}, \
             {:.1} ms/batch, {:.0} q/s ({:.2}x vs warm_w1)",
            r.label,
            keys.len(),
            total_rects,
            r.workers,
            r.elapsed_ms,
            r.qps,
            r.qps / warm_w1
        );
    }
    write_json(&rows, keys.len(), total_rects, parallelism, warm_w1);
}

/// Records the measurements to `BENCH_serve_throughput.json` at the
/// workspace root (perf-trajectory files live in-repo).
fn write_json(rows: &[Row], releases: usize, rects: usize, parallelism: usize, warm_w1: f64) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve_throughput.json"
    );
    let mut out = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"unit\": \"queries_per_sec\",\n  \
         \"releases\": {releases},\n  \"rects_per_batch\": {rects},\n  \
         \"parallelism\": {parallelism},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"workers\": {}, \"cache\": \"{}\", \
             \"elapsed_ms\": {:.2}, \"qps\": {:.0}, \"speedup_vs_warm_w1\": {:.2}}}{}\n",
            r.label,
            r.workers,
            r.cache,
            r.elapsed_ms,
            r.qps,
            r.qps / warm_w1,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("serve_throughput: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
