//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro over functions with `arg in strategy` parameters,
//! range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!` family.
//!
//! Differences from upstream: failing cases are *not* shrunk (the
//! failing input values are printed as-is), and generation is driven by
//! a fixed-seed deterministic RNG so CI failures reproduce locally.
//! The case count defaults to 64 and can be overridden with
//! `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Length specifications accepted by [`prop::collection::vec`].
pub trait IntoSizeRange {
    /// Converts to inclusive `(min, max)` lengths.
    fn into_size_range(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> (usize, usize) {
        (self.start, self.end.saturating_sub(1))
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn into_size_range(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Upstream's `any::<T>()`: the type's full-range standard
/// distribution — every type the vendored `rand` can standard-sample
/// (the integer widths over their whole range, `f32`/`f64` in
/// `[0, 1)`, `bool`).
pub fn any<T: rand::StandardSample>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::StandardSample> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random::<T>()
    }
}

/// Strategy combinators, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{IntoSizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Generates `Vec`s whose elements come from `element` and whose
        /// length lies in `size`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.into_size_range();
            VecStrategy { element, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.min >= self.max {
                    self.min
                } else {
                    rng.random_range(self.min..=self.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use super::Strategy as _;
    pub use super::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Defines property tests: each function runs [`cases`] times over
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let mut __rng: $crate::TestRng =
                ::rand::SeedableRng::seed_from_u64(0xC0FFEE ^ stringify!($name).len() as u64);
            for __case in 0..$crate::cases() {
                $(let $arg = ($strat).generate(&mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let ::std::result::Result::Err(e) = __result {
                    eprintln!(
                        "proptest case {}/{} failed for {}: {}",
                        __case + 1,
                        $crate::cases(),
                        stringify!($name),
                        __inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// `assert!` that reports the failing generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports the failing generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vecs_hit_requested_lengths(v in prop::collection::vec(0u64..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_generate(p in (0f64..1.0, 0f64..1.0)) {
            let (a, b) = p;
            prop_assert!(a < 1.0 && b < 1.0);
        }
    }
}
