//! The Laplace distribution and mechanism.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{check_epsilon, check_sensitivity, MechError, Result};

/// The Laplace distribution `Lap(β)` with density
/// `Pr[X = x] = (1 / 2β) · e^(−|x| / β)`.
///
/// Its variance is `2β²`, hence a standard deviation of `√2·β` — the
/// quantities the paper's error analysis (§II-A) is phrased in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale `β > 0`.
    pub fn new(scale: f64) -> Result<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(MechError::InvalidSensitivity(scale));
        }
        Ok(Laplace { scale })
    }

    /// The scale parameter β.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Variance `2β²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Standard deviation `√2·β`.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.scale
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-x.abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// Draws one sample by inverse-CDF transform.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // u uniform in (-0.5, 0.5]; the open lower end avoids ln(0).
        let u: f64 = 0.5 - rng.random::<f64>();
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }
}

/// The Laplace mechanism `A(D) = g(D) + Lap(GS_g / ε)`.
///
/// `GS_g` is the global (L1) sensitivity of the query; for the per-cell
/// count queries of this paper it is 1 (adding or removing one tuple
/// changes exactly one cell count by one, so the whole *vector* of cell
/// counts also has sensitivity 1 — this is why UG can spend the entire
/// budget on each cell in parallel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
    noise: Laplace,
}

impl LaplaceMechanism {
    /// Creates a mechanism with privacy parameter `epsilon` and query
    /// sensitivity `sensitivity`.
    pub fn new(epsilon: f64, sensitivity: f64) -> Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let sensitivity = check_sensitivity(sensitivity)?;
        Ok(LaplaceMechanism {
            epsilon,
            sensitivity,
            noise: Laplace::new(sensitivity / epsilon)?,
        })
    }

    /// Mechanism for a sensitivity-1 count query — the common case.
    pub fn for_count(epsilon: f64) -> Result<Self> {
        LaplaceMechanism::new(epsilon, 1.0)
    }

    /// The privacy parameter ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The assumed query sensitivity.
    #[inline]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The noise distribution `Lap(sensitivity / ε)`.
    #[inline]
    pub fn noise(&self) -> &Laplace {
        &self.noise
    }

    /// Standard deviation of the added noise (`√2 · sensitivity / ε`).
    #[inline]
    pub fn noise_std_dev(&self) -> f64 {
        self.noise.std_dev()
    }

    /// Releases `value + Lap(sensitivity / ε)`.
    #[inline]
    pub fn randomize(&self, value: f64, rng: &mut impl Rng) -> f64 {
        value + self.noise.sample(rng)
    }

    /// Randomizes a whole slice in place. Under parallel composition
    /// (disjoint cells) this consumes ε once for the entire vector.
    pub fn randomize_slice(&self, values: &mut [f64], rng: &mut impl Rng) {
        for v in values {
            *v += self.noise.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn moments_match_theory() {
        let lap = Laplace::new(2.0).unwrap();
        assert_eq!(lap.variance(), 8.0);
        assert!((lap.std_dev() - 8.0f64.sqrt()).abs() < 1e-12);
        let mut r = rng(99);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = lap.sample(&mut r);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "sample mean {mean}");
        assert!((var - 8.0).abs() < 0.25, "sample variance {var}");
    }

    #[test]
    fn cdf_pdf_consistency() {
        let lap = Laplace::new(1.5).unwrap();
        assert!((lap.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(lap.cdf(-100.0) < 1e-12);
        assert!(lap.cdf(100.0) > 1.0 - 1e-12);
        // Numeric derivative of the CDF approximates the PDF.
        for x in [-3.0, -0.5, 0.25, 2.0] {
            let h = 1e-6;
            let deriv = (lap.cdf(x + h) - lap.cdf(x - h)) / (2.0 * h);
            assert!((deriv - lap.pdf(x)).abs() < 1e-5, "x = {x}");
        }
        // PDF is symmetric.
        assert!((lap.pdf(1.0) - lap.pdf(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn empirical_cdf_matches() {
        let lap = Laplace::new(1.0).unwrap();
        let mut r = rng(5);
        let n = 100_000;
        let below_one = (0..n).filter(|_| lap.sample(&mut r) < 1.0).count();
        let frac = below_one as f64 / n as f64;
        assert!((frac - lap.cdf(1.0)).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn mechanism_scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(0.5, 2.0).unwrap();
        assert_eq!(m.noise().scale(), 4.0);
        assert!((m.noise_std_dev() - std::f64::consts::SQRT_2 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn randomize_is_centered_on_value() {
        let m = LaplaceMechanism::for_count(1.0).unwrap();
        let mut r = rng(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.randomize(10.0, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn randomize_slice_perturbs_independently() {
        let m = LaplaceMechanism::for_count(1.0).unwrap();
        let mut values = vec![0.0; 1000];
        let mut r = rng(3);
        m.randomize_slice(&mut values, &mut r);
        // All entries noisy, not all equal.
        let distinct: std::collections::HashSet<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 990);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let lap = Laplace::new(1.0).unwrap();
        let a: Vec<f64> = {
            let mut r = rng(42);
            (0..10).map(|_| lap.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(42);
            (0..10).map(|_| lap.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
