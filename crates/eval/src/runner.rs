//! Multi-threaded experiment runner.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::GeoDataset;

use crate::method::Method;
use crate::metrics::{absolute_error, relative_error, Candlestick};
use crate::truth::TruthTable;
use crate::workload::QueryWorkload;
use crate::Result;

/// Configuration of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Privacy budget ε per synopsis build.
    pub epsilon: f64,
    /// Independent repetitions per method (fresh noise each time);
    /// reported numbers pool the errors of all trials.
    pub trials: usize,
    /// Master seed; per-(method, trial) seeds are derived from it, so
    /// results do not depend on scheduling order.
    pub seed: u64,
}

impl EvalConfig {
    /// Creates a config with the given ε, 3 trials and a fixed seed.
    pub fn new(epsilon: f64) -> Self {
        EvalConfig {
            epsilon,
            trials: 3,
            seed: 0xD9_6A_11,
        }
    }

    /// Overrides the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Pooled evaluation results of one method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodEval {
    /// The method's label (paper notation).
    pub label: String,
    /// Mean relative error per query-size class (the paper's line
    /// graphs).
    pub mean_rel_by_size: Vec<f64>,
    /// Candlestick of relative errors pooled over all sizes and trials
    /// (the paper's candlestick plots).
    pub rel_profile: Candlestick,
    /// Candlestick of absolute errors pooled over all sizes and trials
    /// (Figure 6).
    pub abs_profile: Candlestick,
    /// Mean wall-clock seconds per synopsis build.
    pub build_seconds: f64,
}

/// Evaluates `methods` over a dataset and workload: builds each method
/// `cfg.trials` times with independent noise and pools the per-query
/// errors.
///
/// Methods run on separate threads (`std::thread::scope`); the dataset,
/// workload and truth table are shared read-only.
pub fn evaluate(
    dataset: &GeoDataset,
    workload: &QueryWorkload,
    truth: &TruthTable,
    methods: &[Method],
    cfg: &EvalConfig,
) -> Result<Vec<MethodEval>> {
    if cfg.trials == 0 {
        return Err(crate::EvalError::InvalidConfig("trials must be ≥ 1".into()));
    }
    let results: Vec<Result<MethodEval>> = std::thread::scope(|scope| {
        let handles: Vec<_> = methods
            .iter()
            .enumerate()
            .map(|(mi, method)| {
                scope.spawn(move || evaluate_one(dataset, workload, truth, method, mi, cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation thread panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Evaluates a single method (sequentially over its trials).
pub fn evaluate_one(
    dataset: &GeoDataset,
    workload: &QueryWorkload,
    truth: &TruthTable,
    method: &Method,
    method_index: usize,
    cfg: &EvalConfig,
) -> Result<MethodEval> {
    let rho = truth.rho();
    let num_sizes = workload.num_sizes();
    let mut rel_by_size: Vec<Vec<f64>> = vec![Vec::new(); num_sizes];
    let mut rel_all = Vec::new();
    let mut abs_all = Vec::new();
    let mut build_time = 0.0f64;
    for trial in 0..cfg.trials {
        // Derived seed: independent of thread scheduling.
        let seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((method_index as u64) << 32)
            .wrapping_add(trial as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = std::time::Instant::now();
        // The registry's single construction path — the same code the
        // publishing pipeline runs, so evaluated and published methods
        // cannot drift apart.
        let synopsis = method.build_boxed(dataset, cfg.epsilon, &mut rng)?;
        build_time += start.elapsed().as_secs_f64();
        for (i, batch) in rel_by_size.iter_mut().enumerate() {
            // One batched call per size class: synopses with a compiled
            // surface (e.g. releases) answer the whole class through
            // their index, and the default implementation fans the
            // chunk out across scoped threads.
            let estimates = synopsis.answer_all(workload.queries(i));
            for (j, est) in estimates.into_iter().enumerate() {
                let t = truth.answer(i, j);
                batch.push(relative_error(est, t, rho));
                abs_all.push(absolute_error(est, t));
            }
        }
    }
    for batch in &rel_by_size {
        rel_all.extend_from_slice(batch);
    }
    Ok(MethodEval {
        label: method.label(dataset.len(), cfg.epsilon),
        mean_rel_by_size: rel_by_size
            .iter()
            .map(|v| v.iter().sum::<f64>() / v.len().max(1) as f64)
            .collect(),
        rel_profile: Candlestick::from_values(&rel_all)
            .expect("workload produced at least one query"),
        abs_profile: Candlestick::from_values(&abs_all)
            .expect("workload produced at least one query"),
        build_seconds: build_time / cfg.trials as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use dpgrid_geo::{generators, Domain, PointIndex};
    use rand::SeedableRng;

    fn setup() -> (GeoDataset, QueryWorkload, TruthTable) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let domain = Domain::from_corners(0.0, 0.0, 16.0, 16.0).unwrap();
        let ds = generators::uniform(domain, 5_000, &mut rng);
        let spec = WorkloadSpec {
            q1_width: 0.5,
            q1_height: 0.5,
            num_sizes: 4,
            queries_per_size: 30,
        };
        let w = QueryWorkload::generate(&domain, &spec, &mut rng).unwrap();
        let idx = PointIndex::build(&ds);
        let t = TruthTable::compute(&idx, &w);
        (ds, w, t)
    }

    #[test]
    fn evaluates_multiple_methods() {
        let (ds, w, t) = setup();
        let methods = [Method::ug(16), Method::ag(8), Method::Flat];
        let cfg = EvalConfig::new(1.0).with_trials(2);
        let out = evaluate(&ds, &w, &t, &methods, &cfg).unwrap();
        assert_eq!(out.len(), 3);
        for me in &out {
            assert_eq!(me.mean_rel_by_size.len(), 4);
            assert!(me.rel_profile.mean.is_finite());
            assert!(me.abs_profile.p95 >= me.abs_profile.p25);
            assert!(me.build_seconds >= 0.0);
        }
        assert_eq!(out[0].label, "U16");
        assert_eq!(out[2].label, "Flat");
    }

    #[test]
    fn results_are_seed_deterministic() {
        let (ds, w, t) = setup();
        let methods = [Method::ug(8)];
        let cfg = EvalConfig::new(0.5).with_trials(2).with_seed(77);
        let a = evaluate(&ds, &w, &t, &methods, &cfg).unwrap();
        let b = evaluate(&ds, &w, &t, &methods, &cfg).unwrap();
        assert_eq!(a[0].rel_profile.mean, b[0].rel_profile.mean);
        assert_eq!(a[0].mean_rel_by_size, b[0].mean_rel_by_size);
    }

    #[test]
    fn higher_epsilon_means_lower_error() {
        let (ds, w, t) = setup();
        let methods = [Method::ug(16)];
        let loose = evaluate(&ds, &w, &t, &methods, &EvalConfig::new(0.05).with_trials(3)).unwrap();
        let tight = evaluate(&ds, &w, &t, &methods, &EvalConfig::new(5.0).with_trials(3)).unwrap();
        assert!(
            tight[0].rel_profile.mean < loose[0].rel_profile.mean,
            "ε=5 mean {} should beat ε=0.05 mean {}",
            tight[0].rel_profile.mean,
            loose[0].rel_profile.mean
        );
    }

    #[test]
    fn zero_trials_rejected() {
        let (ds, w, t) = setup();
        let cfg = EvalConfig::new(1.0).with_trials(0);
        assert!(evaluate(&ds, &w, &t, &[Method::Flat], &cfg).is_err());
    }
}
