//! The Uniform Grid (UG) method — §IV-A of the paper.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{DenseGrid, Domain, GeoDataset, Rect, SummedAreaTable};
use dpgrid_mech::{LaplaceMechanism, PrivacyBudget};

use crate::guidelines::{GridSize, NEstimate};
use crate::noise::{CountNoise, NoiseKind};
use crate::{Build, CoreError, Result, Synopsis};

/// Configuration for [`UniformGrid`].
///
/// The paper's `U_m` notation corresponds to
/// `UgConfig::fixed(epsilon, m)`; the guideline-driven variant is
/// `UgConfig::guideline(epsilon)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UgConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// How the grid size is chosen.
    pub grid_size: GridSize,
    /// How `N` is obtained when the grid size needs it.
    pub n_estimate: NEstimate,
    /// Clamp released cell counts at zero (post-processing; does not
    /// affect privacy). Off by default — the paper keeps raw noisy
    /// counts so that noise cancels when summing cells.
    pub clamp_nonnegative: bool,
    /// Noise distribution (extension; the paper uses Laplace).
    pub noise: NoiseKind,
    /// Split the `m²` cell budget across a `cols × rows` grid matching
    /// the domain's aspect ratio instead of the paper's square `m × m`
    /// (extension; evaluated by the `ablate` experiment).
    pub aspect_aware: bool,
}

impl UgConfig {
    /// Guideline-1 configuration with the paper's default `c = 10`.
    pub fn guideline(epsilon: f64) -> Self {
        UgConfig {
            epsilon,
            grid_size: GridSize::default(),
            n_estimate: NEstimate::Exact,
            clamp_nonnegative: false,
            noise: NoiseKind::Laplace,
            aspect_aware: false,
        }
    }

    /// Fixed `m × m` grid (the paper's `U_m`).
    pub fn fixed(epsilon: f64, m: usize) -> Self {
        UgConfig {
            grid_size: GridSize::Fixed(m),
            ..UgConfig::guideline(epsilon)
        }
    }

    /// Guideline-1 configuration with a custom constant `c`.
    pub fn with_c(epsilon: f64, c: f64) -> Self {
        UgConfig {
            grid_size: GridSize::Suggested { c },
            ..UgConfig::guideline(epsilon)
        }
    }

    /// Switches to a noisy estimate of `N` consuming `fraction` of ε.
    pub fn with_noisy_n(mut self, fraction: f64) -> Self {
        self.n_estimate = NEstimate::Noisy { fraction };
        self
    }

    /// Enables non-negativity clamping of released counts.
    pub fn with_clamping(mut self) -> Self {
        self.clamp_nonnegative = true;
        self
    }

    /// Switches the noise distribution.
    pub fn with_noise(mut self, noise: NoiseKind) -> Self {
        self.noise = noise;
        self
    }

    /// Enables aspect-ratio-aware cell shapes.
    pub fn with_aspect_aware(mut self) -> Self {
        self.aspect_aware = true;
        self
    }
}

/// Splits a target of `m²` cells into `cols × rows` matching the
/// domain's aspect ratio: cells come out (approximately) square in
/// domain units while the total cell count stays ≈ `m²`.
fn aspect_dims(domain: &Domain, m: usize) -> (usize, usize) {
    let aspect = (domain.width() / domain.height()).sqrt();
    let cols = ((m as f64) * aspect).round().max(1.0) as usize;
    let rows = ((m as f64) / aspect).round().max(1.0) as usize;
    (cols, rows)
}

/// The **UG** synopsis: an `m × m` equi-width grid of independently
/// Laplace-noised counts.
///
/// Building is a single pass over the data (count each point's cell) plus
/// one noise draw per cell. Since the cells partition the domain, the
/// whole grid consumes ε once under parallel composition.
///
/// Query answering uses a summed-area table: any rectangle decomposes
/// into at most nine aligned cell blocks, so `answer` is O(1) regardless
/// of grid or query size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniformGrid {
    grid: DenseGrid,
    sat: SummedAreaTable,
    epsilon: f64,
    m: usize,
}

impl UniformGrid {
    /// Builds the synopsis over `dataset` with the given configuration.
    /// Thin delegation to the uniform [`Build`] trait.
    pub fn build(dataset: &GeoDataset, config: &UgConfig, rng: &mut impl Rng) -> Result<Self> {
        <UniformGrid as Build>::build(dataset, config, rng)
    }
}

impl Build for UniformGrid {
    type Config = UgConfig;

    fn build(dataset: &GeoDataset, config: &UgConfig, rng: &mut impl Rng) -> Result<Self> {
        config.n_estimate.validate()?;
        let mut budget = PrivacyBudget::new(config.epsilon)?;

        // Step 1: obtain N (exactly, or noisily from a budget slice).
        let n = match config.n_estimate {
            NEstimate::Exact => dataset.len() as f64,
            NEstimate::Noisy { fraction } => {
                let eps_n = budget.spend_fraction(fraction)?;
                let mech = LaplaceMechanism::for_count(eps_n)?;
                mech.randomize(dataset.len() as f64, rng).max(0.0)
            }
        };

        // Step 2: resolve the grid size from Guideline 1 (or use the
        // fixed size), optionally reshaping to the domain's aspect.
        let m = config
            .grid_size
            .resolve(n.round() as usize, config.epsilon)?;
        let (cols, rows) = if config.aspect_aware {
            aspect_dims(dataset.domain(), m)
        } else {
            (m, m)
        };

        // Step 3: one pass to count, then noise every cell with the
        // remaining budget (parallel composition across disjoint cells).
        let eps_cells = budget.spend_all();
        if eps_cells <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "no budget left for cell counts".into(),
            ));
        }
        let mut grid = DenseGrid::count(dataset, cols, rows)?;
        let noise = CountNoise::new(config.noise, eps_cells)?;
        noise.randomize_slice(grid.values_mut(), rng);
        if config.clamp_nonnegative {
            grid.map_in_place(|v| v.max(0.0));
        }

        let sat = grid.sat();
        Ok(UniformGrid {
            grid,
            sat,
            epsilon: config.epsilon,
            m,
        })
    }
}

impl UniformGrid {
    /// The grid size `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The released noisy grid.
    #[inline]
    pub fn grid(&self) -> &DenseGrid {
        &self.grid
    }

    /// Rebuilds the summed-area table (needed after deserialisation if
    /// the `sat` field was stripped; kept for API completeness).
    pub fn refresh_index(&mut self) {
        self.sat = self.grid.sat();
    }
}

impl Synopsis for UniformGrid {
    fn domain(&self) -> &Domain {
        self.grid.domain()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn answer(&self, query: &Rect) -> f64 {
        self.grid.answer_uniform(&self.sat, query)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        self.grid
            .iter_cells()
            .map(|(_, _, rect, v)| (rect, v))
            .collect()
    }

    /// O(1) from the summed-area table — no cell export needed.
    fn total_estimate(&self) -> f64 {
        self.sat.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::{generators, Point};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_dataset(n: usize, seed: u64) -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        generators::uniform(domain, n, &mut rng(seed))
    }

    #[test]
    fn build_uses_guideline_size() {
        let ds = small_dataset(4_000, 1);
        let ug = UniformGrid::build(&ds, &UgConfig::guideline(1.0), &mut rng(2)).unwrap();
        // Guideline 1: √(4000 · 1 / 10) = 20.
        assert_eq!(ug.m(), 20);
        assert_eq!(ug.grid().cols(), 20);
    }

    #[test]
    fn fixed_size_respected() {
        let ds = small_dataset(100, 1);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 7), &mut rng(2)).unwrap();
        assert_eq!(ug.m(), 7);
    }

    #[test]
    fn huge_epsilon_recovers_exact_counts() {
        // With ε → very large the noise vanishes and answers are exact
        // for aligned queries.
        let ds = small_dataset(2_000, 3);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1e9, 10), &mut rng(4)).unwrap();
        let q = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        assert!(
            (ug.answer(&q) - truth).abs() < 1e-3,
            "answer {} vs truth {truth}",
            ug.answer(&q)
        );
        // Total estimate matches N.
        assert!((ug.total_estimate() - 2_000.0).abs() < 1e-3);
    }

    #[test]
    fn answers_are_noisy_at_small_epsilon() {
        let ds = small_dataset(1_000, 5);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(0.1, 16), &mut rng(6)).unwrap();
        let q = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        // Not exact (overwhelmingly likely), but in a plausible range.
        let err = (ug.answer(&q) - truth).abs();
        assert!(err > 1e-9, "noise should be present");
        assert!(err < 2_000.0, "error implausibly large: {err}");
    }

    #[test]
    fn epsilon_reported() {
        let ds = small_dataset(100, 7);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(0.25, 4), &mut rng(8)).unwrap();
        assert_eq!(ug.epsilon(), 0.25);
    }

    #[test]
    fn noisy_n_spends_budget_slice() {
        let ds = small_dataset(5_000, 9);
        let cfg = UgConfig::guideline(1.0).with_noisy_n(0.05);
        let ug = UniformGrid::build(&ds, &cfg, &mut rng(10)).unwrap();
        // The grid size is close to the exact-N guideline (noise on N is
        // small relative to N=5000, and cells get 0.95·ε).
        let exact_m = crate::guidelines::guideline1(5_000, 1.0, 10.0);
        assert!((ug.m() as i64 - exact_m as i64).abs() <= 2);
    }

    #[test]
    fn clamping_removes_negative_cells() {
        let ds = small_dataset(10, 11); // nearly-empty grid → negative noise
        let cfg = UgConfig::fixed(0.5, 16).with_clamping();
        let ug = UniformGrid::build(&ds, &cfg, &mut rng(12)).unwrap();
        assert!(ug.grid().values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cells_partition_domain() {
        let ds = small_dataset(50, 13);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 5), &mut rng(14)).unwrap();
        let cells = ug.cells();
        assert_eq!(cells.len(), 25);
        let area: f64 = cells.iter().map(|(r, _)| r.area()).sum();
        assert!((area - ug.domain().area()).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_rejected() {
        let ds = small_dataset(10, 15);
        assert!(UniformGrid::build(&ds, &UgConfig::fixed(0.0, 4), &mut rng(0)).is_err());
        assert!(UniformGrid::build(&ds, &UgConfig::fixed(1.0, 0), &mut rng(0)).is_err());
        let bad_n = UgConfig::guideline(1.0).with_noisy_n(2.0);
        assert!(UniformGrid::build(&ds, &bad_n, &mut rng(0)).is_err());
    }

    #[test]
    fn determinism_under_seed() {
        let ds = small_dataset(500, 16);
        let a = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(99)).unwrap();
        let b = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(99)).unwrap();
        assert_eq!(a.grid().values(), b.grid().values());
    }

    #[test]
    fn answer_handles_edge_points() {
        // A dataset with a point exactly on the closed domain corner.
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds =
            GeoDataset::from_points(vec![Point::new(1.0, 1.0), Point::new(0.25, 0.25)], domain)
                .unwrap();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1e9, 2), &mut rng(17)).unwrap();
        // The corner point is bucketed into the last cell.
        let q = Rect::new(0.5, 0.5, 1.0, 1.0).unwrap();
        assert!((ug.answer(&q) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn serde_roundtrip_preserves_answers() {
        let ds = small_dataset(300, 18);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 6), &mut rng(19)).unwrap();
        let json = serde_json::to_string(&ug).unwrap();
        let back: UniformGrid = serde_json::from_str(&json).unwrap();
        let q = Rect::new(1.0, 1.0, 7.5, 8.25).unwrap();
        assert!((back.answer(&q) - ug.answer(&q)).abs() < 1e-12);
    }

    #[test]
    fn geometric_noise_releases_integers() {
        let ds = small_dataset(500, 20);
        let cfg = UgConfig::fixed(1.0, 8).with_noise(crate::NoiseKind::Geometric);
        let ug = UniformGrid::build(&ds, &cfg, &mut rng(21)).unwrap();
        for &v in ug.grid().values() {
            assert_eq!(v, v.round(), "geometric UG must release integer counts");
        }
        // Total still estimates N.
        assert!((ug.total_estimate() - 500.0).abs() < 150.0);
    }

    #[test]
    fn aspect_aware_reshapes_grid() {
        // A 4:1 domain: aspect-aware UG should use ~2x the columns and
        // ~half the rows while keeping the cell count near m².
        let domain = Domain::from_corners(0.0, 0.0, 40.0, 10.0).unwrap();
        let ds = generators::uniform(domain, 2_000, &mut rng(22));
        let cfg = UgConfig::fixed(1.0, 16).with_aspect_aware();
        let ug = UniformGrid::build(&ds, &cfg, &mut rng(23)).unwrap();
        assert_eq!(ug.grid().cols(), 32);
        assert_eq!(ug.grid().rows(), 8);
        // Cells are square in domain units.
        let cell = ug.grid().cell_rect(0, 0);
        assert!((cell.width() - cell.height()).abs() < 1e-9);
        // Square default is unchanged.
        let sq = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 16), &mut rng(24)).unwrap();
        assert_eq!(sq.grid().cols(), 16);
        assert_eq!(sq.grid().rows(), 16);
    }

    #[test]
    fn aspect_dims_preserves_cell_count() {
        let domain = Domain::from_corners(0.0, 0.0, 90.0, 10.0).unwrap();
        let (cols, rows) = aspect_dims(&domain, 30);
        assert_eq!(cols, 90);
        assert_eq!(rows, 10);
        assert_eq!(cols * rows, 900); // = 30²
                                      // Extreme aspect never drops to zero rows.
        let thin = Domain::from_corners(0.0, 0.0, 1e6, 1.0).unwrap();
        let (_, rows) = aspect_dims(&thin, 4);
        assert!(rows >= 1);
    }
}
