//! Linear-scan vs compiled-surface `Release` answering across release
//! sizes — the acceptance benchmark of the compiled query surface.
//!
//! Builds UG releases at ~1k / 64k / 1M cells (lattice path) plus an
//! AG release at its guideline size (band path), times a mixed query
//! workload through `Release::answer` (compiled) and
//! `Release::answer_linear_scan` (the O(cells) reference), and records
//! the medians to `BENCH_release_query.json` at the workspace root so
//! the perf trajectory is tracked in-repo.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{AdaptiveGrid, AgConfig, Release, Synopsis, UgConfig, UniformGrid};
use dpgrid_geo::Rect;

const N: usize = 100_000;
const EPS: f64 = 1.0;

/// Mixed workload over the landmark domain `[-130, -70] × [10, 50]`:
/// spanning, mid, small and sliver queries.
fn workload() -> Vec<Rect> {
    vec![
        Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap(),
        Rect::new(-125.0, 12.0, -85.0, 32.0).unwrap(),
        Rect::new(-110.0, 25.0, -100.0, 30.0).unwrap(),
        Rect::new(-96.0, 33.0, -95.0, 34.0).unwrap(),
        Rect::new(-100.1, 10.0, -99.9, 50.0).unwrap(),
        Rect::new(-130.0, 29.9, -70.0, 30.1).unwrap(),
    ]
}

/// Median nanoseconds per call of `f` over the workload, with warmup.
fn measure_ns(queries: &[Rect], mut f: impl FnMut(&Rect) -> f64) -> f64 {
    // Warmup (also forces lazy compilation outside the timed region).
    for q in queries {
        black_box(f(q));
    }
    let mut samples = Vec::new();
    let budget = std::time::Duration::from_millis(300);
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        let t = Instant::now();
        for q in queries {
            black_box(f(q));
        }
        samples.push(t.elapsed().as_nanos() as f64 / queries.len() as f64);
        if samples.len() >= 100 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    label: String,
    cells: usize,
    kind: String,
    linear_ns: f64,
    compiled_ns: f64,
}

fn releases() -> Vec<(String, Release)> {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    let mut out = Vec::new();
    for m in [32usize, 256, 1024] {
        let ug = UniformGrid::build(&dataset, &UgConfig::fixed(EPS, m), &mut rng).unwrap();
        out.push((format!("ug_m{m}"), Release::from_synopsis("UG", &ug)));
    }
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap();
    out.push((
        "ag_guideline".to_string(),
        Release::from_synopsis("AG", &ag),
    ));
    out
}

fn bench_release_query(c: &mut Criterion) {
    let queries = workload();
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("release_query");
    for (label, release) in releases() {
        let linear_ns = measure_ns(&queries, |q| release.answer_linear_scan(q));
        let compiled_ns = measure_ns(&queries, |q| release.answer(q));
        // Also register with criterion so the standard bench output
        // carries the same comparison.
        group.bench_function(format!("{label}/linear"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| release.answer_linear_scan(black_box(q)))
                    .sum::<f64>()
            })
        });
        group.bench_function(format!("{label}/compiled"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| release.answer(black_box(q)))
                    .sum::<f64>()
            })
        });
        println!(
            "release_query/{label}: {} cells ({:?}), linear {:.0} ns/q, \
             compiled {:.0} ns/q, speedup {:.1}x",
            release.cell_count(),
            release.surface().kind(),
            linear_ns,
            compiled_ns,
            linear_ns / compiled_ns
        );
        rows.push(Row {
            label,
            cells: release.cell_count(),
            kind: format!("{:?}", release.surface().kind()),
            linear_ns,
            compiled_ns,
        });
    }
    group.finish();
    write_json(&rows);
}

/// Records the measurements to `BENCH_release_query.json` at the
/// workspace root (perf-trajectory files live in-repo).
fn write_json(rows: &[Row]) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_release_query.json"
    );
    let mut out = String::from(
        "{\n  \"bench\": \"release_query\",\n  \"unit\": \"ns_per_query\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"cells\": {}, \"index\": \"{}\", \
             \"linear_ns\": {:.1}, \"compiled_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.label,
            r.cells,
            r.kind.replace('"', ""),
            r.linear_ns,
            r.compiled_ns,
            r.linear_ns / r.compiled_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("release_query: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_release_query);
criterion_main!(benches);
