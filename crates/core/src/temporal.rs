//! The time axis: epoch keys, window→epoch arithmetic, and exact
//! release merging for compaction.
//!
//! Streaming ingestion slices a point stream into fixed-length
//! **epochs** and publishes one release per epoch through the ordinary
//! [`crate::Pipeline`]/[`crate::ReleaseSink`] path. Everything
//! temporal about such a release lives in its *key*, so catalogs,
//! engines, routers and the wire protocol carry epochs without
//! changes:
//!
//! * fine epoch `i` (the half-open interval `[i, i+1)` in epoch
//!   units) is published under `{keyspace}@epoch:{i}`;
//! * a compacted tier covering `[start, end)` is published under
//!   `{keyspace}@epoch:{start}-{end}`.
//!
//! [`epoch_key`] renders the grammar, [`parse_epoch_key`] inverts it,
//! and [`EpochRange`] is the typed half-open interval both sides
//! share. [`EpochLayout`] maps wall-clock timestamps onto epoch
//! indices and widens `[t0, t1)` windows **outward** to epoch
//! boundaries — the epoch-granularity contract: released surfaces
//! only exist per epoch, so a window query is answered over the
//! smallest epoch-aligned window containing it (never silently
//! narrowed).
//!
//! [`merge_releases`] is the compaction primitive: merging released
//! grids is privacy-free post-processing, and under the uniformity
//! answer model the merged release answers every rectangle exactly as
//! the sum of its constituents (the cells are overlaid on the common
//! refinement of all cut lines, so no mass is smeared across cell
//! boundaries). The merged ε is the *sum* of the constituents'
//! ε — sequential composition: each epoch's release read the same
//! users' data once more.

use dpgrid_geo::Rect;

use crate::release::ReleaseMetadata;
use crate::{CoreError, Release, Result};

/// A half-open range of epoch indices `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpochRange {
    /// First epoch covered.
    pub start: u64,
    /// One past the last epoch covered (always `> start`).
    pub end: u64,
}

impl EpochRange {
    /// The range `[start, end)`; `None` unless `start < end`.
    pub fn new(start: u64, end: u64) -> Option<Self> {
        (start < end).then_some(EpochRange { start, end })
    }

    /// The single-epoch range `[epoch, epoch + 1)`.
    ///
    /// # Panics
    /// For `epoch == u64::MAX` (the exclusive end would overflow).
    pub fn single(epoch: u64) -> Self {
        EpochRange {
            start: epoch,
            end: epoch.checked_add(1).expect("epoch index overflow"),
        }
    }

    /// Number of epochs covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Always `false`: ranges are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `epoch` lies inside the range.
    pub fn contains(&self, epoch: u64) -> bool {
        self.start <= epoch && epoch < self.end
    }

    /// Whether the two half-open ranges share at least one epoch.
    pub fn intersects(&self, other: &EpochRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether `other` lies entirely inside this range.
    pub fn contains_range(&self, other: &EpochRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

impl std::fmt::Display for EpochRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len() == 1 {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

/// Renders the epoch-key grammar: `{keyspace}@epoch:{i}` for a
/// single-epoch range, `{keyspace}@epoch:{start}-{end}` for a
/// compacted tier. [`parse_epoch_key`] inverts it.
pub fn epoch_key(keyspace: &str, range: EpochRange) -> String {
    format!("{keyspace}@epoch:{range}")
}

/// Parses an epoch-suffixed release key back into its keyspace and
/// [`EpochRange`]. Returns `None` for keys outside the grammar —
/// plain (non-temporal) release keys route through unchanged, so the
/// parser doubles as the "is this key temporal?" predicate.
///
/// The keyspace is everything before the *last* `@epoch:` marker, so
/// keyspaces containing the marker themselves still round-trip. When
/// the rejection *reason* matters (an operator pasted a key into a
/// tool, an ingestor refused a keyspace), use
/// [`parse_epoch_key_strict`], whose typed errors all name the
/// offending key.
pub fn parse_epoch_key(key: &str) -> Option<(&str, EpochRange)> {
    parse_epoch_key_strict(key).ok()
}

/// Why a key failed [`parse_epoch_key_strict`]. Every variant carries
/// the offending key verbatim, so the error is attributable wherever
/// it surfaces — batch rejects, logs, wire errors — without the caller
/// re-threading the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochKeyError {
    /// The key has no `@epoch:` marker at all — a plain, non-temporal
    /// release key.
    MissingMarker {
        /// The key that was parsed.
        key: String,
    },
    /// The marker is present but nothing precedes it (`@epoch:3`).
    EmptyKeyspace {
        /// The key that was parsed.
        key: String,
    },
    /// An epoch index is not a strictly-decimal `u64` (empty, signed,
    /// spaced, fractional, or overflowing).
    BadIndex {
        /// The key that was parsed.
        key: String,
        /// The offending index text, verbatim.
        index: String,
    },
    /// A range suffix is empty or inverted (`start >= end` under the
    /// half-open convention).
    EmptyRange {
        /// The key that was parsed.
        key: String,
        /// The parsed range start.
        start: u64,
        /// The parsed range end.
        end: u64,
    },
    /// A single-epoch key at `u64::MAX`, whose half-open end would
    /// overflow.
    EpochOverflow {
        /// The key that was parsed.
        key: String,
    },
}

impl EpochKeyError {
    /// The offending key, whichever way the parse failed.
    pub fn key(&self) -> &str {
        match self {
            EpochKeyError::MissingMarker { key }
            | EpochKeyError::EmptyKeyspace { key }
            | EpochKeyError::BadIndex { key, .. }
            | EpochKeyError::EmptyRange { key, .. }
            | EpochKeyError::EpochOverflow { key } => key,
        }
    }
}

impl std::fmt::Display for EpochKeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochKeyError::MissingMarker { key } => {
                write!(f, "key {key:?} has no @epoch: marker")
            }
            EpochKeyError::EmptyKeyspace { key } => {
                write!(f, "key {key:?} has an empty keyspace before @epoch:")
            }
            EpochKeyError::BadIndex { key, index } => write!(
                f,
                "key {key:?} has epoch index {index:?}; indices are strictly decimal u64"
            ),
            EpochKeyError::EmptyRange { key, start, end } => write!(
                f,
                "key {key:?} has empty epoch range {start}-{end} (half-open needs start < end)"
            ),
            EpochKeyError::EpochOverflow { key } => write!(
                f,
                "key {key:?} names epoch u64::MAX, whose half-open end would overflow"
            ),
        }
    }
}

impl std::error::Error for EpochKeyError {}

/// The typed twin of [`parse_epoch_key`]: same grammar, but every
/// rejection says *why* and names the offending key.
pub fn parse_epoch_key_strict(key: &str) -> std::result::Result<(&str, EpochRange), EpochKeyError> {
    let owned = || key.to_string();
    let Some((keyspace, suffix)) = key.rsplit_once("@epoch:") else {
        return Err(EpochKeyError::MissingMarker { key: owned() });
    };
    if keyspace.is_empty() {
        return Err(EpochKeyError::EmptyKeyspace { key: owned() });
    }
    let parse_index = |s: &str| {
        // `u64::from_str` tolerates a leading `+`; the grammar is
        // strictly decimal digits.
        (!s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
            .then(|| s.parse::<u64>().ok())
            .flatten()
            .ok_or_else(|| EpochKeyError::BadIndex {
                key: owned(),
                index: s.to_string(),
            })
    };
    let range = match suffix.split_once('-') {
        Some((a, b)) => {
            let (start, end) = (parse_index(a)?, parse_index(b)?);
            EpochRange::new(start, end).ok_or(EpochKeyError::EmptyRange {
                key: owned(),
                start,
                end,
            })?
        }
        None => {
            let epoch = parse_index(suffix)?;
            if epoch == u64::MAX {
                return Err(EpochKeyError::EpochOverflow { key: owned() });
            }
            EpochRange::single(epoch)
        }
    };
    Ok((keyspace, range))
}

/// Maps wall-clock timestamps onto epoch indices: epoch `i` covers
/// `[origin + i·epoch_seconds, origin + (i+1)·epoch_seconds)`.
///
/// The layout also implements the **epoch-granularity contract** for
/// window queries: [`EpochLayout::window`] widens a `[t0, t1)` time
/// window *outward* to the smallest epoch-aligned range containing it.
/// Released surfaces exist only per epoch, so this is the finest
/// answerable granularity — callers see the widened range in the
/// response rather than a silently clipped answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochLayout {
    origin: f64,
    epoch_seconds: f64,
}

impl EpochLayout {
    /// A layout starting at `origin` (seconds, any finite epoch-zero
    /// reference) with epochs of `epoch_seconds` (finite, > 0).
    pub fn new(origin: f64, epoch_seconds: f64) -> Result<Self> {
        if !origin.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "epoch origin must be finite, got {origin}"
            )));
        }
        if !epoch_seconds.is_finite() || epoch_seconds <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "epoch length must be finite and positive, got {epoch_seconds}"
            )));
        }
        Ok(EpochLayout {
            origin,
            epoch_seconds,
        })
    }

    /// The epoch-zero reference time.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// The epoch length in seconds.
    pub fn epoch_seconds(&self) -> f64 {
        self.epoch_seconds
    }

    /// The epoch index containing timestamp `t`, or `None` for
    /// non-finite timestamps and timestamps before the origin.
    pub fn epoch_of(&self, t: f64) -> Option<u64> {
        if !t.is_finite() || t < self.origin {
            return None;
        }
        let idx = ((t - self.origin) / self.epoch_seconds).floor();
        (idx >= 0.0 && idx <= u64::MAX as f64).then_some(idx as u64)
    }

    /// The inclusive start time of `epoch`.
    pub fn epoch_start(&self, epoch: u64) -> f64 {
        self.origin + epoch as f64 * self.epoch_seconds
    }

    /// The smallest epoch-aligned range covering the time window
    /// `[t0, t1)` — the epoch-granularity contract. `None` when the
    /// window is empty/inverted/non-finite or ends at or before the
    /// origin; a window starting before the origin is clamped to
    /// epoch 0.
    pub fn window(&self, t0: f64, t1: f64) -> Option<EpochRange> {
        if !t0.is_finite() || !t1.is_finite() || t1 <= t0 || t1 <= self.origin {
            return None;
        }
        let start = self.epoch_of(t0.max(self.origin))?;
        // Exclusive end: the last epoch touched is the one containing
        // the last instant *before* t1.
        let last = ((t1 - self.origin) / self.epoch_seconds).ceil();
        if last > u64::MAX as f64 {
            return None;
        }
        EpochRange::new(start, (last as u64).max(start + 1))
    }
}

/// Merges released grids into one release answering exactly as their
/// sum — the compaction primitive.
///
/// All constituents must share one domain. Their cells are overlaid on
/// the common refinement of every constituent's cut lines, and each
/// source cell's mass is distributed over its sub-cells by area
/// fraction — exact under the uniformity answer model, so for every
/// query rectangle the merged answer equals the sum of the
/// constituents' answers up to floating-point rounding. When all
/// constituents share one cell partition (the common case: same
/// method, same grid size per epoch), the merge is a plain cell-wise
/// value sum with no refinement.
///
/// The merged ε is the **sum** of the constituents' ε (sequential
/// composition across epochs); the merge itself is privacy-free
/// post-processing of already-released values.
pub fn merge_releases(label: impl Into<String>, releases: &[&Release]) -> Result<Release> {
    use dpgrid_geo::Synopsis;

    let Some(first) = releases.first() else {
        return Err(CoreError::InvalidConfig(
            "merge needs at least one release".into(),
        ));
    };
    let domain = *first.domain();
    for r in &releases[1..] {
        if r.domain().rect() != domain.rect() {
            return Err(CoreError::InvalidConfig(format!(
                "merge requires one shared domain, got {:?} and {:?}",
                domain.rect(),
                r.domain().rect()
            )));
        }
    }
    let epsilon: f64 = releases.iter().map(|r| r.epsilon()).sum();
    let cell_lists: Vec<Vec<(Rect, f64)>> = releases.iter().map(|r| r.cells()).collect();

    // Fast path: identical partitions merge by cell-wise value sums.
    let aligned = cell_lists[1..].iter().all(|cells| {
        cells.len() == cell_lists[0].len()
            && cells
                .iter()
                .zip(&cell_lists[0])
                .all(|((a, _), (b, _))| a == b)
    });
    let merged = if aligned {
        // Cell-wise sums run on the kernel layer's batched f64 add
        // (AVX2 when available). The adds stay element-wise in list
        // order — exactly the scalar loop's operations — so the merged
        // release is byte-identical across kernel backends.
        let mut cells = cell_lists[0].clone();
        let mut values: Vec<f64> = cells.iter().map(|&(_, v)| v).collect();
        let mut addend = vec![0.0; values.len()];
        for list in &cell_lists[1..] {
            for (a, &(_, v)) in addend.iter_mut().zip(list) {
                *a = v;
            }
            dpgrid_kernels::add_assign(&mut values, &addend);
        }
        for (cell, v) in cells.iter_mut().zip(values) {
            cell.1 = v;
        }
        cells
    } else {
        overlay_merge(&cell_lists)
    };
    Release::from_parts_with_metadata(
        ReleaseMetadata::legacy(label, epsilon),
        epsilon,
        domain,
        merged,
    )
}

/// The general merge path: overlay every cut line of every partition
/// and split each source cell's mass over the refinement by area
/// fraction.
fn overlay_merge(cell_lists: &[Vec<(Rect, f64)>]) -> Vec<(Rect, f64)> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for list in cell_lists {
        for (rect, _) in list {
            xs.push(rect.x0());
            xs.push(rect.x1());
            ys.push(rect.y0());
            ys.push(rect.y1());
        }
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    let nx = xs.len() - 1;
    let ny = ys.len() - 1;
    let mut acc = vec![0.0f64; nx * ny];
    for list in cell_lists {
        for (rect, v) in list {
            // The cut sets contain every source edge exactly, so the
            // partition points index the sub-cell span of this cell.
            let i0 = xs.partition_point(|&x| x < rect.x0());
            let i1 = xs.partition_point(|&x| x < rect.x1());
            let j0 = ys.partition_point(|&y| y < rect.y0());
            let j1 = ys.partition_point(|&y| y < rect.y1());
            let density = v / rect.area();
            for j in j0..j1 {
                let h = ys[j + 1] - ys[j];
                for i in i0..i1 {
                    acc[j * nx + i] += density * (xs[i + 1] - xs[i]) * h;
                }
            }
        }
    }
    let mut cells = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let rect = Rect::new(xs[i], ys[j], xs[i + 1], ys[j + 1])
                .expect("overlay cuts are sorted and deduplicated");
            cells.push((rect, acc[j * nx + i]));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, Pipeline, Synopsis};
    use dpgrid_geo::{generators, Domain};
    use rand::SeedableRng;

    fn dataset(seed: u64) -> dpgrid_geo::GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::uniform(domain, 1_500, &mut rng)
    }

    #[test]
    fn epoch_key_grammar_round_trips() {
        for (keyspace, range) in [
            ("taxi", EpochRange::single(0)),
            ("taxi", EpochRange::single(17)),
            ("taxi", EpochRange::new(3, 7).unwrap()),
            ("a@epoch:weird", EpochRange::single(2)),
            ("with spaces\nand\tctl", EpochRange::new(0, 4).unwrap()),
        ] {
            let key = epoch_key(keyspace, range);
            assert_eq!(parse_epoch_key(&key), Some((keyspace, range)));
        }
        assert_eq!(epoch_key("taxi", EpochRange::single(5)), "taxi@epoch:5");
        assert_eq!(
            epoch_key("taxi", EpochRange::new(2, 6).unwrap()),
            "taxi@epoch:2-6"
        );
        // A length-1 range written in range form parses to the same
        // range as the canonical single form.
        assert_eq!(
            parse_epoch_key("k@epoch:2-3"),
            Some(("k", EpochRange::single(2)))
        );
    }

    #[test]
    fn non_temporal_keys_do_not_parse() {
        for key in [
            "plain",
            "taxi@epoch:",
            "taxi@epoch:-",
            "taxi@epoch:abc",
            "taxi@epoch:3-2",
            "taxi@epoch:3-3",
            "taxi@epoch:+3",
            "taxi@epoch: 3",
            "taxi@epoch:3.5",
            "@epoch:3",
            "taxi@epoch:99999999999999999999999",
        ] {
            assert_eq!(parse_epoch_key(key), None, "key {key:?} must not parse");
        }
    }

    #[test]
    fn strict_parse_errors_name_the_offending_key() {
        // Every rejection class carries the input key, both in the
        // typed accessor and in the rendered message.
        type Check = fn(&EpochKeyError) -> bool;
        let cases: [(&str, Check); 8] = [
            ("plain", |e| {
                matches!(e, EpochKeyError::MissingMarker { .. })
            }),
            ("@epoch:3", |e| {
                matches!(e, EpochKeyError::EmptyKeyspace { .. })
            }),
            (
                "taxi@epoch:",
                |e| matches!(e, EpochKeyError::BadIndex { index, .. } if index.is_empty()),
            ),
            (
                "taxi@epoch:+3",
                |e| matches!(e, EpochKeyError::BadIndex { index, .. } if index == "+3"),
            ),
            ("taxi@epoch:99999999999999999999999", |e| {
                matches!(e, EpochKeyError::BadIndex { .. })
            }),
            ("taxi@epoch:3-2", |e| {
                matches!(
                    e,
                    EpochKeyError::EmptyRange {
                        start: 3,
                        end: 2,
                        ..
                    }
                )
            }),
            ("taxi@epoch:3-3", |e| {
                matches!(e, EpochKeyError::EmptyRange { .. })
            }),
            ("taxi@epoch:18446744073709551615", |e| {
                matches!(e, EpochKeyError::EpochOverflow { .. })
            }),
        ];
        for (key, is_expected) in cases {
            let err = parse_epoch_key_strict(key).unwrap_err();
            assert!(is_expected(&err), "key {key:?} got {err:?}");
            assert_eq!(err.key(), key);
            assert!(
                err.to_string().contains(key),
                "message {:?} must name key {key:?}",
                err.to_string()
            );
        }
    }

    #[test]
    fn strict_and_optional_parsers_agree() {
        for key in [
            "taxi@epoch:5",
            "taxi@epoch:2-6",
            "a@epoch:weird@epoch:2",
            "plain",
            "taxi@epoch:3-2",
            "@epoch:1",
        ] {
            assert_eq!(parse_epoch_key(key), parse_epoch_key_strict(key).ok());
        }
    }

    #[test]
    fn layout_maps_times_and_widens_windows_outward() {
        let layout = EpochLayout::new(100.0, 60.0).unwrap();
        assert_eq!(layout.epoch_of(100.0), Some(0));
        assert_eq!(layout.epoch_of(159.999), Some(0));
        assert_eq!(layout.epoch_of(160.0), Some(1));
        assert_eq!(layout.epoch_of(99.9), None);
        assert_eq!(layout.epoch_of(f64::NAN), None);
        assert_eq!(layout.epoch_start(2), 220.0);
        // Aligned window: exactly the covering epochs.
        assert_eq!(layout.window(160.0, 280.0), EpochRange::new(1, 3));
        // Partial edges widen outward, never inward.
        assert_eq!(layout.window(170.0, 250.0), EpochRange::new(1, 3));
        assert_eq!(layout.window(100.0, 100.5), EpochRange::new(0, 1));
        // Before-origin starts clamp to epoch 0.
        assert_eq!(layout.window(0.0, 130.0), EpochRange::new(0, 1));
        // Empty / inverted / fully-before-origin windows are None.
        assert_eq!(layout.window(200.0, 200.0), None);
        assert_eq!(layout.window(250.0, 200.0), None);
        assert_eq!(layout.window(0.0, 50.0), None);
        assert_eq!(layout.window(f64::NAN, 200.0), None);
    }

    #[test]
    fn layout_validates() {
        assert!(EpochLayout::new(f64::NAN, 60.0).is_err());
        assert!(EpochLayout::new(0.0, 0.0).is_err());
        assert!(EpochLayout::new(0.0, -1.0).is_err());
        assert!(EpochLayout::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn range_arithmetic() {
        let r = EpochRange::new(2, 5).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.contains(2) && r.contains(4) && !r.contains(5));
        assert!(r.intersects(&EpochRange::single(4)));
        assert!(!r.intersects(&EpochRange::single(5)));
        assert!(r.contains_range(&EpochRange::new(3, 5).unwrap()));
        assert!(!r.contains_range(&EpochRange::new(3, 6).unwrap()));
        assert!(EpochRange::new(3, 3).is_none());
    }

    #[test]
    fn aligned_merge_sums_answers_exactly() {
        let publish = |seed: u64| {
            Pipeline::new(&dataset(seed))
                .epsilon(0.5)
                .method(Method::ug(8))
                .seed(seed)
                .publish()
                .unwrap()
        };
        let (a, b, c) = (publish(1), publish(2), publish(3));
        let merged = merge_releases("tier", &[&a, &b, &c]).unwrap();
        assert_eq!(merged.epsilon(), 1.5);
        assert_eq!(merged.cell_count(), a.cell_count());
        for q in [
            Rect::new(0.0, 0.0, 8.0, 8.0).unwrap(),
            Rect::new(1.3, 2.7, 5.9, 6.1).unwrap(),
            Rect::new(0.1, 0.1, 0.2, 7.9).unwrap(),
        ] {
            let sum =
                a.answer_linear_scan(&q) + b.answer_linear_scan(&q) + c.answer_linear_scan(&q);
            assert!((merged.answer_linear_scan(&q) - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
        }
    }

    #[test]
    fn misaligned_merge_overlays_exactly() {
        // Different grid sizes (8×8 vs 12×12) force the overlay path.
        let a = Pipeline::new(&dataset(1))
            .epsilon(0.5)
            .method(Method::ug(8))
            .seed(4)
            .publish()
            .unwrap();
        let b = Pipeline::new(&dataset(2))
            .epsilon(0.25)
            .method(Method::ug(12))
            .seed(5)
            .publish()
            .unwrap();
        let merged = merge_releases("tier", &[&a, &b]).unwrap();
        assert!((merged.epsilon() - 0.75).abs() < 1e-12);
        for q in [
            Rect::new(0.0, 0.0, 8.0, 8.0).unwrap(),
            Rect::new(0.7, 1.1, 6.3, 7.9).unwrap(),
            Rect::new(3.33, 3.33, 3.34, 3.34).unwrap(),
        ] {
            let sum = a.answer_linear_scan(&q) + b.answer_linear_scan(&q);
            assert!(
                (merged.answer_linear_scan(&q) - sum).abs() <= 1e-9 * (1.0 + sum.abs()),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn merge_rejects_mismatched_domains_and_empty_input() {
        let a = Pipeline::new(&dataset(1)).seed(1).publish().unwrap();
        let other = {
            let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let ds = generators::uniform(domain, 500, &mut rng);
            Pipeline::new(&ds).seed(2).publish().unwrap()
        };
        assert!(merge_releases("tier", &[&a, &other]).is_err());
        assert!(merge_releases("tier", &[]).is_err());
        // A single-release "merge" is the identity (modulo metadata).
        let solo = merge_releases("tier", &[&a]).unwrap();
        let q = Rect::new(1.0, 1.0, 7.0, 7.0).unwrap();
        assert_eq!(solo.answer_linear_scan(&q), a.answer_linear_scan(&q));
    }
}
