//! The portable release format.
//!
//! A differentially private synopsis is meant to be *published*. This
//! module defines the method-agnostic interchange format: the domain,
//! the consumed ε, a method tag, and the leaf cells with their noisy
//! counts. Any [`Synopsis`] can be exported ([`Release::from_synopsis`])
//! and the result is itself a queryable `Synopsis`, so consumers do not
//! need the producing method's code (or its Rust types) at all.
//!
//! Everything in a `Release` is ε-DP output; saving, sharing and
//! re-loading are privacy-free post-processing.
//!
//! # Query architecture
//!
//! A release stores its cells as a flat list (that is the interchange
//! format), but it never *answers* from that list: on the first call to
//! [`Release::answer`] / [`Release::answer_all`] the cells are compiled
//! — once, lazily — into a [`CompiledSurface`], and every query
//! afterwards runs in O(log cells) against that surface (a dense
//! lattice + summed-area table when the cells are grid-shaped, a sorted
//! row-band index otherwise; see [`crate::surface`]). The compiled
//! index is a cache, never serialised: a release loaded from JSON
//! recompiles on first use. [`Release::answer_linear_scan`] keeps the
//! naive O(cells) reference semantics available for verification and
//! benchmarking.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use dpgrid_geo::{Domain, GeoError, Rect};

use crate::{CompiledSurface, CoreError, Result, Synopsis};

/// A serialisable, method-agnostic DP release.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Release {
    /// Producing method, free-form (e.g. `"AG(eps=1, m1=79)"`).
    method: String,
    /// Privacy budget consumed.
    epsilon: f64,
    /// The public domain.
    domain: Domain,
    /// Leaf cells and their released counts; the rectangles partition
    /// the domain.
    cells: Vec<(Rect, f64)>,
    /// Query index compiled from `cells` on first answer; pure cache
    /// (derived data), so it is skipped by serialisation and reset by
    /// deserialisation.
    #[serde(skip)]
    surface: OnceLock<CompiledSurface>,
}

impl Release {
    /// Exports any synopsis into the interchange format.
    pub fn from_synopsis(method: impl Into<String>, synopsis: &impl Synopsis) -> Self {
        Release {
            method: method.into(),
            epsilon: synopsis.epsilon(),
            domain: *synopsis.domain(),
            cells: synopsis.cells(),
            surface: OnceLock::new(),
        }
    }

    /// Builds a release from raw parts, validating that the cells are
    /// sane (finite counts, non-empty rectangles inside the domain, and
    /// total area matching the domain to within 0.1 %).
    pub fn from_parts(
        method: impl Into<String>,
        epsilon: f64,
        domain: Domain,
        cells: Vec<(Rect, f64)>,
    ) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "release epsilon must be positive, got {epsilon}"
            )));
        }
        if cells.is_empty() {
            return Err(CoreError::InvalidConfig(
                "release needs at least one cell".into(),
            ));
        }
        let mut area = 0.0;
        for (rect, v) in &cells {
            if !v.is_finite() {
                return Err(CoreError::InvalidConfig(format!(
                    "cell count must be finite, got {v}"
                )));
            }
            if rect.is_empty() || !domain.rect().contains_rect(rect) {
                return Err(CoreError::InvalidConfig(format!(
                    "cell {rect:?} is empty or escapes the domain"
                )));
            }
            area += rect.area();
        }
        if (area - domain.area()).abs() > domain.area() * 1e-3 {
            return Err(CoreError::InvalidConfig(format!(
                "cells cover area {area}, domain has {}",
                domain.area()
            )));
        }
        Ok(Release {
            method: method.into(),
            epsilon,
            domain,
            cells,
            surface: OnceLock::new(),
        })
    }

    /// The producing method tag.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Number of leaf cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The compiled query surface, building it on first use.
    ///
    /// Compilation is pure post-processing of already-released values;
    /// it costs O(cells·log cells) once and makes every subsequent
    /// [`Release::answer`] O(log cells).
    pub fn surface(&self) -> &CompiledSurface {
        self.surface
            .get_or_init(|| CompiledSurface::compile(self.domain, &self.cells))
    }

    /// Reference implementation of [`Release::answer`]: the naive
    /// O(cells) scan over the stored cell list.
    ///
    /// Kept public so equivalence tests and benchmarks can compare the
    /// compiled surface against the semantics it must reproduce; never
    /// use this on a serving path.
    pub fn answer_linear_scan(&self, query: &Rect) -> f64 {
        let Some(q) = self.domain.clip(query) else {
            return 0.0;
        };
        self.cells
            .iter()
            .map(|(rect, v)| v * rect.overlap_fraction(&q))
            .sum()
    }

    /// Serialises to JSON.
    pub fn write_json<W: Write>(&self, w: W) -> Result<()> {
        let w = BufWriter::new(w);
        serde_json::to_writer(w, self).map_err(|e| CoreError::Geo(GeoError::Io(e.to_string())))?;
        Ok(())
    }

    /// Deserialises from JSON, re-validating the invariants (a release
    /// from an untrusted source must not bypass [`Release::from_parts`]).
    pub fn read_json<R: Read>(r: R) -> Result<Self> {
        let r = BufReader::new(r);
        let raw: Release =
            serde_json::from_reader(r).map_err(|e| CoreError::Geo(GeoError::Io(e.to_string())))?;
        Release::from_parts(raw.method, raw.epsilon, raw.domain, raw.cells)
    }

    /// Saves to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let f = std::fs::File::create(path).map_err(|e| CoreError::Geo(e.into()))?;
        self.write_json(f)
    }

    /// Loads from a JSON file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let f = std::fs::File::open(path).map_err(|e| CoreError::Geo(e.into()))?;
        Release::read_json(f)
    }
}

impl Synopsis for Release {
    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Answers through the lazily compiled surface: O(log cells) per
    /// query after a one-time O(cells·log cells) compilation.
    fn answer(&self, query: &Rect) -> f64 {
        self.surface().answer(query)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        self.cells.clone()
    }

    /// Batch answering through the compiled surface, chunked across
    /// scoped threads for large batches.
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        self.surface().answer_all(queries)
    }

    /// Reads the stored cells directly — no `cells()` clone, no
    /// recompilation.
    fn total_estimate(&self) -> f64 {
        self.cells.iter().map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveGrid, AgConfig, UgConfig, UniformGrid};
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset() -> dpgrid_geo::GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
        generators::uniform(domain, 1_000, &mut rng(1))
    }

    #[test]
    fn export_preserves_answers() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(2)).unwrap();
        let rel = Release::from_synopsis("UG", &ug);
        assert_eq!(rel.method(), "UG");
        assert_eq!(rel.epsilon(), 1.0);
        assert_eq!(rel.cell_count(), 64);
        for q in [
            Rect::new(0.0, 0.0, 8.0, 8.0).unwrap(),
            Rect::new(1.3, 2.7, 5.9, 6.1).unwrap(),
        ] {
            assert!((rel.answer(&q) - ug.answer(&q)).abs() < 1e-9);
        }
    }

    #[test]
    fn ag_export_roundtrips_through_json() {
        let ds = dataset();
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(0.5).with_m1(4), &mut rng(3)).unwrap();
        let rel = Release::from_synopsis("AG", &ag);
        let mut buf = Vec::new();
        rel.write_json(&mut buf).unwrap();
        let back = Release::read_json(&buf[..]).unwrap();
        let q = Rect::new(0.5, 0.5, 7.5, 3.5).unwrap();
        assert!((back.answer(&q) - ag.answer(&q)).abs() < 1e-9);
        assert_eq!(back.cell_count(), rel.cell_count());
    }

    #[test]
    fn from_parts_validates() {
        let domain = Domain::from_corners(0.0, 0.0, 2.0, 1.0).unwrap();
        let good = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 3.0),
            (Rect::new(1.0, 0.0, 2.0, 1.0).unwrap(), 4.0),
        ];
        assert!(Release::from_parts("x", 1.0, domain, good.clone()).is_ok());
        // Bad epsilon.
        assert!(Release::from_parts("x", 0.0, domain, good.clone()).is_err());
        // Empty cells.
        assert!(Release::from_parts("x", 1.0, domain, vec![]).is_err());
        // Non-finite count.
        let nan = vec![(Rect::new(0.0, 0.0, 2.0, 1.0).unwrap(), f64::NAN)];
        assert!(Release::from_parts("x", 1.0, domain, nan).is_err());
        // Escaping cell.
        let out = vec![(Rect::new(0.0, 0.0, 3.0, 1.0).unwrap(), 1.0)];
        assert!(Release::from_parts("x", 1.0, domain, out).is_err());
        // Under-covering cells.
        let hole = vec![(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 1.0)];
        assert!(Release::from_parts("x", 1.0, domain, hole).is_err());
    }

    #[test]
    fn untrusted_json_is_revalidated() {
        // A hand-crafted JSON with a cell escaping the domain must be
        // rejected at load time.
        let json = r#"{
            "method": "evil",
            "epsilon": 1.0,
            "domain": {"rect": {"x0": 0.0, "y0": 0.0, "x1": 1.0, "y1": 1.0}},
            "cells": [[{"x0": 0.0, "y0": 0.0, "x1": 5.0, "y1": 5.0}, 1.0]]
        }"#;
        assert!(Release::read_json(json.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 4), &mut rng(4)).unwrap();
        let rel = Release::from_synopsis("UG-file", &ug);
        let path = std::env::temp_dir().join("dpgrid_release_test.json");
        rel.save(&path).unwrap();
        let back = Release::load(&path).unwrap();
        assert_eq!(back.method(), "UG-file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn synthetic_from_release() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(5.0, 4), &mut rng(5)).unwrap();
        let rel = Release::from_synopsis("UG", &ug);
        let synth = crate::synthetic::synthesize(&rel, 500, &mut rng(6)).unwrap();
        assert_eq!(synth.len(), 500);
    }
}
