//! End-to-end TCP serving regression.
//!
//! Publishes three releases (lattice and band surface paths), serves
//! them over a real loopback TCP server, and hammers it from four
//! client threads: every remote answer must match the single-threaded
//! `CompiledSurface::answer` reference to ≤ 1e-9 while the engine's
//! memory-budgeted catalog churns below its byte budget. A second
//! server demonstrates that an over-budget burst is shed with typed
//! `Overloaded` frames instead of hanging, and a raw socket checks the
//! protocol-version guard.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpgrid::net::{NetError, TcpClient, TcpServer};
use dpgrid::prelude::*;
use dpgrid::serve::wire::{
    self, binary, ErrorCode, HelloAck, HelloOffer, RequestBody, ResponseBody, WireError,
    WireRequest, WireResponse,
};

const CLIENT_THREADS: usize = 4;
const ITERATIONS: usize = 20;

fn methods() -> Vec<(&'static str, Method, u64)> {
    vec![
        ("ug", Method::ug(24), 31),
        ("ag", Method::ag_suggested(), 32),
        ("kd", Method::KdHybrid, 33),
    ]
}

fn publish(dataset: &GeoDataset, method: Method, seed: u64) -> Release {
    Pipeline::new(dataset)
        .epsilon(1.0)
        .method(method)
        .seed(seed)
        .publish()
        .unwrap()
}

fn workload(domain: &Rect) -> Vec<Rect> {
    let (x0, y0) = (domain.x0(), domain.y0());
    let (w, h) = (domain.width(), domain.height());
    let mut rects = vec![
        *domain,
        Rect::new(x0 - 1.0, y0 + 0.1 * h, x0 + w + 1.0, y0 + 0.9 * h).unwrap(),
        Rect::new(x0 + 0.37 * w, y0, x0 + 0.3701 * w, y0 + h).unwrap(),
    ];
    for i in 0..12 {
        let t = i as f64 / 12.0;
        rects.push(
            Rect::new(
                x0 + 0.4 * w * t,
                y0 + 0.3 * h * t,
                x0 + 0.2 * w + 0.7 * w * t,
                y0 + 0.25 * h + 0.6 * h * t,
            )
            .unwrap(),
        );
    }
    rects
}

#[test]
fn four_clients_three_releases_match_reference_within_budget() {
    let dataset = PaperDataset::Storage.generate_n(41, 4_000).unwrap();
    let rects = workload(dataset.domain().rect());

    // Single-threaded reference surfaces (identical seeds => identical
    // cells) plus their byte sizes for the catalog budget.
    let mut surface_bytes = 0usize;
    let expected: Vec<(String, Vec<f64>)> = methods()
        .iter()
        .map(|(key, method, seed)| {
            let surface = CompiledSurface::from_synopsis(&publish(&dataset, *method, *seed));
            surface_bytes += surface.memory_bytes();
            (
                key.to_string(),
                rects.iter().map(|q| surface.answer(q)).collect(),
            )
        })
        .collect();

    // One byte short of all three surfaces: the LRU must churn while
    // every served answer stays exact.
    let budget = surface_bytes - 1;
    let mut catalog = Catalog::with_memory_budget(budget);
    for (key, method, seed) in methods() {
        Pipeline::new(&dataset)
            .epsilon(1.0)
            .method(method)
            .seed(seed)
            .publish_into(&mut catalog, key)
            .unwrap();
    }
    let engine = Arc::new(QueryEngine::new(catalog));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let expected = &expected;
            let rects = &rects;
            let engine = &engine;
            let checked = &checked;
            scope.spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                client.ping().unwrap();
                for i in 0..ITERATIONS {
                    let verify = |key: &str, answers: &[f64], expect: &[f64]| {
                        assert_eq!(answers.len(), expect.len());
                        for (a, e) in answers.iter().zip(expect) {
                            assert!(
                                (a - e).abs() <= 1e-9 * (1.0 + e.abs()),
                                "release {key}: remote {a} vs reference {e}"
                            );
                        }
                        checked.fetch_add(answers.len() as u64, Ordering::Relaxed);
                    };
                    if i % 2 == 0 {
                        // Single query against a rotating release.
                        let (key, expect) = &expected[(t + i) % expected.len()];
                        let response = client.query(key, rects).unwrap();
                        assert_eq!(&response.release_key, key);
                        verify(key, &response.answers, expect);
                    } else {
                        // One batch frame across all three releases.
                        let batch: Vec<QueryRequest> = expected
                            .iter()
                            .map(|(k, _)| QueryRequest::new(k.clone(), rects.clone()))
                            .collect();
                        for (outcome, (k, e)) in client
                            .query_batch(&batch)
                            .unwrap()
                            .into_iter()
                            .zip(expected)
                        {
                            verify(k, &outcome.unwrap().answers, e);
                        }
                    }
                    // The configured byte budget holds. Eviction may
                    // defer a victim whose release is mid-compile on
                    // another thread (documented transient), and under
                    // concurrent churn a fresh deferral can follow the
                    // previous one — so a sampled overflow only counts
                    // as a violation if it persists for a full second
                    // of resampling (real transients are microseconds;
                    // an accounting leak would never settle).
                    if engine.stats().catalog.resident_bytes > budget {
                        let settled = (0..50).any(|_| {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            engine.stats().catalog.resident_bytes <= budget
                        });
                        assert!(
                            settled,
                            "resident bytes stayed over budget {budget} for 1s: {}",
                            engine.stats().catalog.resident_bytes
                        );
                    }
                }
            });
        }
    });

    assert_eq!(
        checked.load(Ordering::Relaxed),
        (CLIENT_THREADS * ITERATIONS * 2 * rects.len()) as u64,
        "every iteration verifies one single query or one triple batch"
    );
    // Quiesced: no lease can defer a victim, so the bound is strict.
    let stats = engine.stats();
    assert!(
        stats.catalog.resident_bytes <= budget,
        "resident bytes {} exceed budget {budget}",
        stats.catalog.resident_bytes
    );
    assert!(stats.catalog.evictions > 0, "the byte budget never engaged");
    assert_eq!(stats.unknown_keys, 0);
    assert!(server.frames_served() >= (CLIENT_THREADS * (ITERATIONS + 1)) as u64);
    server.shutdown();
}

#[test]
fn over_budget_burst_sheds_typed_overloaded_without_hanging() {
    let dataset = PaperDataset::Storage.generate_n(42, 2_000).unwrap();
    let mut catalog = Catalog::new();
    Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug(16))
        .seed(1)
        .publish_into(&mut catalog, "storage")
        .unwrap();
    // Budget of 10 in-flight rects; every burst request carries 16.
    let engine = Arc::new(QueryEngine::new(catalog).with_admission_limit(10));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let rects = workload(dataset.domain().rect());
    assert!(rects.len() >= 15);

    let shed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            let rects = &rects;
            let shed = &shed;
            scope.spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                for _ in 0..4 {
                    // 15 rects > the 10-rect budget: must shed, typed.
                    match client.query("storage", &rects[..15]) {
                        Err(NetError::Server(e)) => {
                            assert_eq!(e.code, ErrorCode::Overloaded, "{e}");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("expected Overloaded, got {other:?}"),
                    }
                    // Within budget goes straight through afterwards —
                    // shedding leaked nothing into the in-flight count.
                    // (2 rects × 4 threads = 8 fits the budget even
                    // when every client lands at once.)
                    let ok = client.query("storage", &rects[..2]).unwrap();
                    assert_eq!(ok.answers.len(), 2);
                }
            });
        }
    });
    assert_eq!(shed.load(Ordering::Relaxed), (CLIENT_THREADS * 4) as u64);
    let stats = engine.stats();
    assert_eq!(stats.shed, (CLIENT_THREADS * 4) as u64);
    assert_eq!(stats.inflight_rects, 0);
    server.shutdown();
}

#[test]
fn raw_socket_version_mismatch_and_garbage_get_typed_errors() {
    let dataset = PaperDataset::Storage.generate_n(43, 1_500).unwrap();
    let mut catalog = Catalog::new();
    Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug(8))
        .seed(1)
        .publish_into(&mut catalog, "k")
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog));
    let server = TcpServer::bind(engine, "127.0.0.1:0").unwrap();

    fn roundtrip(
        reader: &mut BufReader<std::net::TcpStream>,
        writer: &mut std::net::TcpStream,
        frame: &[u8],
    ) -> String {
        writer.write_all(frame).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Wrong protocol version: typed UnsupportedVersion, id echoed.
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        br#"{"protocol_version": 99, "id": 7, "body": "Ping"}"#,
    );
    assert!(reply.contains("\"UnsupportedVersion\""), "{reply}");
    assert!(reply.contains("\"id\":7"), "{reply}");

    // Garbage: typed MalformedRequest, connection stays usable.
    let reply = roundtrip(&mut reader, &mut writer, b"this is not json");
    assert!(reply.contains("\"MalformedRequest\""), "{reply}");
    // Invalid UTF-8 bytes: typed error too, and still usable — byte
    // framing means a bad frame never desynchronises the stream.
    let reply = roundtrip(&mut reader, &mut writer, &[0xFF, 0xFE, 0x80]);
    assert!(reply.contains("\"MalformedRequest\""), "{reply}");
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        br#"{"protocol_version": 1, "id": 9, "body": "Ping"}"#,
    );
    assert!(reply.contains("\"Pong\""), "{reply}");

    // A newline-free flood larger than the 16 MiB frame cap: the
    // server rejects and terminates the connection instead of
    // buffering without bound. The server's close may RST while the
    // flood is still in flight, so the client legitimately observes
    // either the typed error frame, a clean EOF, or a reset — never a
    // hang and never an accepted frame.
    let flood = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut flood_reader = BufReader::new(flood.try_clone().unwrap());
    let mut flood_writer = flood;
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..17 {
        if flood_writer.write_all(&chunk).is_err() {
            break; // server already slammed the door
        }
    }
    let _ = flood_writer.flush();
    let mut line = String::new();
    match flood_reader.read_line(&mut line) {
        Ok(0) | Err(_) => {} // connection terminated; error frame lost to the reset
        Ok(_) => {
            assert!(line.contains("\"MalformedRequest\""), "{line}");
            assert!(line.contains("exceeds"), "{line}");
            line.clear();
            // Nothing more follows the rejection.
            assert!(matches!(flood_reader.read_line(&mut line), Ok(0) | Err(_)));
        }
    }
    server.shutdown();
}

/// Performs the JSON `Hello` handshake on a raw socket and asserts the
/// server upgrades the connection to binary v2.
fn hello_upgrade(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let offer = WireRequest::new(0, RequestBody::Hello(HelloOffer { max_version: 2 }));
    writer.write_all(offer.encode().as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let ack = WireResponse::decode(line.trim_end()).unwrap();
    assert_eq!(
        ack.body,
        ResponseBody::Hello(HelloAck { version: 2 }),
        "{line}"
    );
    (reader, writer)
}

/// Reads one binary frame off the socket and decodes it as a response.
fn read_binary_response(reader: &mut impl Read) -> WireResponse {
    let mut head = [0u8; binary::HEADER_BYTES];
    reader.read_exact(&mut head).unwrap();
    let header = binary::decode_header(&head).unwrap();
    let mut payload = vec![0u8; header.payload_len];
    reader.read_exact(&mut payload).unwrap();
    binary::decode_response(&header, &payload).unwrap()
}

/// Unwraps a response into its error body.
fn expect_error(response: WireResponse) -> WireError {
    match response.body {
        ResponseBody::Error(e) => e,
        other => panic!("expected an error frame, got {other:?}"),
    }
}

/// Asserts the server closed the connection cleanly after a reject.
fn expect_eof(reader: &mut impl Read) {
    let mut byte = [0u8; 1];
    match reader.read(&mut byte) {
        Ok(0) | Err(_) => {}
        Ok(_) => panic!("server kept the connection open after losing byte framing"),
    }
}

#[test]
fn raw_socket_binary_garbage_probes_get_typed_rejects_and_clean_close() {
    let dataset = PaperDataset::Storage.generate_n(45, 1_500).unwrap();
    let mut catalog = Catalog::new();
    Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug(8))
        .seed(1)
        .publish_into(&mut catalog, "k")
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog));
    let server = TcpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Bad magic after a real upgrade: byte framing is unrecoverable, so
    // the server rejects typed (id 0 — the header is untrusted) and
    // closes.
    {
        let (mut reader, mut writer) = hello_upgrade(addr);
        writer.write_all(&[0xFFu8; binary::HEADER_BYTES]).unwrap();
        writer.flush().unwrap();
        let reply = read_binary_response(&mut reader);
        assert_eq!(reply.id, 0);
        let e = expect_error(reply);
        assert_eq!(e.code, ErrorCode::MalformedRequest);
        assert!(e.message.contains("magic"), "{}", e.message);
        expect_eof(&mut reader);
    }

    // A foreign version byte in an otherwise well-formed header: typed
    // UnsupportedVersion, then close.
    {
        let (mut reader, mut writer) = hello_upgrade(addr);
        let mut head = binary::encode_header(binary::frame_type::PING, 5, 0);
        head[2] = 9;
        writer.write_all(&head).unwrap();
        writer.flush().unwrap();
        let e = expect_error(read_binary_response(&mut reader));
        assert_eq!(e.code, ErrorCode::UnsupportedVersion);
        expect_eof(&mut reader);
    }

    // A length prefix past the frame cap: rejected from the header
    // alone — the server never tries to buffer the claimed payload.
    {
        let (mut reader, mut writer) = hello_upgrade(addr);
        let mut head = binary::encode_header(binary::frame_type::QUERY, 5, 0);
        head[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        writer.write_all(&head).unwrap();
        writer.flush().unwrap();
        let e = expect_error(read_binary_response(&mut reader));
        assert_eq!(e.code, ErrorCode::MalformedRequest);
        assert!(e.message.contains("exceeds"), "{}", e.message);
        expect_eof(&mut reader);
    }

    // A truncated payload (header promises 64 bytes, the peer hangs up
    // after 8): typed reject under the header's id, then close.
    {
        let (mut reader, mut writer) = hello_upgrade(addr);
        let head = binary::encode_header(binary::frame_type::QUERY, 9, 64);
        writer.write_all(&head).unwrap();
        writer.write_all(&[0u8; 8]).unwrap();
        writer.flush().unwrap();
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        let reply = read_binary_response(&mut reader);
        assert_eq!(reply.id, 9);
        let e = expect_error(reply);
        assert_eq!(e.code, ErrorCode::MalformedRequest);
        assert!(e.message.contains("mid-payload"), "{}", e.message);
        expect_eof(&mut reader);
    }

    // Garbage *payload* under intact framing: typed reject, and the
    // connection stays usable — exactly like a garbage JSON line under
    // v1, a bad frame never desynchronises the stream.
    {
        let (mut reader, mut writer) = hello_upgrade(addr);
        let mut frame = Vec::from(binary::encode_header(binary::frame_type::QUERY, 3, 4));
        frame.extend_from_slice(&[0xAA; 4]);
        writer.write_all(&frame).unwrap();
        writer.flush().unwrap();
        let reply = read_binary_response(&mut reader);
        assert_eq!(reply.id, 3);
        assert_eq!(expect_error(reply).code, ErrorCode::MalformedRequest);
        let mut ping = Vec::new();
        binary::encode_request(&WireRequest::new(4, RequestBody::Ping), &mut ping).unwrap();
        writer.write_all(&ping).unwrap();
        writer.flush().unwrap();
        let reply = read_binary_response(&mut reader);
        assert_eq!(reply.id, 4);
        assert_eq!(reply.body, ResponseBody::Pong);
    }
    server.shutdown();
}

/// A minimal JSON-v1-only server on one accepted connection. Like any
/// server that predates the handshake, its decoder has no `Hello`
/// variant — the offer comes back as a `MalformedRequest` error, which
/// is exactly the signal a v2 client falls back on.
fn spawn_v1_only_server(
    listener: TcpListener,
    engine: Arc<QueryEngine>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let trimmed = line.trim_end();
            let response = if trimmed.contains("Hello") {
                WireResponse::error(
                    0,
                    WireError::new(ErrorCode::MalformedRequest, "unknown variant `Hello`"),
                )
            } else {
                wire::handle_frame(engine.as_ref(), trimmed)
            };
            writer.write_all(response.encode().as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
        }
    })
}

#[test]
fn version_negotiation_works_both_directions() {
    let dataset = PaperDataset::Storage.generate_n(46, 1_500).unwrap();
    let rects = workload(dataset.domain().rect());
    let mut catalog = Catalog::new();
    Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug(8))
        .seed(2)
        .publish_into(&mut catalog, "storage")
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog));

    // A v2-capable server answers a pinned v1-only client (no Hello
    // sent at all) and a default v2 client identically.
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut v2 = TcpClient::connect(server.local_addr()).unwrap();
    assert_eq!(v2.protocol_version(), Some(2));
    let reference = v2.query("storage", &rects).unwrap();
    let mut v1 = TcpClient::connect_with_protocol(server.local_addr(), 1).unwrap();
    assert_eq!(v1.protocol_version(), Some(1));
    let answers = v1.query("storage", &rects).unwrap();
    assert_eq!(answers.answers, reference.answers);
    server.shutdown();

    // A v2-offering client against a v1-only server: the Hello comes
    // back MalformedRequest, the client silently falls back to JSON v1,
    // and both single queries and the pipelined path (one Batch frame
    // under v1) still answer correctly.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let v1_server = spawn_v1_only_server(listener, Arc::clone(&engine));
    let mut client = TcpClient::connect(addr).unwrap();
    assert_eq!(client.protocol_version(), Some(1));
    let fallback = client.query("storage", &rects).unwrap();
    assert_eq!(fallback.answers, reference.answers);
    let batch = vec![QueryRequest::new("storage", rects.clone()); 3];
    for outcome in client.query_pipelined(&batch).unwrap() {
        assert_eq!(outcome.unwrap().answers, reference.answers);
    }
    drop(client);
    v1_server.join().unwrap();
}

#[test]
fn reconnect_renegotiates_instead_of_reusing_stale_protocol_state() {
    let dataset = PaperDataset::Storage.generate_n(47, 1_500).unwrap();
    let rects = workload(dataset.domain().rect());
    let mut catalog = Catalog::new();
    Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug(8))
        .seed(3)
        .publish_into(&mut catalog, "storage")
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog));

    // Negotiate binary v2 against a real server...
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = TcpClient::connect(addr).unwrap();
    assert_eq!(client.protocol_version(), Some(2));
    let reference = client.query("storage", &rects).unwrap();
    server.shutdown();

    // ...then restart the same port as a v1-only server. The stranded
    // client's one-shot reconnect must re-handshake from scratch — a
    // client that replayed its remembered v2 state would write binary
    // frames at a peer that only reads JSON lines and hang or poison
    // the connection. Instead the redial renegotiates down to v1 and
    // the resent query succeeds.
    let v1_server = spawn_v1_only_server(TcpListener::bind(addr).unwrap(), Arc::clone(&engine));
    let healed = client.query("storage", &rects).unwrap();
    assert_eq!(client.protocol_version(), Some(1));
    assert_eq!(healed.answers, reference.answers);
    drop(client);
    v1_server.join().unwrap();
}
