//! Smoke tests of the experiment harness: every paper artifact runs end
//! to end at a reduced scale and produces its outputs.

use dpgrid::eval::experiments::{self, ExpContext};

fn ctx(name: &str) -> ExpContext {
    let mut c = ExpContext::smoke(std::env::temp_dir().join(format!("dpgrid_smoke_{name}")));
    c.scale = 512;
    c.queries_per_size = 6;
    c
}

#[test]
fn dim_runs() {
    let c = ctx("dim");
    let md = experiments::dim::run(&c).unwrap();
    assert!(md.contains("0.08"));
    let _ = std::fs::remove_dir_all(&c.out_dir);
}

#[test]
fn fig1_runs() {
    let c = ctx("fig1");
    let md = experiments::fig1::run(&c).unwrap();
    for name in ["road", "checkin", "landmark", "storage"] {
        assert!(md.contains(name), "missing {name}");
        assert!(c.dir("fig1").join(format!("{name}_density.csv")).exists());
    }
    let _ = std::fs::remove_dir_all(&c.out_dir);
}

#[test]
fn table2_runs() {
    let c = ctx("table2");
    let md = experiments::table2::run(&c).unwrap();
    assert!(md.contains("suggested"));
    assert!(c.dir("table2").join("table2.csv").exists());
    let _ = std::fs::remove_dir_all(&c.out_dir);
}

#[test]
fn fig2_runs() {
    let c = ctx("fig2");
    let md = experiments::fig2::run(&c).unwrap();
    assert!(md.contains("Kst"));
    assert!(md.contains("Khy"));
    let _ = std::fs::remove_dir_all(&c.out_dir);
}

#[test]
fn fig3_runs() {
    let c = ctx("fig3");
    let md = experiments::fig3::run(&c).unwrap();
    assert!(md.contains("W360"));
    let _ = std::fs::remove_dir_all(&c.out_dir);
}

#[test]
fn fig4_runs() {
    let c = ctx("fig4");
    let md = experiments::fig4::run(&c).unwrap();
    assert!(md.contains("m1 sweep"));
    let _ = std::fs::remove_dir_all(&c.out_dir);
}

#[test]
fn fig5_and_fig6_run() {
    let c = ctx("fig56");
    let md5 = experiments::fig5::run(&c).unwrap();
    assert!(md5.contains("final comparison"));
    let md6 = experiments::fig6::run(&c).unwrap();
    assert!(md6.contains("absolute error"));
    let _ = std::fs::remove_dir_all(&c.out_dir);
}
