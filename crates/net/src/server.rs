//! The TCP frontend: a thread-per-connection frame server over any
//! [`QueryService`].
//!
//! The server owns only transport concerns — accepting sockets,
//! newline framing, connection lifecycle, graceful shutdown. Protocol
//! work (decoding, validation, dispatch, error mapping) is entirely
//! [`dpgrid_serve::wire::handle_frame`], so the transport and the
//! protocol evolve independently.
//!
//! Concurrency model: one OS thread per connection, all sharing one
//! `Arc<S: QueryService>`. The engine underneath is built for exactly
//! this (short catalog lock, lock-free answering), and the engine's
//! admission control — not the transport — is the backpressure seam:
//! an overloaded engine sheds with a typed `Overloaded` frame the
//! client can branch on, instead of the listener queueing unboundedly.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dpgrid_serve::{wire, QueryService};

use crate::error::Result;

/// How often parked connection reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Upper bound on one request frame's size — the protocol-wide
/// [`wire::MAX_FRAME_BYTES`], shared with the client so senders refuse
/// oversized frames before this server has to slam the connection. A
/// connection whose frame grows past it without a newline is answered
/// with a typed `MalformedRequest` and closed — a newline-free stream
/// must not grow the server's buffer unboundedly.
const MAX_FRAME_BYTES: u64 = wire::MAX_FRAME_BYTES as u64;

/// One live connection: its worker thread plus a socket handle the
/// shutdown path uses to sever the connection (unblocking any stuck
/// blocking write) before joining the thread.
type Connection = (JoinHandle<()>, TcpStream);

/// A running TCP query server.
///
/// Dropping the handle shuts the server down gracefully: the listener
/// stops accepting, every connection thread drains its current frame
/// and exits, and all threads are joined. Use [`TcpServer::shutdown`]
/// to do the same explicitly.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<Connection>>>,
    frames: Arc<AtomicU64>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — the bound
    /// address is [`TcpServer::local_addr`]) and starts serving
    /// `service` on a background accept thread, one thread per
    /// connection.
    pub fn bind<S>(service: Arc<S>, addr: impl ToSocketAddrs) -> Result<TcpServer>
    where
        S: QueryService + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<Connection>>> = Arc::new(Mutex::new(Vec::new()));
        let frames = Arc::new(AtomicU64::new(0));

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let frames = Arc::clone(&frames);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else {
                        // Transient accept failures (EMFILE under
                        // connection floods, ECONNABORTED) come back
                        // immediately — back off briefly instead of
                        // busy-spinning the accept thread.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    let Ok(socket) = stream.try_clone() else {
                        continue;
                    };
                    let service = Arc::clone(&service);
                    let conn_shutdown = Arc::clone(&shutdown);
                    let conn_frames = Arc::clone(&frames);
                    let conn_registry = Arc::clone(&connections);
                    let handle = std::thread::spawn(move || {
                        // Transport errors just end this connection.
                        let _ = serve_connection(&stream, &*service, &conn_shutdown, &conn_frames);
                        // Sever at TCP level, not just by dropping:
                        // the registry still holds a clone of this
                        // socket, and the peer must observe the close
                        // now — e.g. a client blocked writing a
                        // rejected oversized frame.
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        // Prune finished peers so a long-idle server
                        // does not pin a burst's worth of dead sockets
                        // and join handles until the next accept. Our
                        // own entry still reads as unfinished here; a
                        // later exit or accept collects it.
                        conn_registry
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .retain(|(h, _)| !h.is_finished());
                    });
                    let mut held = connections.lock().unwrap_or_else(|e| e.into_inner());
                    held.retain(|(h, _)| !h.is_finished());
                    held.push((handle, socket));
                }
            })
        };

        Ok(TcpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
            frames,
        })
    }

    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames answered since the server started (all connections).
    pub fn frames_served(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains and joins every connection thread, and
    /// joins the accept thread. In-flight frames finish answering;
    /// parked connections notice within the poll interval (100 ms).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection; the
        // accept loop re-checks the flag before handling it. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable, so
        // the wake goes to the same-family loopback at the bound port.
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = match self.addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let woke = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1)).is_ok();
        if let Some(handle) = self.accept_thread.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake connection could not be made (e.g. a
            // firewall forbids self-connects), the accept thread stays
            // parked in accept() with no portable way to interrupt it;
            // leaving it detached beats hanging shutdown forever — it
            // exits with the process, and the flag stops it from
            // serving any connection it might still accept.
        }
        let connections =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(|e| e.into_inner()));
        // Sever every socket before joining: a worker stuck in a
        // blocking write (its client stopped reading responses) only
        // unblocks when the connection dies — the read-timeout poll
        // cannot reach it.
        for (_, socket) in &connections {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in connections {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection: newline-delimited request frames in,
/// response frames out, until EOF, a transport error, or shutdown.
///
/// Frames are read as raw bytes through a [`MAX_FRAME_BYTES`]-capped
/// `Take`, so a connection can neither grow the buffer unboundedly
/// with a newline-free stream nor lose bytes when a read timeout
/// lands inside a multibyte character (UTF-8 is only checked once a
/// complete line is assembled).
fn serve_connection<S: QueryService + ?Sized>(
    stream: &TcpStream,
    service: &S,
    shutdown: &AtomicBool,
    frames: &AtomicU64,
) -> std::io::Result<()> {
    // Frames are small and latency-bound: answer each immediately.
    stream.set_nodelay(true)?;
    // Reads time out so parked connections poll the shutdown flag.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_FRAME_BYTES);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    // Complete frame.
                    handle_raw_frame(service, &mut writer, frames, &buf)?;
                    buf.clear();
                    reader.set_limit(MAX_FRAME_BYTES);
                } else if reader.limit() == 0 {
                    // The frame hit the byte cap without a newline:
                    // reject it and drop the connection — resyncing on
                    // a stream this far gone is not worth it.
                    respond(
                        &mut writer,
                        frames,
                        wire::WireResponse::error(
                            0,
                            wire::WireError::new(
                                wire::ErrorCode::MalformedRequest,
                                format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                            ),
                        ),
                    )?;
                    return Ok(());
                } else {
                    // EOF (no newline arrived and the byte cap was not
                    // hit). A final frame missing only its trailing
                    // newline is answered before closing —
                    // deterministically, whether or not a read-timeout
                    // tick separated its bytes from the EOF (timeouts
                    // keep partial bytes in `buf`).
                    if !buf.is_empty() {
                        handle_raw_frame(service, &mut writer, frames, &buf)?;
                    }
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timed out mid-wait; any partial frame bytes stay in
                // `buf` (byte reads lose nothing, even when the
                // timeout splits a multibyte character). Exit on
                // shutdown, else keep listening.
                if shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Answers one raw frame: UTF-8 check, blank-line tolerance, protocol
/// dispatch, framed reply.
fn handle_raw_frame<S: QueryService + ?Sized>(
    service: &S,
    writer: &mut BufWriter<TcpStream>,
    frames: &AtomicU64,
    raw: &[u8],
) -> std::io::Result<()> {
    let Ok(frame) = std::str::from_utf8(raw) else {
        return respond(
            writer,
            frames,
            wire::WireResponse::error(
                0,
                wire::WireError::new(
                    wire::ErrorCode::MalformedRequest,
                    "frame is not valid UTF-8",
                ),
            ),
        );
    };
    let frame = frame.trim_end_matches(['\r', '\n']);
    // Tolerate blank keep-alive lines.
    if frame.is_empty() {
        return Ok(());
    }
    respond(writer, frames, wire::handle_frame(service, frame))
}

/// Writes one response frame and counts it (before the write, so the
/// total is visible by the time any client has read the response).
fn respond(
    writer: &mut BufWriter<TcpStream>,
    frames: &AtomicU64,
    response: wire::WireResponse,
) -> std::io::Result<()> {
    frames.fetch_add(1, Ordering::Relaxed);
    writer.write_all(response.encode().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
