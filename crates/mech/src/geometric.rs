//! The two-sided geometric ("discrete Laplace") mechanism.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{check_epsilon, Result};

/// The two-sided geometric mechanism (Ghosh, Roughgarden & Sundararajan):
/// releases `value + Z` where `Z` is integer noise with
/// `Pr[Z = k] = (1 − α) / (1 + α) · α^|k|` and `α = e^(−ε / Δ)`.
///
/// It is the utility-optimal ε-DP mechanism for integer count queries and
/// is offered as an alternative noise source for the grid methods when
/// integer-valued synopses are desired (an extension beyond the paper,
/// which uses Laplace noise throughout).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricMechanism {
    epsilon: f64,
    sensitivity: u64,
    /// `α = e^(−ε / Δ)`, cached.
    alpha: f64,
}

impl GeometricMechanism {
    /// Creates the mechanism for integer queries of sensitivity
    /// `sensitivity ≥ 1`.
    pub fn new(epsilon: f64, sensitivity: u64) -> Result<Self> {
        let epsilon = check_epsilon(epsilon)?;
        let sensitivity = sensitivity.max(1);
        Ok(GeometricMechanism {
            epsilon,
            sensitivity,
            alpha: (-epsilon / sensitivity as f64).exp(),
        })
    }

    /// The privacy parameter ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The noise parameter `α = e^(−ε / Δ)`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Variance of the noise: `2α / (1 − α)²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Probability mass of noise value `k`.
    pub fn pmf(&self, k: i64) -> f64 {
        (1.0 - self.alpha) / (1.0 + self.alpha) * self.alpha.powi(k.unsigned_abs() as i32)
    }

    /// Draws one integer noise sample.
    pub fn sample_noise(&self, rng: &mut impl Rng) -> i64 {
        // P(Z = 0) = (1 − α) / (1 + α); otherwise draw a sign and a
        // geometric magnitude m ≥ 1 with P(m) ∝ α^m.
        let p_zero = (1.0 - self.alpha) / (1.0 + self.alpha);
        let u: f64 = rng.random();
        if u < p_zero {
            return 0;
        }
        // Geometric magnitude via inverse CDF: m = ⌈ln(u') / ln(α)⌉ for
        // u' uniform in (0, 1).
        let u2: f64 = (1.0 - rng.random::<f64>()).max(f64::MIN_POSITIVE);
        let m = (u2.ln() / self.alpha.ln()).ceil().max(1.0);
        let m = if m.is_finite() { m as i64 } else { i64::MAX };
        if rng.random::<bool>() {
            m
        } else {
            -m
        }
    }

    /// Releases `value + Z`.
    pub fn randomize(&self, value: i64, rng: &mut impl Rng) -> i64 {
        value.saturating_add(self.sample_noise(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn validates_epsilon() {
        assert!(GeometricMechanism::new(0.0, 1).is_err());
        assert!(GeometricMechanism::new(f64::NAN, 1).is_err());
        assert!(GeometricMechanism::new(1.0, 1).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        let m = GeometricMechanism::new(0.5, 1).unwrap();
        let total: f64 = (-200..=200).map(|k| m.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf total {total}");
    }

    #[test]
    fn pmf_is_symmetric_and_decreasing() {
        let m = GeometricMechanism::new(1.0, 1).unwrap();
        for k in 1..20 {
            assert!((m.pmf(k) - m.pmf(-k)).abs() < 1e-15);
            assert!(m.pmf(k) < m.pmf(k - 1));
        }
    }

    #[test]
    fn sample_matches_pmf() {
        let m = GeometricMechanism::new(1.0, 1).unwrap();
        let mut r = rng(7);
        let n = 200_000;
        let mut zero = 0usize;
        let mut one = 0usize;
        let mut sum = 0i64;
        for _ in 0..n {
            let z = m.sample_noise(&mut r);
            sum += z;
            if z == 0 {
                zero += 1;
            }
            if z == 1 {
                one += 1;
            }
        }
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let p0 = zero as f64 / n as f64;
        assert!((p0 - m.pmf(0)).abs() < 0.01, "p0 {p0} vs {}", m.pmf(0));
        let p1 = one as f64 / n as f64;
        assert!((p1 - m.pmf(1)).abs() < 0.01, "p1 {p1} vs {}", m.pmf(1));
    }

    #[test]
    fn variance_matches_theory() {
        let m = GeometricMechanism::new(0.8, 1).unwrap();
        let mut r = rng(9);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = m.sample_noise(&mut r) as f64;
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(
            (var - m.variance()).abs() / m.variance() < 0.05,
            "sample var {var} vs theory {}",
            m.variance()
        );
    }

    #[test]
    fn higher_epsilon_means_less_noise() {
        let loose = GeometricMechanism::new(0.1, 1).unwrap();
        let tight = GeometricMechanism::new(2.0, 1).unwrap();
        assert!(tight.variance() < loose.variance());
    }

    #[test]
    fn sensitivity_scales_alpha() {
        let s1 = GeometricMechanism::new(1.0, 1).unwrap();
        let s2 = GeometricMechanism::new(1.0, 2).unwrap();
        assert!(s2.alpha() > s1.alpha());
        assert!((s2.alpha() - (-0.5_f64).exp()).abs() < 1e-12);
    }
}
