//! Local-DP frequency oracles over grid cells.
//!
//! In the **local model** there is no trusted curator: each user
//! randomizes their own grid cell on-device and only the perturbed
//! report travels. The server aggregates many reports and *debiases*
//! the tallies into unbiased per-cell count estimates. Two classic
//! oracles are provided behind one [`FrequencyOracle`] trait:
//!
//! * [`Grr`] — generalized randomized response: report the true cell
//!   with probability `e^ε / (e^ε + k − 1)`, otherwise one of the
//!   `k − 1` other cells uniformly. One `u32` per report on the wire;
//!   error grows with the domain size `k`.
//! * [`Oue`] — optimized unary encoding (Wang et al., USENIX Security
//!   2017): encode the cell as a one-hot bit vector, keep the 1-bit
//!   with probability `1/2`, flip each 0-bit on with probability
//!   `1 / (e^ε + 1)`. `⌈k/64⌉` packed words per report; per-cell
//!   variance is independent of `k`.
//!
//! Both satisfy ε-LDP per report. Estimates are **unbiased** but
//! noisy — they are not curator-noised counts, and releases built from
//! them should be labelled as local-model estimates (see
//! `dpgrid_core::ReleaseMetadata`). Per-epoch ε composition for
//! repeated collection rounds goes through [`crate::BudgetSchedule`],
//! exactly as for central-model streaming releases.

use rand::{Rng, RngCore};

use crate::{check_epsilon, MechError, Result};

/// One user's perturbed report, as produced client-side by
/// [`FrequencyOracle::perturb`] and folded server-side by
/// [`FrequencyOracle::aggregate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalReport {
    /// A [`Grr`] report: the (possibly lied-about) cell index.
    Cell(u32),
    /// An [`Oue`] report: one bit per cell, packed little-endian into
    /// `⌈k/64⌉` words (cell `j` is bit `j % 64` of word `j / 64`).
    Bits(Vec<u64>),
}

/// A local-DP frequency oracle over a fixed domain of `k` grid cells.
///
/// The protocol is split exactly at the trust boundary:
/// [`perturb`](FrequencyOracle::perturb) runs client-side (the only
/// thing that ever sees a true cell), while
/// [`aggregate`](FrequencyOracle::aggregate) and
/// [`estimate`](FrequencyOracle::estimate) run server-side over
/// perturbed reports only. The accumulator is a flat `u64` tally
/// vector of length `k`, so a collector can fold millions of reports
/// without per-report allocation.
///
/// The trait is object-safe (`perturb` takes `&mut dyn RngCore`), so
/// heterogeneous collectors can hold `Box<dyn FrequencyOracle>`.
pub trait FrequencyOracle {
    /// Domain size `k`: the number of grid cells a report covers.
    fn cells(&self) -> usize;

    /// The per-report privacy parameter ε.
    fn epsilon(&self) -> f64;

    /// Client-side: randomizes the user's true `cell` into a wire-ready
    /// report. Fails typed when `cell` is outside the domain.
    fn perturb(&self, cell: usize, rng: &mut dyn RngCore) -> Result<LocalReport>;

    /// Server-side: folds one report into the flat tally vector `acc`
    /// (length exactly [`cells`](FrequencyOracle::cells)). Fails typed
    /// on a shape mismatch — wrong report kind, out-of-range index,
    /// wrong bit-vector length — without touching `acc`.
    fn aggregate(&self, acc: &mut [u64], report: &LocalReport) -> Result<()>;

    /// Server-side: unbiased per-cell count estimates from the tallies
    /// of `n` aggregated reports. Estimates may be negative or exceed
    /// `n` — that is the unavoidable price of unbiasedness under LDP
    /// noise; callers decide whether to clamp.
    fn estimate(&self, acc: &[u64], n: u64) -> Vec<f64>;

    /// The per-cell sampling variance of one estimate over `n` reports
    /// (worst case over cells), for CLT-style confidence bounds.
    fn estimate_variance(&self, n: u64) -> f64;
}

/// Number of packed `u64` words in one [`Oue`] report over `k` cells.
pub fn oue_words(cells: usize) -> usize {
    cells.div_ceil(64)
}

/// Shared validation: the domain needs at least two cells (a
/// single-cell domain has nothing to hide) and a valid ε.
fn check_domain(cells: usize, epsilon: f64) -> Result<f64> {
    if cells < 2 || cells > u32::MAX as usize {
        return Err(MechError::InvalidDomainSize(cells));
    }
    check_epsilon(epsilon)
}

/// Generalized randomized response over `k` cells.
#[derive(Debug, Clone)]
pub struct Grr {
    cells: usize,
    epsilon: f64,
    /// Probability of reporting the true cell.
    p: f64,
    /// Probability of reporting any one specific *other* cell.
    q: f64,
}

impl Grr {
    /// An oracle over `cells ≥ 2` cells at per-report privacy `epsilon`.
    pub fn new(cells: usize, epsilon: f64) -> Result<Self> {
        let epsilon = check_domain(cells, epsilon)?;
        let e = epsilon.exp();
        let denom = e + cells as f64 - 1.0;
        Ok(Grr {
            cells,
            epsilon,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// The truth-telling probability `p = e^ε / (e^ε + k − 1)`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The per-other-cell lie probability `q = 1 / (e^ε + k − 1)`.
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl FrequencyOracle for Grr {
    fn cells(&self) -> usize {
        self.cells
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, cell: usize, rng: &mut dyn RngCore) -> Result<LocalReport> {
        if cell >= self.cells {
            return Err(MechError::InvalidReport(format!(
                "cell {cell} outside domain of {} cells",
                self.cells
            )));
        }
        if rng.random_bool(self.p) {
            return Ok(LocalReport::Cell(cell as u32));
        }
        // Uniform over the k − 1 *other* cells: draw from k − 1 slots
        // and skip past the true cell.
        let other = rng.random_range(0..self.cells - 1);
        let reported = if other >= cell { other + 1 } else { other };
        Ok(LocalReport::Cell(reported as u32))
    }

    fn aggregate(&self, acc: &mut [u64], report: &LocalReport) -> Result<()> {
        if acc.len() != self.cells {
            return Err(MechError::InvalidReport(format!(
                "accumulator has {} slots for a {}-cell domain",
                acc.len(),
                self.cells
            )));
        }
        match report {
            LocalReport::Cell(c) if (*c as usize) < self.cells => {
                acc[*c as usize] += 1;
                Ok(())
            }
            LocalReport::Cell(c) => Err(MechError::InvalidReport(format!(
                "reported cell {c} outside domain of {} cells",
                self.cells
            ))),
            LocalReport::Bits(_) => Err(MechError::InvalidReport(
                "GRR oracle got a bit-vector (OUE) report".to_string(),
            )),
        }
    }

    fn estimate(&self, acc: &[u64], n: u64) -> Vec<f64> {
        debias(acc, n, self.p, self.q)
    }

    fn estimate_variance(&self, n: u64) -> f64 {
        // Var[(C − nq)/(p − q)] with C ~ Binomial(n, ·); worst case at
        // report probability 1/2, bounded by n/4 successes variance —
        // use the standard q(1−q) bound plus the truth term.
        let n = n as f64;
        n * self.q * (1.0 - self.q) / ((self.p - self.q) * (self.p - self.q)) + n / 4.0
    }
}

/// Optimized unary encoding over `k` cells.
#[derive(Debug, Clone)]
pub struct Oue {
    cells: usize,
    epsilon: f64,
    /// Probability a 0-bit flips on: `q = 1 / (e^ε + 1)`. The 1-bit
    /// survives with the OUE-optimal `p = 1/2`.
    q: f64,
}

impl Oue {
    /// An oracle over `cells ≥ 2` cells at per-report privacy `epsilon`.
    pub fn new(cells: usize, epsilon: f64) -> Result<Self> {
        let epsilon = check_domain(cells, epsilon)?;
        Ok(Oue {
            cells,
            epsilon,
            q: 1.0 / (epsilon.exp() + 1.0),
        })
    }

    /// The 1-bit retention probability (always `1/2` under OUE).
    pub fn p(&self) -> f64 {
        0.5
    }

    /// The 0-bit flip-on probability `q = 1 / (e^ε + 1)`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Packed words per report for this domain.
    pub fn words(&self) -> usize {
        oue_words(self.cells)
    }
}

impl FrequencyOracle for Oue {
    fn cells(&self) -> usize {
        self.cells
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, cell: usize, rng: &mut dyn RngCore) -> Result<LocalReport> {
        if cell >= self.cells {
            return Err(MechError::InvalidReport(format!(
                "cell {cell} outside domain of {} cells",
                self.cells
            )));
        }
        let mut words = vec![0u64; self.words()];
        for j in 0..self.cells {
            let on = if j == cell {
                rng.random_bool(0.5)
            } else {
                rng.random_bool(self.q)
            };
            if on {
                words[j / 64] |= 1u64 << (j % 64);
            }
        }
        Ok(LocalReport::Bits(words))
    }

    fn aggregate(&self, acc: &mut [u64], report: &LocalReport) -> Result<()> {
        if acc.len() != self.cells {
            return Err(MechError::InvalidReport(format!(
                "accumulator has {} slots for a {}-cell domain",
                acc.len(),
                self.cells
            )));
        }
        let LocalReport::Bits(words) = report else {
            return Err(MechError::InvalidReport(
                "OUE oracle got a cell-index (GRR) report".to_string(),
            ));
        };
        if words.len() != self.words() {
            return Err(MechError::InvalidReport(format!(
                "report has {} words, domain of {} cells needs {}",
                words.len(),
                self.cells,
                self.words()
            )));
        }
        // Bits past the domain in the last word must be clear — a
        // hostile report must not smuggle tallies out of range.
        let tail_bits = self.cells % 64;
        if tail_bits != 0 && words[self.words() - 1] >> tail_bits != 0 {
            return Err(MechError::InvalidReport(format!(
                "report sets bits past the {}-cell domain",
                self.cells
            )));
        }
        for (w, &word) in words.iter().enumerate() {
            let base = w * 64;
            let mut bits = word;
            // One tally bump per *set* bit: iterate set bits via
            // trailing_zeros instead of branching on all 64 positions.
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                acc[base + b] += 1;
                bits &= bits - 1;
            }
        }
        Ok(())
    }

    fn estimate(&self, acc: &[u64], n: u64) -> Vec<f64> {
        debias(acc, n, 0.5, self.q)
    }

    fn estimate_variance(&self, n: u64) -> f64 {
        // The standard OUE bound: 4 e^ε / (e^ε − 1)² per report.
        let e = self.epsilon.exp();
        4.0 * (n as f64) * e / ((e - 1.0) * (e - 1.0))
    }
}

/// The shared unbiased inversion: `(tally − n·q) / (p − q)` per cell,
/// routed through the kernel layer's batch affine transform (the
/// element-wise operation order is identical to the open-coded loop,
/// so estimates are byte-stable across kernel backends).
fn debias(acc: &[u64], n: u64, p: f64, q: f64) -> Vec<f64> {
    let n = n as f64;
    let scale = 1.0 / (p - q);
    let mut out = vec![0.0; acc.len()];
    dpgrid_kernels::affine_u64(&mut out, acc, n * q, scale);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulate(oracle: &dyn FrequencyOracle, truth: &[usize], seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = vec![0u64; oracle.cells()];
        for &cell in truth {
            let report = oracle.perturb(cell, &mut rng).unwrap();
            oracle.aggregate(&mut acc, &report).unwrap();
        }
        oracle.estimate(&acc, truth.len() as u64)
    }

    #[test]
    fn constructors_validate() {
        assert!(matches!(
            Grr::new(1, 1.0),
            Err(MechError::InvalidDomainSize(1))
        ));
        assert!(matches!(
            Oue::new(0, 1.0),
            Err(MechError::InvalidDomainSize(0))
        ));
        assert!(Grr::new(4, 0.0).is_err());
        assert!(Oue::new(4, f64::NAN).is_err());
        assert!(Grr::new(4, 1.0).is_ok());
        assert!(Oue::new(4, 1.0).is_ok());
    }

    #[test]
    fn grr_probabilities_satisfy_ldp() {
        let g = Grr::new(16, 1.5).unwrap();
        // p/q = e^ε exactly: the defining likelihood-ratio bound.
        assert!((g.p() / g.q() - 1.5f64.exp()).abs() < 1e-12);
        assert!((g.p() + 15.0 * g.q() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_recover_truth_within_clt_bounds() {
        let k = 16;
        let n = 20_000usize;
        // Everyone in cell 3 or cell 7, split 3:1.
        let truth: Vec<usize> = (0..n).map(|i| if i % 4 == 0 { 7 } else { 3 }).collect();
        for oracle in [
            &Grr::new(k, 1.0).unwrap() as &dyn FrequencyOracle,
            &Oue::new(k, 1.0).unwrap() as &dyn FrequencyOracle,
        ] {
            let est = simulate(oracle, &truth, 42);
            let sigma = oracle.estimate_variance(n as u64).sqrt();
            assert!((est[3] - 0.75 * n as f64).abs() < 5.0 * sigma, "{est:?}");
            assert!((est[7] - 0.25 * n as f64).abs() < 5.0 * sigma);
            assert!(est[0].abs() < 5.0 * sigma);
            // Unbiasedness is exact in expectation; over one run the
            // total still concentrates near n.
            let total: f64 = est.iter().sum();
            assert!((total - n as f64).abs() < 5.0 * sigma * (k as f64).sqrt());
        }
    }

    #[test]
    fn aggregate_rejects_malformed_reports_untouched() {
        let g = Grr::new(8, 1.0).unwrap();
        let o = Oue::new(8, 1.0).unwrap();
        let mut acc = vec![0u64; 8];
        assert!(g.aggregate(&mut acc, &LocalReport::Cell(8)).is_err());
        assert!(g.aggregate(&mut acc, &LocalReport::Bits(vec![0])).is_err());
        assert!(o.aggregate(&mut acc, &LocalReport::Cell(0)).is_err());
        assert!(o
            .aggregate(&mut acc, &LocalReport::Bits(vec![0, 0]))
            .is_err());
        // Bits past an 8-cell domain are hostile, not ignorable.
        assert!(o
            .aggregate(&mut acc, &LocalReport::Bits(vec![1 << 8]))
            .is_err());
        let mut short = vec![0u64; 4];
        assert!(g.aggregate(&mut short, &LocalReport::Cell(0)).is_err());
        assert_eq!(acc, vec![0u64; 8]);
    }

    #[test]
    fn perturb_rejects_out_of_domain_cells() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Grr::new(8, 1.0).unwrap().perturb(8, &mut rng).is_err());
        assert!(Oue::new(8, 1.0).unwrap().perturb(99, &mut rng).is_err());
    }

    #[test]
    fn oue_reports_have_clean_tails() {
        let o = Oue::new(70, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for cell in [0usize, 63, 64, 69] {
            let LocalReport::Bits(words) = o.perturb(cell, &mut rng).unwrap() else {
                panic!("OUE must produce bit vectors");
            };
            assert_eq!(words.len(), 2);
            assert_eq!(words[1] >> 6, 0, "tail bits past cell 69 must be clear");
        }
    }

    #[test]
    fn exact_expected_tallies_invert_to_exact_truth() {
        // Feed the estimator the *expected* tallies for a known truth
        // vector; the debiasing must invert them exactly.
        let k = 5;
        let n = 1000u64;
        let truth = [400u64, 300, 200, 100, 0];
        let g = Grr::new(k, 1.2).unwrap();
        let expected: Vec<u64> = truth
            .iter()
            .map(|&t| {
                let e = t as f64 * g.p() + (n - t) as f64 * g.q();
                e.round() as u64
            })
            .collect();
        let est = g.estimate(&expected, n);
        for (e, t) in est.iter().zip(truth.iter()) {
            // Rounding the expected tally to an integer costs < 1
            // tally unit, amplified by 1/(p−q).
            assert!((e - *t as f64).abs() < 1.0 / (g.p() - g.q()));
        }
    }
}
