//! KD-tree baselines: `KD-standard` and `KD-hybrid` (Cormode et al.,
//! "Differentially private spatial decompositions", ICDE 2012).
//!
//! Both build a spatial decomposition tree over a fine *base frequency
//! matrix* of the dataset and release noisy counts at every level:
//!
//! * **KD-standard** (`Kst`) splits every node along the (alternating)
//!   axis at a privately selected near-median boundary, chosen by the
//!   exponential mechanism with utility `−|rank(split) − n/2|`;
//! * **KD-hybrid** (`Khy`) uses midpoint quadtree splits (which consume
//!   no budget) for the first `quad_levels` levels and noisy-median KD
//!   splits below, plus geometric budget allocation across levels — the
//!   configuration \[3\] found to perform best.
//!
//! Both apply the generic constrained inference of
//! [`crate::inference::CiTree`] and answer queries by tree descent: fully
//! covered nodes contribute their consistent count, partially covered
//! leaves contribute proportionally to the overlapped area.
//!
//! The paper's defaults that \[3\] does not print are chosen as follows
//! (all configurable through [`KdConfig`]): tree height
//! `min(16, max(4, ⌈log₂ N⌉))`, base resolution 256, 30 % of the budget
//! on medians (standard; hybrid spends it only when KD levels exist),
//! geometric count allocation with ratio `2^(1/3)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{Build, DenseGrid, Domain, GeoDataset, Rect, SummedAreaTable, Synopsis};
use dpgrid_mech::{ExponentialMechanism, LaplaceMechanism};

use crate::hierarchy::Allocation;
use crate::inference::CiTree;
use crate::{BaselineError, Result};

/// Configuration shared by [`KdStandard`] and [`KdHybrid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KdConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Tree height (number of split levels). `None` derives it from the
    /// target leaf granularity `N·ε/10` (the number of cells the
    /// optimal-granularity analysis calls for), clamped to `[4, 16]` —
    /// matching the paper's remark that trees of ~16 levels are common
    /// for 1 M points at ε = 1.
    pub height: Option<usize>,
    /// For the hybrid: how many top levels use budget-free midpoint
    /// quadtree splits. `None` = half the base matrix's axis halvings,
    /// leaving genuine KD levels below.
    pub quad_levels: Option<usize>,
    /// Fraction of ε reserved for private median selection, split evenly
    /// among the KD levels (ignored when there are none).
    pub median_fraction: f64,
    /// Resolution of the base frequency matrix the tree is built over.
    pub base_resolution: usize,
    /// Budget division among the `height + 1` count levels.
    pub count_allocation: Allocation,
    /// Whether to run constrained inference (on by default; \[3\] applies
    /// it in all reported configurations).
    pub constrained_inference: bool,
    /// Adaptive stopping (\[3\]'s data-dependent trees): a node is not
    /// split further when its noisy count is below `stop_factor` times
    /// the noise standard deviation of its level (splitting such a node
    /// would only produce pure-noise children). `0.0` disables stopping.
    pub stop_factor: f64,
}

impl KdConfig {
    /// Default configuration at the given budget.
    pub fn new(epsilon: f64) -> Self {
        KdConfig {
            epsilon,
            height: None,
            quad_levels: None,
            median_fraction: 0.3,
            base_resolution: 256,
            count_allocation: Allocation::Geometric {
                ratio: 2f64.powf(1.0 / 3.0),
            },
            constrained_inference: true,
            stop_factor: 3.0,
        }
    }

    /// Overrides the tree height.
    pub fn with_height(mut self, height: usize) -> Self {
        self.height = Some(height);
        self
    }

    /// Overrides the number of quadtree levels (hybrid only).
    pub fn with_quad_levels(mut self, quad_levels: usize) -> Self {
        self.quad_levels = Some(quad_levels);
        self
    }

    fn validate(&self) -> Result<()> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if !(0.0..1.0).contains(&self.median_fraction) {
            return Err(BaselineError::InvalidConfig(format!(
                "median_fraction must be in [0, 1), got {}",
                self.median_fraction
            )));
        }
        if self.base_resolution < 2 {
            return Err(BaselineError::InvalidConfig(
                "base_resolution must be ≥ 2".into(),
            ));
        }
        if self.height == Some(0) {
            return Err(BaselineError::InvalidConfig("height must be ≥ 1".into()));
        }
        if !self.stop_factor.is_finite() || self.stop_factor < 0.0 {
            return Err(BaselineError::InvalidConfig(format!(
                "stop_factor must be non-negative, got {}",
                self.stop_factor
            )));
        }
        Ok(())
    }

    fn resolved_height(&self, n: usize) -> usize {
        self.height.unwrap_or_else(|| {
            // Target the optimal-granularity leaf count N·ε/10 (the same
            // quantity Guideline 1 optimises): a binary tree needs
            // log₂(N·ε/10) levels to reach that many leaves. Without
            // this, a fixed depth wastes budget on pure-noise levels at
            // small ε.
            let target_leaves = (self.epsilon * n.max(2) as f64 / 10.0).max(2.0);
            let lg = target_leaves.log2().ceil() as usize;
            lg.clamp(4, 16)
        })
    }

    /// Levels actually reachable over a `res × res` base matrix: binary
    /// KD splits can halve each axis `log₂ res` times (alternating), a
    /// quadtree level consumes one halving of *both* axes. Capping the
    /// height here keeps the per-level budget allocation from assigning
    /// ε to levels no node can reach (which would silently waste most
    /// of the budget under geometric allocation).
    fn effective_height(&self, n: usize, quad: Option<usize>) -> (usize, usize) {
        let height = self.resolved_height(n);
        let axis_halvings = (self.base_resolution as f64).log2().floor() as usize;
        match quad {
            None => (height.min(2 * axis_halvings), 0),
            Some(q) => {
                let q = q.min(axis_halvings).min(height);
                let reachable = q + 2 * (axis_halvings - q);
                (height.min(reachable), q)
            }
        }
    }
}

/// One node of the released KD decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KdNode {
    /// Region in base-grid cell coordinates `[c0, c1) × [r0, r1)`.
    cells: (usize, usize, usize, usize),
    /// Region in domain coordinates.
    rect: Rect,
    /// Depth in the tree (root = 0).
    depth: usize,
    /// Children indices (empty for leaves).
    children: Vec<usize>,
    /// Consistent (post-CI) count estimate.
    estimate: f64,
}

/// A released KD decomposition: the output of [`KdStandard::build`] or
/// [`KdHybrid::build`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTreeSynopsis {
    domain: Domain,
    epsilon: f64,
    nodes: Vec<KdNode>,
    height: usize,
}

/// Marker type building KD-standard trees (the paper's `Kst`).
pub struct KdStandard;

/// Marker type building KD-hybrid trees (the paper's `Khy`).
pub struct KdHybrid;

#[derive(Clone, Copy, PartialEq)]
enum SplitStrategy {
    /// Noisy-median binary splits at every level.
    Standard,
    /// Midpoint quadtree for the first `quad` levels, KD below.
    Hybrid { quad: usize },
}

/// Strategy-complete configuration for building a [`KdTreeSynopsis`]
/// through the uniform [`Build`] trait: the shared [`KdConfig`] plus
/// which split strategy to run. The [`KdStandard`] / [`KdHybrid`]
/// marker entry points pick the strategy implicitly and delegate here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KdTreeConfig {
    /// Shared tree parameters (budget, height, allocation, …).
    pub params: KdConfig,
    /// `true` runs midpoint-quadtree top levels with KD splits below
    /// (\[3\]'s best configuration); `false` runs noisy-median KD
    /// splits at every level.
    pub hybrid: bool,
}

impl KdTreeConfig {
    /// KD-standard configuration (the paper's `Kst`).
    pub fn standard(params: KdConfig) -> Self {
        KdTreeConfig {
            params,
            hybrid: false,
        }
    }

    /// KD-hybrid configuration (the paper's `Khy`).
    pub fn hybrid(params: KdConfig) -> Self {
        KdTreeConfig {
            params,
            hybrid: true,
        }
    }
}

impl Build for KdTreeSynopsis {
    type Config = KdTreeConfig;

    fn build(dataset: &GeoDataset, config: &KdTreeConfig, rng: &mut impl Rng) -> Result<Self> {
        let params = &config.params;
        let strategy = if config.hybrid {
            // Default quadtree depth: half the axis halvings of the
            // base matrix, leaving genuine KD levels below (e.g. 4 quad
            // + up to 8 KD levels over a 256 matrix).
            let height = params.resolved_height(dataset.len());
            let axis_halvings = (params.base_resolution.max(2) as f64).log2().floor() as usize;
            let quad = params
                .quad_levels
                .unwrap_or((axis_halvings / 2).max(1))
                .min(height);
            SplitStrategy::Hybrid { quad }
        } else {
            SplitStrategy::Standard
        };
        build_tree(dataset, params, strategy, rng)
    }
}

impl KdStandard {
    /// Builds a KD-standard synopsis over `dataset`. Thin delegation to
    /// [`KdTreeSynopsis`]'s [`Build`] implementation.
    pub fn build(
        dataset: &GeoDataset,
        config: &KdConfig,
        rng: &mut impl Rng,
    ) -> Result<KdTreeSynopsis> {
        <KdTreeSynopsis as Build>::build(dataset, &KdTreeConfig::standard(*config), rng)
    }
}

impl KdHybrid {
    /// Builds a KD-hybrid synopsis over `dataset`. Thin delegation to
    /// [`KdTreeSynopsis`]'s [`Build`] implementation.
    pub fn build(
        dataset: &GeoDataset,
        config: &KdConfig,
        rng: &mut impl Rng,
    ) -> Result<KdTreeSynopsis> {
        <KdTreeSynopsis as Build>::build(dataset, &KdTreeConfig::hybrid(*config), rng)
    }
}

fn build_tree(
    dataset: &GeoDataset,
    config: &KdConfig,
    strategy: SplitStrategy,
    rng: &mut impl Rng,
) -> Result<KdTreeSynopsis> {
    config.validate()?;
    let quad_opt = match strategy {
        SplitStrategy::Standard => None,
        SplitStrategy::Hybrid { quad } => Some(quad),
    };
    let (height, quad) = config.effective_height(dataset.len(), quad_opt);
    let strategy = match strategy {
        SplitStrategy::Standard => SplitStrategy::Standard,
        SplitStrategy::Hybrid { .. } => SplitStrategy::Hybrid { quad },
    };
    let res = config.base_resolution;
    let domain = *dataset.domain();

    // True counts on the base matrix, with prefix sums for O(1) range
    // counts and cumulative scans for median utilities.
    let base = DenseGrid::count(dataset, res, res)?;
    let sat = base.sat();

    // Budget: medians (KD levels only) + counts (all levels).
    let kd_levels = match strategy {
        SplitStrategy::Standard => height,
        SplitStrategy::Hybrid { quad } => height.saturating_sub(quad),
    };
    let (eps_median_per_level, eps_counts) = if kd_levels > 0 && config.median_fraction > 0.0 {
        let med_total = config.epsilon * config.median_fraction;
        (med_total / kd_levels as f64, config.epsilon - med_total)
    } else {
        (0.0, config.epsilon)
    };
    // `height + 1` count levels: root .. leaves.
    let count_epsilons = config.count_allocation.resolve(eps_counts, height + 1)?;
    let mechs: Vec<LaplaceMechanism> = count_epsilons
        .iter()
        .map(|&e| LaplaceMechanism::for_count(e))
        .collect::<dpgrid_mech::Result<_>>()?;

    // Construction with adaptive stopping: each node's noisy count is
    // drawn when the node is created (its level's ε), and a node whose
    // noisy count is smaller than `stop_factor` child-level noise
    // standard deviations is not split — its children would be pure
    // noise. Each depth is a partition of the domain, so noising a whole
    // level consumes that level's ε once (parallel composition);
    // stopping decisions are post-processing of already-noised counts.
    let mut nodes: Vec<KdNode> = Vec::new();
    let mut noisy: Vec<f64> = Vec::new();
    let root_cells = (0usize, 0usize, res, res);
    nodes.push(KdNode {
        cells: root_cells,
        rect: *domain.rect(),
        depth: 0,
        children: Vec::new(),
        estimate: 0.0,
    });
    noisy.push(mechs[0].randomize(sat.total(), rng));
    let mut stack = vec![0usize];
    while let Some(id) = stack.pop() {
        let (c0, r0, c1, r1) = nodes[id].cells;
        let depth = nodes[id].depth;
        if depth >= height || (c1 - c0 <= 1 && r1 - r0 <= 1) {
            continue; // leaf
        }
        if config.stop_factor > 0.0 {
            let child_noise_std = mechs[depth + 1].noise_std_dev();
            if noisy[id] < config.stop_factor * child_noise_std {
                continue; // leaf: too sparse to be worth splitting
            }
        }
        let quad_split = matches!(strategy, SplitStrategy::Hybrid { quad } if depth < quad);
        let child_cells: Vec<(usize, usize, usize, usize)> =
            if quad_split && c1 - c0 >= 2 && r1 - r0 >= 2 {
                // Midpoint quadtree split: 4 children, no budget consumed.
                let cm = (c0 + c1) / 2;
                let rm = (r0 + r1) / 2;
                vec![
                    (c0, r0, cm, rm),
                    (cm, r0, c1, rm),
                    (c0, rm, cm, r1),
                    (cm, rm, c1, r1),
                ]
            } else {
                // Binary KD split along the alternating axis.
                let split_x = if c1 - c0 <= 1 {
                    false
                } else if r1 - r0 <= 1 {
                    true
                } else {
                    depth.is_multiple_of(2)
                };
                let split =
                    choose_split(&sat, (c0, r0, c1, r1), split_x, eps_median_per_level, rng)?;
                if split_x {
                    vec![(c0, r0, split, r1), (split, r0, c1, r1)]
                } else {
                    vec![(c0, r0, c1, split), (c0, split, c1, r1)]
                }
            };
        let mut child_ids = Vec::with_capacity(child_cells.len());
        for cc in child_cells {
            let rect = cells_to_rect(&domain, res, cc);
            let child_id = nodes.len();
            nodes.push(KdNode {
                cells: cc,
                rect,
                depth: depth + 1,
                children: Vec::new(),
                estimate: 0.0,
            });
            let truth = sat.sum(cc.0, cc.1, cc.2, cc.3);
            noisy.push(mechs[depth + 1].randomize(truth, rng));
            child_ids.push(child_id);
            stack.push(child_id);
        }
        nodes[id].children = child_ids;
    }

    // Constrained inference (or raw counts when disabled).
    if config.constrained_inference {
        let mut tree = CiTree::with_capacity(nodes.len());
        for (node, &y) in nodes.iter().zip(&noisy) {
            let eps = count_epsilons[node.depth];
            tree.add_node(y, 2.0 / (eps * eps))?;
        }
        for (id, node) in nodes.iter().enumerate() {
            if !node.children.is_empty() {
                tree.set_children(id, node.children.clone())?;
            }
        }
        let consistent = tree.run(&[0])?;
        for (node, u) in nodes.iter_mut().zip(consistent) {
            node.estimate = u;
        }
    } else {
        for (node, y) in nodes.iter_mut().zip(noisy) {
            node.estimate = y;
        }
    }

    Ok(KdTreeSynopsis {
        domain,
        epsilon: config.epsilon,
        nodes,
        height,
    })
}

/// Chooses a split boundary inside `(lo, hi)` of the region along the
/// given axis. With a positive median budget the exponential mechanism
/// selects near-median boundaries; otherwise the true median boundary is
/// approximated by the midpoint (budget-free but data-independent).
fn choose_split(
    sat: &SummedAreaTable,
    cells: (usize, usize, usize, usize),
    split_x: bool,
    eps_median: f64,
    rng: &mut impl Rng,
) -> Result<usize> {
    let (c0, r0, c1, r1) = cells;
    let (lo, hi) = if split_x { (c0, c1) } else { (r0, r1) };
    debug_assert!(hi - lo >= 2);
    let total = sat.sum(c0, r0, c1, r1);
    if eps_median <= 0.0 || total <= 0.0 {
        return Ok((lo + hi) / 2);
    }
    // Utility of boundary s: −|cum(s) − total/2| (sensitivity 1).
    let mut scores = Vec::with_capacity(hi - lo - 1);
    for s in lo + 1..hi {
        let cum = if split_x {
            sat.sum(c0, r0, s, r1)
        } else {
            sat.sum(c0, r0, c1, s)
        };
        scores.push(-(cum - total / 2.0).abs());
    }
    let mech = ExponentialMechanism::new(eps_median, 1.0)?;
    let idx = mech.select(&scores, rng)?;
    Ok(lo + 1 + idx)
}

fn cells_to_rect(domain: &Domain, res: usize, cells: (usize, usize, usize, usize)) -> Rect {
    let d = domain.rect();
    let fx = |i: usize| d.x0() + d.width() * (i as f64) / (res as f64);
    let fy = |j: usize| d.y0() + d.height() * (j as f64) / (res as f64);
    Rect::new(fx(cells.0), fy(cells.1), fx(cells.2), fy(cells.3)).expect("cell ranges are ordered")
}

impl KdTreeSynopsis {
    /// Number of nodes in the released tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Tree height used during construction.
    pub fn height(&self) -> usize {
        self.height
    }

    fn answer_rec(&self, id: usize, query: &Rect) -> f64 {
        let node = &self.nodes[id];
        let Some(overlap) = node.rect.intersection(query) else {
            return 0.0;
        };
        if query.contains_rect(&node.rect) {
            return node.estimate;
        }
        if node.children.is_empty() {
            let frac = overlap.area() / node.rect.area();
            return node.estimate * frac;
        }
        node.children
            .iter()
            .map(|&c| self.answer_rec(c, query))
            .sum()
    }
}

impl Synopsis for KdTreeSynopsis {
    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn answer(&self, query: &Rect) -> f64 {
        let Some(q) = self.domain.clip(query) else {
            return 0.0;
        };
        self.answer_rec(0, &q)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty())
            .map(|n| (n.rect, n.estimate))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::{generators, Point};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset(n: usize, seed: u64) -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 16.0, 16.0).unwrap();
        generators::uniform(domain, n, &mut rng(seed))
    }

    fn small_config(eps: f64) -> KdConfig {
        let mut c = KdConfig::new(eps);
        c.base_resolution = 32;
        c.height = Some(6);
        c
    }

    #[test]
    fn validates_config() {
        let ds = dataset(100, 0);
        for bad in [
            KdConfig::new(0.0),
            {
                let mut c = KdConfig::new(1.0);
                c.median_fraction = 1.0;
                c
            },
            {
                let mut c = KdConfig::new(1.0);
                c.base_resolution = 1;
                c
            },
            KdConfig::new(1.0).with_height(0),
        ] {
            assert!(KdStandard::build(&ds, &bad, &mut rng(1)).is_err());
        }
    }

    #[test]
    fn leaves_partition_domain() {
        let ds = dataset(2_000, 2);
        for build in [
            KdStandard::build(&ds, &small_config(1.0), &mut rng(3)).unwrap(),
            KdHybrid::build(&ds, &small_config(1.0), &mut rng(4)).unwrap(),
        ] {
            let cells = build.cells();
            let area: f64 = cells.iter().map(|(r, _)| r.area()).sum();
            assert!(
                (area - 256.0).abs() < 1e-6,
                "leaf areas sum to {area}, expected 256"
            );
            // No pairwise overlap (spot-check a few pairs).
            for i in (0..cells.len()).step_by(7) {
                for j in (i + 1..cells.len()).step_by(11) {
                    assert!(
                        !cells[i].0.intersects(&cells[j].0),
                        "leaves {i} and {j} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_shape_standard_binary_hybrid_quad() {
        let ds = dataset(1_000, 5);
        // Adaptive stopping makes the tree shape depend on the noise
        // draws; disable it so the shape assertions are deterministic.
        let mut cfg = small_config(1.0);
        cfg.stop_factor = 0.0;
        let st = KdStandard::build(&ds, &cfg, &mut rng(6)).unwrap();
        // Root of a standard tree has 2 children.
        assert_eq!(st.nodes[0].children.len(), 2);
        let hy = KdHybrid::build(&ds, &cfg, &mut rng(7)).unwrap();
        // Root of a hybrid tree has 4 children (quadtree level).
        assert_eq!(hy.nodes[0].children.len(), 4);
        assert!(hy.node_count() > st.node_count());
    }

    #[test]
    fn consistency_after_ci() {
        let ds = dataset(3_000, 8);
        let t = KdHybrid::build(&ds, &small_config(0.5), &mut rng(9)).unwrap();
        for (id, node) in t.nodes.iter().enumerate() {
            if !node.children.is_empty() {
                let child_sum: f64 = node.children.iter().map(|&c| t.nodes[c].estimate).sum();
                assert!(
                    (node.estimate - child_sum).abs() < 1e-6,
                    "node {id}: {} vs children {child_sum}",
                    node.estimate
                );
            }
        }
    }

    #[test]
    fn huge_epsilon_splits_near_median_and_answers_exactly() {
        // Two clusters; with a huge budget the root split should fall
        // between them and answers should be near-exact.
        let domain = Domain::from_corners(0.0, 0.0, 16.0, 16.0).unwrap();
        let mut points = Vec::new();
        let mut r = rng(10);
        for _ in 0..2_000 {
            points.push(Point::new(
                rand::Rng::random_range(&mut r, 0.0..2.0),
                rand::Rng::random_range(&mut r, 0.0..16.0),
            ));
        }
        for _ in 0..2_000 {
            points.push(Point::new(
                rand::Rng::random_range(&mut r, 14.0..16.0),
                rand::Rng::random_range(&mut r, 0.0..16.0),
            ));
        }
        let ds = GeoDataset::from_points(points, domain).unwrap();
        let t = KdStandard::build(&ds, &small_config(1e9), &mut rng(11)).unwrap();
        // Root splits on x (depth 0); the chosen boundary should sit in
        // the empty middle band (cells 4..28 of 32 → x in [2, 14]).
        let root_children = &t.nodes[0].children;
        let left = &t.nodes[root_children[0]];
        let boundary = left.rect.x1();
        assert!(
            (2.0..=14.0).contains(&boundary),
            "median boundary at {boundary}"
        );
        // Even with no noise, KD leaves spanning the empty middle band
        // keep a non-uniformity error on queries cutting through them;
        // the answer must be close but not exact.
        let q = Rect::new(0.0, 0.0, 8.0, 16.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        assert!(
            (t.answer(&q) - truth).abs() < truth * 0.15,
            "answer {} truth {truth}",
            t.answer(&q)
        );
        // A query aligned with the cluster (no partial leaves with mass)
        // is answered near-exactly.
        let aligned = Rect::new(0.0, 0.0, 16.0, 16.0).unwrap();
        assert!((t.answer(&aligned) - 4_000.0).abs() < 1.0);
    }

    #[test]
    fn default_height_scales_with_n_and_epsilon() {
        // Height targets ⌈log₂(N·ε/10)⌉ leaves, clamped to [4, 16].
        let cfg = KdConfig::new(1.0);
        assert_eq!(cfg.resolved_height(1_000_000), 17usize.clamp(4, 16)); // = 16
        assert_eq!(cfg.resolved_height(9_000), 10); // ⌈log₂ 900⌉
        assert_eq!(cfg.resolved_height(2), 4); // clamped up
                                               // Smaller ε → shallower tree (less budget to spread).
        let tight = KdConfig::new(0.1);
        assert_eq!(tight.resolved_height(1_000_000), 14); // ⌈log₂ 10⁴⌉
        assert!(tight.resolved_height(1_000_000) < cfg.resolved_height(1_000_000));
        // Explicit override wins.
        assert_eq!(
            KdConfig::new(0.1).with_height(6).resolved_height(1_000_000),
            6
        );
    }

    #[test]
    fn stop_factor_prunes_sparse_regions() {
        // Sparse data at small ε: with stopping enabled the tree must
        // prune noise-dominated regions and end up smaller.
        let ds = dataset(2_000, 30);
        let mut with_stop = small_config(0.2);
        with_stop.stop_factor = 3.0;
        let mut no_stop = with_stop;
        no_stop.stop_factor = 0.0;
        let a = KdHybrid::build(&ds, &with_stop, &mut rng(31)).unwrap();
        let b = KdHybrid::build(&ds, &no_stop, &mut rng(31)).unwrap();
        assert!(
            a.node_count() < b.node_count(),
            "stopping {} vs full {}",
            a.node_count(),
            b.node_count()
        );
        // Invalid factor rejected.
        let mut bad = small_config(1.0);
        bad.stop_factor = -1.0;
        assert!(KdHybrid::build(&ds, &bad, &mut rng(32)).is_err());
    }

    #[test]
    fn answers_zero_off_domain() {
        let ds = dataset(500, 13);
        let t = KdHybrid::build(&ds, &small_config(1.0), &mut rng(14)).unwrap();
        let far = Rect::new(100.0, 100.0, 110.0, 110.0).unwrap();
        assert_eq!(t.answer(&far), 0.0);
    }

    #[test]
    fn ci_toggle_changes_estimates() {
        let ds = dataset(1_000, 15);
        let mut cfg = small_config(0.5);
        let with_ci = KdHybrid::build(&ds, &cfg, &mut rng(16)).unwrap();
        cfg.constrained_inference = false;
        let without = KdHybrid::build(&ds, &cfg, &mut rng(16)).unwrap();
        // Same tree shape (same RNG consumption order), different
        // estimates.
        assert_eq!(with_ci.node_count(), without.node_count());
        let q = Rect::new(1.0, 1.0, 9.0, 9.0).unwrap();
        assert_ne!(with_ci.answer(&q), without.answer(&q));
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = dataset(800, 17);
        let a = KdHybrid::build(&ds, &small_config(1.0), &mut rng(18)).unwrap();
        let b = KdHybrid::build(&ds, &small_config(1.0), &mut rng(18)).unwrap();
        let q = Rect::new(2.0, 3.0, 11.0, 13.0).unwrap();
        assert_eq!(a.answer(&q), b.answer(&q));
    }

    #[test]
    fn zero_median_fraction_uses_midpoints() {
        let ds = dataset(1_000, 19);
        let mut cfg = small_config(1.0);
        cfg.median_fraction = 0.0;
        let t = KdStandard::build(&ds, &cfg, &mut rng(20)).unwrap();
        // Root split at midpoint of 32 cells → x = 8.0.
        let left = &t.nodes[t.nodes[0].children[0]];
        assert!((left.rect.x1() - 8.0).abs() < 1e-9);
    }
}
