//! Statistical verification of the privacy accounting: released noise
//! levels must match what the claimed ε implies.

use dpgrid::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn empty_dataset(domain: Domain) -> GeoDataset {
    GeoDataset::from_points(vec![], domain).unwrap()
}

/// Empirical standard deviation of a sample.
fn std_dev(xs: &[f64]) -> f64 {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[test]
fn ug_cell_noise_matches_epsilon() {
    // On an empty dataset every UG cell is a pure Lap(1/ε) draw:
    // std = √2/ε.
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    for eps in [0.1, 1.0] {
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(eps, 32), &mut rng(1)).unwrap();
        let std = std_dev(ug.grid().values());
        let expect = std::f64::consts::SQRT_2 / eps;
        assert!(
            (std - expect).abs() < expect * 0.1,
            "ε={eps}: cell noise std {std}, expected {expect}"
        );
    }
}

#[test]
fn ag_level_budgets_split_by_alpha() {
    // AG's first-level observations carry Lap(1/(αε)) noise. With the
    // leaves' (1−α)ε and constrained inference, the adjusted totals are
    // *less* noisy than either observation alone — we check both the
    // direction and the rough magnitude.
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    let eps = 1.0;
    let alpha = 0.5;
    let mut totals = Vec::new();
    let mut cfg = AgConfig::guideline(eps).with_alpha(alpha).with_m1(4);
    cfg.m2_cap = 4;
    for seed in 0..200 {
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(seed)).unwrap();
        for info in ag.cells_info() {
            totals.push(info.adjusted_total);
        }
    }
    let std = std_dev(&totals);
    // Upper bound: the raw level-1 noise std √2/(αε) = 2.83.
    let raw_l1 = std::f64::consts::SQRT_2 / (alpha * eps);
    assert!(
        std < raw_l1,
        "CI-adjusted totals (std {std}) should beat raw level-1 noise ({raw_l1})"
    );
    // And the totals are unbiased around 0.
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    assert!(mean.abs() < 0.2, "mean {mean}");
}

#[test]
fn noisy_n_consumes_budget() {
    // With NEstimate::Noisy the cells must get strictly less than ε:
    // their noise is larger than the exact-N variant's.
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    let eps = 1.0;
    let mut exact_noise = Vec::new();
    let mut noisy_noise = Vec::new();
    for seed in 0..100 {
        let e = UniformGrid::build(&ds, &UgConfig::fixed(eps, 8), &mut rng(seed)).unwrap();
        exact_noise.extend_from_slice(e.grid().values());
        let cfg = UgConfig::fixed(eps, 8).with_noisy_n(0.5);
        let n = UniformGrid::build(&ds, &cfg, &mut rng(seed + 1_000)).unwrap();
        noisy_noise.extend_from_slice(n.grid().values());
    }
    let s_exact = std_dev(&exact_noise);
    let s_noisy = std_dev(&noisy_noise);
    // Half the budget went to N → cell noise doubles.
    assert!(
        s_noisy > s_exact * 1.5,
        "exact-N noise {s_exact}, noisy-N noise {s_noisy}"
    );
}

#[test]
fn composition_rejects_overdraft() {
    use dpgrid::mech::PrivacyBudget;
    let mut b = PrivacyBudget::new(1.0).unwrap();
    b.spend(0.5).unwrap();
    b.spend(0.5).unwrap();
    assert!(b.spend(0.1).is_err());
    assert!(b.is_exhausted());
}

#[test]
fn uniform_schedule_epoch_splits_sum_to_the_total() {
    // A uniform schedule over a fixed horizon hands every epoch an
    // equal share, the shares sum to exactly the configured total,
    // and the horizon is hard: epoch `n` is a typed refusal.
    use dpgrid::mech::MechError;
    let total = 1.0;
    let epochs: u64 = 8;
    let mut schedule = BudgetSchedule::uniform(total, epochs as usize).unwrap();
    let mut sum = 0.0;
    for epoch in 0..epochs {
        let share = schedule.epsilon_for(epoch).unwrap();
        assert!(
            (share - total / epochs as f64).abs() < 1e-12,
            "epoch {epoch} share {share}"
        );
        assert_eq!(schedule.spend_epoch(epoch).unwrap(), share);
        sum += share;
    }
    assert!((sum - total).abs() < 1e-12, "shares sum to {sum}");
    assert!((schedule.spent() - total).abs() < 1e-12);
    assert!(schedule.remaining() < 1e-12);
    assert!(matches!(
        schedule.spend_epoch(epochs),
        Err(MechError::BudgetExhausted { .. })
    ));
    // Charged-once: no epoch can be billed twice.
    assert!(matches!(
        schedule.spend_epoch(3),
        Err(MechError::EpochAlreadyCharged { epoch: 3 })
    ));
}

#[test]
fn decay_schedule_epoch_splits_sum_to_the_total() {
    // The exponential-decay schedule never exceeds its total on any
    // prefix, and the infinite-horizon sum converges to it: the first
    // k shares sum to total · (1 − r^k).
    let total = 2.0;
    let decay = 0.7;
    let mut schedule = BudgetSchedule::exponential_decay(total, decay).unwrap();
    let mut sum = 0.0;
    for epoch in 0..200u64 {
        sum += schedule.spend_epoch(epoch).unwrap();
        assert!(
            sum <= total + 1e-12,
            "prefix through epoch {epoch} overspends: {sum}"
        );
    }
    let expected = total * (1.0 - decay.powi(200));
    assert!(
        (sum - expected).abs() < 1e-9,
        "200-epoch prefix {sum}, expected {expected}"
    );
    assert!((sum - total).abs() < 1e-9, "200 epochs ≈ the total");
    // Shares decay geometrically: ε_{i+1} = r · ε_i.
    let e0 = BudgetSchedule::exponential_decay(total, decay)
        .unwrap()
        .epsilon_for(0)
        .unwrap();
    let e1 = BudgetSchedule::exponential_decay(total, decay)
        .unwrap()
        .epsilon_for(1)
        .unwrap();
    assert!((e1 / e0 - decay).abs() < 1e-12);
}

#[test]
fn streamed_releases_carry_their_scheduled_epoch_shares() {
    // End-to-end accounting: releases published by the ingestor carry
    // exactly the ε the schedule assigned their epoch, and the ledger
    // equals the sum of published ε — under both policies.
    use dpgrid::core::parse_epoch_key;
    use dpgrid::stream::StreamIngestor;
    use std::collections::HashMap;

    let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
    let layout = dpgrid::core::EpochLayout::new(0.0, 60.0).unwrap();
    let schedules = [
        BudgetSchedule::uniform(1.0, 10).unwrap(),
        BudgetSchedule::exponential_decay(1.0, 0.5).unwrap(),
    ];
    for schedule in schedules {
        let mut ingestor = StreamIngestor::new("acct", domain, layout, schedule)
            .unwrap()
            .with_seed(7);
        let mut sink: HashMap<String, Release> = HashMap::new();
        for epoch in 0..6u64 {
            for i in 0..40u64 {
                let t = (epoch * 60 + (i % 60)) as f64;
                let p = Point::new(0.1 + (i as f64 % 9.0), 0.2 + ((i / 9) as f64 % 9.0));
                ingestor.push(p, t, &mut sink).unwrap();
            }
        }
        ingestor.flush(&mut sink).unwrap();

        let reference = ingestor.schedule();
        let mut published_sum = 0.0;
        assert_eq!(sink.len(), 6);
        for (key, release) in &sink {
            let (_, range) = parse_epoch_key(key).expect("epoch key");
            let assigned = reference.epsilon_for(range.start).unwrap();
            assert!(
                (release.epsilon() - assigned).abs() < 1e-12,
                "{key}: released ε {} vs scheduled {assigned}",
                release.epsilon()
            );
            published_sum += release.epsilon();
        }
        assert!(
            (reference.spent() - published_sum).abs() < 1e-12,
            "ledger {} vs published {published_sum}",
            reference.spent()
        );
        assert!(reference.spent() <= reference.total() + 1e-12);
    }
}

/// One sealed LDP epoch: `users` reports perturbed on-device with
/// `oracle`, collected, sealed, and the released per-cell estimates
/// returned. Every user's true cell is `cell`.
fn sealed_ldp_estimates(
    oracle: &str,
    users: u32,
    cell: u32,
    seed: u64,
) -> (Vec<f64>, dpgrid::ldp::SealSummary) {
    use dpgrid::ldp::{CollectorConfig, ReportCollector};
    let cells = 64u32;
    let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
    let schedule = BudgetSchedule::uniform(2.0, 2).unwrap();
    let mut collector =
        ReportCollector::new(CollectorConfig::new("ldp", domain, 8, 8, schedule).unwrap()).unwrap();
    let eps = collector.open_epsilon().unwrap();
    let mut r = rng(seed);
    let payload = match oracle {
        "grr" => {
            let grr = Grr::new(cells as usize, eps).unwrap();
            ReportPayload::Grr(
                (0..users)
                    .map(|_| match grr.perturb(cell as usize, &mut r).unwrap() {
                        LocalReport::Cell(c) => c,
                        other => panic!("GRR produced {other:?}"),
                    })
                    .collect(),
            )
        }
        _ => {
            let oue = Oue::new(cells as usize, eps).unwrap();
            let mut bits = Vec::new();
            for _ in 0..users {
                match oue.perturb(cell as usize, &mut r).unwrap() {
                    LocalReport::Bits(words) => bits.extend_from_slice(&words),
                    other => panic!("OUE produced {other:?}"),
                }
            }
            ReportPayload::Oue { count: users, bits }
        }
    };
    collector
        .submit(&ReportBatch {
            keyspace: "ldp".into(),
            epoch: 0,
            epsilon: eps,
            cells,
            payload,
        })
        .unwrap();
    let sealed = collector.seal_open_epoch().unwrap();
    assert_eq!(sealed.release.metadata().trust, TrustModel::Local);
    let values = sealed.release.cells().iter().map(|(_, v)| *v).collect();
    (values, sealed.summary)
}

#[test]
fn ldp_estimates_are_unbiased_within_clt_bounds() {
    // Both frequency oracles must debias to the truth: over S seeded
    // rounds of N users all reporting cell 37, the mean estimate for
    // that cell converges on N within a CLT band derived from the
    // empirical per-round spread (≈5σ of the mean — seed-robust).
    let (users, cell, rounds) = (400u32, 37u32, 30u64);
    for oracle in ["grr", "oue"] {
        let estimates: Vec<f64> = (0..rounds)
            .map(|s| sealed_ldp_estimates(oracle, users, cell, 1_000 + s).0[cell as usize])
            .collect();
        let mean = estimates.iter().sum::<f64>() / rounds as f64;
        let spread = std_dev(&estimates) / (rounds as f64).sqrt();
        assert!(
            (mean - users as f64).abs() < 5.0 * spread,
            "{oracle}: mean estimate {mean} vs truth {users} (CLT band {})",
            5.0 * spread
        );
        // And the noise is real: individual rounds do deviate.
        assert!(std_dev(&estimates) > 0.0, "{oracle}: no randomness?");
    }
    // GRR preserves total mass identically (p + (k−1)q = 1), so the
    // released surface sums to exactly the user count, every round.
    let (cells, _) = sealed_ldp_estimates("grr", users, cell, 7);
    let total: f64 = cells.iter().sum();
    assert!(
        (total - users as f64).abs() < 1e-6,
        "GRR mass {total} vs {users}"
    );
}

#[test]
fn ldp_epochs_charge_their_scheduled_epsilon_exactly_once() {
    use dpgrid::ldp::{CollectorConfig, LdpError, ReportCollector};
    use dpgrid::mech::MechError;
    use std::collections::HashMap;

    let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
    let schedule = BudgetSchedule::uniform(1.0, 4).unwrap();
    let mut collector =
        ReportCollector::new(CollectorConfig::new("acct", domain, 8, 8, schedule).unwrap())
            .unwrap();
    let mut sink: HashMap<String, Release> = HashMap::new();

    // Each sealed epoch's release carries exactly the ε the schedule
    // assigned it, and the ledger equals the sum of published ε.
    let mut published_sum = 0.0;
    for epoch in 0..3u64 {
        let eps = collector.open_epsilon().unwrap();
        let grr = Grr::new(64, eps).unwrap();
        let mut r = rng(epoch);
        let reports: Vec<u32> = (0..100)
            .map(|i| match grr.perturb(i % 64, &mut r).unwrap() {
                LocalReport::Cell(c) => c,
                other => panic!("GRR produced {other:?}"),
            })
            .collect();
        collector
            .submit(&ReportBatch {
                keyspace: "acct".into(),
                epoch,
                epsilon: eps,
                cells: 64,
                payload: ReportPayload::Grr(reports),
            })
            .unwrap();
        let summary = collector.publish_open_epoch(&mut sink).unwrap();
        assert!((summary.epsilon - 0.25).abs() < 1e-12);
        published_sum += summary.epsilon;
    }
    assert_eq!(sink.len(), 3);
    for (key, release) in &sink {
        let (_, range) = parse_epoch_key(key).expect("epoch key");
        let assigned = collector.schedule().epsilon_for(range.start).unwrap();
        assert!((release.epsilon() - assigned).abs() < 1e-12, "{key}");
    }
    assert!((collector.schedule().spent() - published_sum).abs() < 1e-12);

    // Charged exactly once: a collector handed a schedule whose epoch
    // 0 was already billed refuses to seal it again — typed, and the
    // ledger untouched.
    let mut spent = BudgetSchedule::uniform(1.0, 4).unwrap();
    spent.spend_epoch(0).unwrap();
    let already = spent.spent();
    let mut replay =
        ReportCollector::new(CollectorConfig::new("acct", domain, 8, 8, spent).unwrap()).unwrap();
    replay
        .submit(&ReportBatch {
            keyspace: "acct".into(),
            epoch: 0,
            epsilon: 0.25,
            cells: 64,
            payload: ReportPayload::Grr(vec![1, 2, 3]),
        })
        .unwrap();
    match replay.seal_open_epoch() {
        Err(LdpError::Mech(MechError::EpochAlreadyCharged { epoch: 0 })) => {}
        other => panic!("expected EpochAlreadyCharged, got {other:?}"),
    }
    assert!((replay.schedule().spent() - already).abs() < 1e-12);
}

#[test]
fn epsilon_scales_error_inversely() {
    // Build UG at ε and 10ε over the same data; the bigger budget's
    // answers must be roughly 10× closer on average (pure noise regime).
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    let q = Rect::new(0.1, 0.1, 0.6, 0.6).unwrap();
    let mut errs_small = Vec::new();
    let mut errs_large = Vec::new();
    for seed in 0..300 {
        let a = UniformGrid::build(&ds, &UgConfig::fixed(0.1, 16), &mut rng(seed)).unwrap();
        errs_small.push(a.answer(&q).abs());
        let b = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 16), &mut rng(seed)).unwrap();
        errs_large.push(b.answer(&q).abs());
    }
    let mean_small = errs_small.iter().sum::<f64>() / errs_small.len() as f64;
    let mean_large = errs_large.iter().sum::<f64>() / errs_large.len() as f64;
    let ratio = mean_small / mean_large;
    assert!(
        (ratio - 10.0).abs() < 3.0,
        "error ratio {ratio}, expected ≈ 10"
    );
}
