//! The portable release format.
//!
//! A differentially private synopsis is meant to be *published*. This
//! module defines the method-agnostic interchange format: the domain,
//! the consumed ε, typed [`ReleaseMetadata`] describing how the
//! release was produced, and the leaf cells with their noisy counts.
//! Any [`Synopsis`] can be exported ([`Release::from_synopsis`]) and
//! the result is itself a queryable `Synopsis`, so consumers do not
//! need the producing method's code (or its Rust types) at all.
//!
//! Everything in a `Release` is ε-DP output; saving, sharing and
//! re-loading are privacy-free post-processing.
//!
//! # Metadata and backwards compatibility
//!
//! A release built through [`crate::Pipeline`] carries the producing
//! [`Method`] as a typed enum, its guideline-**resolved** twin (every
//! `None` size filled in against the dataset), the paper-notation
//! label, ε, and — for reproducible experiment releases only — the
//! build seed. Releases serialised by earlier versions carried a
//! free-form `"method"` string instead; those still load: the
//! `metadata` field accepts the legacy key via a serde alias, and a
//! bare string deserialises into label-only metadata
//! ([`ReleaseMetadata::legacy`]).
//!
//! # Query architecture
//!
//! A release stores its cells as a flat list (that is the interchange
//! format), but it never *answers* from that list: on the first call to
//! [`Release::answer`] / [`Release::answer_all`] the cells are compiled
//! — once, lazily — into a [`CompiledSurface`], and every query
//! afterwards runs in O(log cells) against that surface (a dense
//! lattice + summed-area table when the cells are grid-shaped, a sorted
//! row-band index otherwise; see [`crate::surface`]). The compiled
//! index is a cache, never serialised: a release loaded from JSON
//! recompiles on first use. [`Release::answer_linear_scan`] keeps the
//! naive O(cells) reference semantics available for verification and
//! benchmarking.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use dpgrid_geo::{Domain, GeoError, Rect};

use crate::{CompiledSurface, CoreError, Method, Result, Synopsis};

/// Typed provenance of a [`Release`]: what was built, how the
/// guidelines resolved, and under which budget.
///
/// The seed travels as a decimal *string* on the wire: the JSON number
/// carrier is `f64` (the vendored interchange stub's lossy mode, and
/// real `serde_json` readers in other languages behave the same), and
/// a seed rounded to the nearest representable double would silently
/// break the recorded-reproducibility guarantee for values ≥ 2⁵³.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleaseMetadata {
    /// The declarative registry entry the release was built from, with
    /// guideline sizes still unresolved (`None` where a guideline was
    /// requested). `None` for legacy or externally produced releases
    /// that only carry a label.
    pub method: Option<Method>,
    /// [`Method::resolved`] against the dataset: the parameters the
    /// build actually used (e.g. the concrete Guideline-1 grid size).
    pub resolved: Option<Method>,
    /// Human-readable method tag in the paper's notation (or the
    /// free-form string of a legacy release).
    pub label: String,
    /// Privacy budget consumed; kept equal to [`Release::epsilon`].
    pub epsilon: f64,
    /// RNG seed of the build, recorded **only** for explicitly seeded
    /// [`crate::Pipeline`] publishes. A recorded seed makes the noise
    /// reproducible — and therefore removable — by anyone holding the
    /// dataset schema, so seeded releases are for reproducible
    /// experiments, not for production publication.
    pub seed: Option<u64>,
    /// Which trust model produced the surface — see [`TrustModel`].
    /// Defaults to [`TrustModel::Central`] (including for all legacy
    /// JSON, which predates the local model).
    pub trust: TrustModel,
}

/// Where the privacy barrier sat when a release's counts were made.
///
/// The distinction matters to consumers: central-model counts are the
/// true histogram plus curator-added noise, while local-model counts
/// are *statistical estimates* debiased out of per-user randomized
/// reports — unbiased, but with sampling variance that depends on the
/// population size, and individually meaningless at low counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrustModel {
    /// A trusted curator saw the raw points and added noise once,
    /// server-side (the paper's setting).
    #[default]
    Central,
    /// No trusted curator: every user randomized their own report
    /// on-device (ε-LDP) and the release is the debiased aggregate.
    Local,
}

impl TrustModel {
    /// Stable wire tag (`"central"` / `"local"`).
    pub fn as_str(self) -> &'static str {
        match self {
            TrustModel::Central => "central",
            TrustModel::Local => "local",
        }
    }
}

impl std::fmt::Display for TrustModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ReleaseMetadata {
    /// Label-only metadata, as produced for legacy string-tagged
    /// releases and direct [`Release::from_synopsis`] exports.
    pub fn legacy(label: impl Into<String>, epsilon: f64) -> Self {
        ReleaseMetadata {
            method: None,
            resolved: None,
            label: label.into(),
            epsilon,
            seed: None,
            trust: TrustModel::Central,
        }
    }

    /// The same metadata with the trust model set to
    /// [`TrustModel::Local`] — for releases whose counts are LDP
    /// estimates rather than curator-noised tallies.
    pub fn local(mut self) -> Self {
        self.trust = TrustModel::Local;
        self
    }
}

/// Hand-written (not derived) so the seed can cross the wire as a
/// lossless decimal string instead of a rounding `f64` number.
impl Serialize for ReleaseMetadata {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("method".into(), self.method.serialize_value()),
            ("resolved".into(), self.resolved.serialize_value()),
            ("label".into(), self.label.serialize_value()),
            ("epsilon".into(), self.epsilon.serialize_value()),
            (
                "seed".into(),
                match self.seed {
                    Some(seed) => serde::Value::Str(seed.to_string()),
                    None => serde::Value::Null,
                },
            ),
            (
                "trust".into(),
                serde::Value::Str(self.trust.as_str().into()),
            ),
        ])
    }
}

/// Untagged fallback: current releases carry a metadata *object*,
/// PR-1-era releases a bare method *string* (reached through the
/// `#[serde(alias = "method")]` on [`Release`]'s field). A string
/// becomes label-only metadata whose ε is patched from the release's
/// top-level field during validation. The seed field accepts both the
/// canonical decimal string and a plain (2⁵³-bounded) number.
impl Deserialize for ReleaseMetadata {
    fn deserialize_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v {
            serde::Value::Str(label) => Ok(ReleaseMetadata::legacy(label.clone(), f64::NAN)),
            serde::Value::Obj(obj) => {
                let seed = match obj.iter().find(|(k, _)| k == "seed").map(|(_, v)| v) {
                    None | Some(serde::Value::Null) => None,
                    Some(serde::Value::Str(s)) => Some(s.parse::<u64>().map_err(|e| {
                        serde::Error::msg(format!("ReleaseMetadata.seed: `{s}` is not a u64: {e}"))
                    })?),
                    Some(num) => Some(
                        u64::deserialize_value(num)
                            .map_err(|e| serde::Error::msg(format!("ReleaseMetadata.seed: {e}")))?,
                    ),
                };
                // Absent / null means central: every release written
                // before the local model existed was curator-noised.
                let trust = match obj.iter().find(|(k, _)| k == "trust").map(|(_, v)| v) {
                    None | Some(serde::Value::Null) => TrustModel::Central,
                    Some(serde::Value::Str(s)) if s == "central" => TrustModel::Central,
                    Some(serde::Value::Str(s)) if s == "local" => TrustModel::Local,
                    Some(other) => {
                        return Err(serde::Error::msg(format!(
                            "ReleaseMetadata.trust: expected \"central\" or \"local\", got {}",
                            match other {
                                serde::Value::Str(s) => format!("{s:?}"),
                                v => v.kind().to_string(),
                            }
                        )))
                    }
                };
                Ok(ReleaseMetadata {
                    method: serde::field_aliased_or_default(obj, &["method"], "ReleaseMetadata")?,
                    resolved: serde::field_aliased_or_default(
                        obj,
                        &["resolved"],
                        "ReleaseMetadata",
                    )?,
                    label: serde::field(obj, "label", "ReleaseMetadata")?,
                    epsilon: serde::field(obj, "epsilon", "ReleaseMetadata")?,
                    seed,
                    trust,
                })
            }
            other => Err(serde::Error::msg(format!(
                "ReleaseMetadata: expected object or legacy method string, got {}",
                other.kind()
            ))),
        }
    }
}

/// A serialisable, method-agnostic DP release.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Release {
    /// Typed provenance. The alias accepts PR-1-era JSON, where this
    /// slot was a free-form `"method"` string.
    #[serde(alias = "method")]
    metadata: ReleaseMetadata,
    /// Privacy budget consumed.
    epsilon: f64,
    /// The public domain.
    domain: Domain,
    /// Leaf cells and their released counts; the rectangles partition
    /// the domain.
    cells: Vec<(Rect, f64)>,
    /// Query index compiled from `cells` on first answer; pure cache
    /// (derived data), so it is skipped by serialisation and reset by
    /// deserialisation. Held behind an [`Arc`] so clones of the release
    /// — and serving-side containers such as a release catalog — share
    /// one compilation instead of each recompiling (or deep-copying)
    /// the index.
    #[serde(skip)]
    surface: OnceLock<Arc<CompiledSurface>>,
}

impl Release {
    /// Exports any synopsis into the interchange format with a
    /// free-form label. Pipeline-published releases carry full typed
    /// metadata instead — see [`Release::from_synopsis_with_metadata`].
    pub fn from_synopsis(method: impl Into<String>, synopsis: &impl Synopsis) -> Self {
        let metadata = ReleaseMetadata::legacy(method, synopsis.epsilon());
        Release::from_synopsis_with_metadata(metadata, synopsis)
    }

    /// Exports any synopsis with explicit typed metadata (the
    /// [`crate::Pipeline::publish`] path). The metadata's ε is forced
    /// to the synopsis's ε, which is authoritative.
    pub fn from_synopsis_with_metadata(
        mut metadata: ReleaseMetadata,
        synopsis: &impl Synopsis,
    ) -> Self {
        metadata.epsilon = synopsis.epsilon();
        Release {
            metadata,
            epsilon: synopsis.epsilon(),
            domain: *synopsis.domain(),
            cells: synopsis.cells(),
            surface: OnceLock::new(),
        }
    }

    /// Builds a release from raw parts, validating that the cells are
    /// sane (finite counts, non-empty rectangles inside the domain, and
    /// total area matching the domain to within 0.1 %).
    pub fn from_parts(
        method: impl Into<String>,
        epsilon: f64,
        domain: Domain,
        cells: Vec<(Rect, f64)>,
    ) -> Result<Self> {
        Release::from_parts_with_metadata(
            ReleaseMetadata::legacy(method, epsilon),
            epsilon,
            domain,
            cells,
        )
    }

    /// [`Release::from_parts`] with full typed metadata.
    pub fn from_parts_with_metadata(
        mut metadata: ReleaseMetadata,
        epsilon: f64,
        domain: Domain,
        cells: Vec<(Rect, f64)>,
    ) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "release epsilon must be positive, got {epsilon}"
            )));
        }
        if cells.is_empty() {
            return Err(CoreError::InvalidConfig(
                "release needs at least one cell".into(),
            ));
        }
        let mut area = 0.0;
        for (rect, v) in &cells {
            if !v.is_finite() {
                return Err(CoreError::InvalidConfig(format!(
                    "cell count must be finite, got {v}"
                )));
            }
            if rect.is_empty() || !domain.rect().contains_rect(rect) {
                return Err(CoreError::InvalidConfig(format!(
                    "cell {rect:?} is empty or escapes the domain"
                )));
            }
            area += rect.area();
        }
        if (area - domain.area()).abs() > domain.area() * 1e-3 {
            return Err(CoreError::InvalidConfig(format!(
                "cells cover area {area}, domain has {}",
                domain.area()
            )));
        }
        // The top-level ε is authoritative; legacy metadata arrives
        // with a NaN placeholder to be patched here.
        metadata.epsilon = epsilon;
        Ok(Release {
            metadata,
            epsilon,
            domain,
            cells,
            surface: OnceLock::new(),
        })
    }

    /// The producing method tag (the metadata label) — for legacy
    /// releases, exactly the string they were published with.
    pub fn method(&self) -> &str {
        &self.metadata.label
    }

    /// The full typed provenance of the release.
    pub fn metadata(&self) -> &ReleaseMetadata {
        &self.metadata
    }

    /// The typed registry entry the release was built from, when the
    /// release was published through the registry ([`crate::Pipeline`]).
    pub fn method_kind(&self) -> Option<&Method> {
        self.metadata.method.as_ref()
    }

    /// Number of leaf cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The compiled query surface, building it on first use.
    ///
    /// Compilation is pure post-processing of already-released values;
    /// it costs O(cells·log cells) once and makes every subsequent
    /// [`Release::answer`] O(log cells). The compilation is shared:
    /// clones of this release (and every [`Release::shared_surface`]
    /// handle) reuse the same index — a release is compiled at most
    /// once for its lifetime in memory.
    pub fn surface(&self) -> &CompiledSurface {
        self.init_surface()
    }

    /// A shared, reference-counted handle to the compiled surface,
    /// building it on first use.
    ///
    /// This is the serving-side seam: a catalog or query engine can
    /// hand the `Arc` to worker threads (the surface is `Send + Sync`)
    /// without cloning cell lists, and [`Arc::ptr_eq`] witnesses that
    /// no path recompiled an already-compiled release.
    pub fn shared_surface(&self) -> Arc<CompiledSurface> {
        Arc::clone(self.init_surface())
    }

    /// Whether the surface cache is currently populated (compilation
    /// already happened and was not evicted).
    pub fn surface_is_compiled(&self) -> bool {
        self.surface.get().is_some()
    }

    /// Drops the cached compiled surface, returning the evicted handle
    /// if one was resident.
    ///
    /// Existing [`Release::shared_surface`] handles stay valid — the
    /// index is reference-counted — but the *next* answer through this
    /// release recompiles. Capacity-bounded serving caches use this to
    /// bound the number of resident compiled indexes; it never touches
    /// the released cells, so it is pure cache management.
    pub fn evict_surface(&mut self) -> Option<Arc<CompiledSurface>> {
        self.surface.take()
    }

    fn init_surface(&self) -> &Arc<CompiledSurface> {
        self.surface
            .get_or_init(|| Arc::new(CompiledSurface::compile(self.domain, &self.cells)))
    }

    /// Reference implementation of [`Release::answer`]: the naive
    /// O(cells) scan over the stored cell list.
    ///
    /// Kept public so equivalence tests and benchmarks can compare the
    /// compiled surface against the semantics it must reproduce; never
    /// use this on a serving path.
    pub fn answer_linear_scan(&self, query: &Rect) -> f64 {
        let Some(q) = self.domain.clip(query) else {
            return 0.0;
        };
        self.cells
            .iter()
            .map(|(rect, v)| v * rect.overlap_fraction(&q))
            .sum()
    }

    /// Serialises to JSON.
    pub fn write_json<W: Write>(&self, w: W) -> Result<()> {
        let w = BufWriter::new(w);
        serde_json::to_writer(w, self).map_err(|e| CoreError::Geo(GeoError::Io(e.to_string())))?;
        Ok(())
    }

    /// Deserialises from JSON, re-validating the invariants (a release
    /// from an untrusted source must not bypass [`Release::from_parts`]).
    /// Accepts both the current typed-metadata format and PR-1-era
    /// string-tagged releases.
    pub fn read_json<R: Read>(r: R) -> Result<Self> {
        let r = BufReader::new(r);
        let raw: Release =
            serde_json::from_reader(r).map_err(|e| CoreError::Geo(GeoError::Io(e.to_string())))?;
        Release::from_parts_with_metadata(raw.metadata, raw.epsilon, raw.domain, raw.cells)
    }

    /// Saves to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let f = std::fs::File::create(path).map_err(|e| CoreError::Geo(e.into()))?;
        self.write_json(f)
    }

    /// Loads from a JSON file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let f = std::fs::File::open(path).map_err(|e| CoreError::Geo(e.into()))?;
        Release::read_json(f)
    }
}

impl Synopsis for Release {
    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Answers through the lazily compiled surface: O(log cells) per
    /// query after a one-time O(cells·log cells) compilation.
    fn answer(&self, query: &Rect) -> f64 {
        self.surface().answer(query)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        self.cells.clone()
    }

    /// Batch answering through the compiled surface, chunked across
    /// scoped threads for large batches.
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        self.surface().answer_all(queries)
    }

    /// Reads the stored cells directly — no `cells()` clone, no
    /// recompilation.
    fn total_estimate(&self) -> f64 {
        self.cells.iter().map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveGrid, AgConfig, UgConfig, UniformGrid};
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset() -> dpgrid_geo::GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
        generators::uniform(domain, 1_000, &mut rng(1))
    }

    #[test]
    fn export_preserves_answers() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(2)).unwrap();
        let rel = Release::from_synopsis("UG", &ug);
        assert_eq!(rel.method(), "UG");
        assert_eq!(rel.epsilon(), 1.0);
        assert_eq!(rel.metadata().epsilon, 1.0);
        assert_eq!(rel.method_kind(), None);
        assert_eq!(rel.cell_count(), 64);
        for q in [
            Rect::new(0.0, 0.0, 8.0, 8.0).unwrap(),
            Rect::new(1.3, 2.7, 5.9, 6.1).unwrap(),
        ] {
            assert!((rel.answer(&q) - ug.answer(&q)).abs() < 1e-9);
        }
    }

    #[test]
    fn ag_export_roundtrips_through_json() {
        let ds = dataset();
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(0.5).with_m1(4), &mut rng(3)).unwrap();
        let rel = Release::from_synopsis("AG", &ag);
        let mut buf = Vec::new();
        rel.write_json(&mut buf).unwrap();
        let back = Release::read_json(&buf[..]).unwrap();
        let q = Rect::new(0.5, 0.5, 7.5, 3.5).unwrap();
        assert!((back.answer(&q) - ag.answer(&q)).abs() < 1e-9);
        assert_eq!(back.cell_count(), rel.cell_count());
    }

    #[test]
    fn typed_metadata_roundtrips_through_json() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(7)).unwrap();
        let metadata = ReleaseMetadata {
            method: Some(Method::ug_suggested()),
            resolved: Some(Method::ug(8)),
            label: "U8*".into(),
            epsilon: 1.0,
            seed: Some(7),
            trust: TrustModel::Central,
        };
        let rel = Release::from_synopsis_with_metadata(metadata.clone(), &ug);
        let mut buf = Vec::new();
        rel.write_json(&mut buf).unwrap();
        let back = Release::read_json(&buf[..]).unwrap();
        assert_eq!(back.metadata(), &metadata);
        assert_eq!(back.method_kind(), Some(&Method::ug_suggested()));
        assert_eq!(back.method(), "U8*");
    }

    #[test]
    fn trust_model_roundtrips_and_defaults_to_central() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 4), &mut rng(11)).unwrap();
        // Local-model tag survives the wire.
        let metadata = ReleaseMetadata::legacy("LDP-OUE", 1.0).local();
        let rel = Release::from_synopsis_with_metadata(metadata, &ug);
        let mut buf = Vec::new();
        rel.write_json(&mut buf).unwrap();
        let back = Release::read_json(&buf[..]).unwrap();
        assert_eq!(back.metadata().trust, TrustModel::Local);
        // JSON written before the field existed deserializes central.
        let stripped = String::from_utf8(buf.clone())
            .unwrap()
            .replace("\"trust\":\"local\"", "\"trust\":null");
        assert_ne!(stripped, String::from_utf8(buf).unwrap());
        let legacy = Release::read_json(stripped.as_bytes()).unwrap();
        assert_eq!(legacy.metadata().trust, TrustModel::Central);
        // An unknown tag fails typed instead of silently centralizing.
        let hostile = stripped.replace("\"trust\":null", "\"trust\":\"psychic\"");
        assert!(Release::read_json(hostile.as_bytes()).is_err());
    }

    #[test]
    fn huge_seeds_roundtrip_losslessly() {
        // Seeds ≥ 2⁵³ are not representable as f64; the string wire
        // encoding must carry them exactly.
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 4), &mut rng(9)).unwrap();
        for seed in [u64::MAX, (1 << 53) + 1, 0] {
            let metadata = ReleaseMetadata {
                seed: Some(seed),
                ..ReleaseMetadata::legacy("U4", 1.0)
            };
            let rel = Release::from_synopsis_with_metadata(metadata, &ug);
            let mut buf = Vec::new();
            rel.write_json(&mut buf).unwrap();
            let back = Release::read_json(&buf[..]).unwrap();
            assert_eq!(back.metadata().seed, Some(seed));
        }
        // A numeric seed (hand-written JSON) is accepted too.
        let json = r#"{
            "metadata": {"method": null, "resolved": null, "label": "x",
                         "epsilon": 1.0, "seed": 41},
            "epsilon": 1.0,
            "domain": {"rect": {"x0": 0.0, "y0": 0.0, "x1": 1.0, "y1": 1.0}},
            "cells": [[{"x0": 0.0, "y0": 0.0, "x1": 1.0, "y1": 1.0}, 2.0]]
        }"#;
        let rel = Release::read_json(json.as_bytes()).unwrap();
        assert_eq!(rel.metadata().seed, Some(41));
    }

    #[test]
    fn legacy_string_method_json_still_loads() {
        // The exact shape PR-1 wrote: a top-level string "method".
        let json = r#"{
            "method": "AG(eps=1, m1=4)",
            "epsilon": 1.0,
            "domain": {"rect": {"x0": 0.0, "y0": 0.0, "x1": 2.0, "y1": 1.0}},
            "cells": [
                [{"x0": 0.0, "y0": 0.0, "x1": 1.0, "y1": 1.0}, 3.0],
                [{"x0": 1.0, "y0": 0.0, "x1": 2.0, "y1": 1.0}, 4.0]
            ]
        }"#;
        let rel = Release::read_json(json.as_bytes()).unwrap();
        assert_eq!(rel.method(), "AG(eps=1, m1=4)");
        assert_eq!(rel.method_kind(), None);
        // Legacy metadata inherits the top-level ε.
        assert_eq!(rel.metadata().epsilon, 1.0);
        assert_eq!(rel.metadata().seed, None);
        let q = Rect::new(0.0, 0.0, 2.0, 1.0).unwrap();
        assert!((rel.answer(&q) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_validates() {
        let domain = Domain::from_corners(0.0, 0.0, 2.0, 1.0).unwrap();
        let good = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 3.0),
            (Rect::new(1.0, 0.0, 2.0, 1.0).unwrap(), 4.0),
        ];
        assert!(Release::from_parts("x", 1.0, domain, good.clone()).is_ok());
        // Bad epsilon.
        assert!(Release::from_parts("x", 0.0, domain, good.clone()).is_err());
        // Empty cells.
        assert!(Release::from_parts("x", 1.0, domain, vec![]).is_err());
        // Non-finite count.
        let nan = vec![(Rect::new(0.0, 0.0, 2.0, 1.0).unwrap(), f64::NAN)];
        assert!(Release::from_parts("x", 1.0, domain, nan).is_err());
        // Escaping cell.
        let out = vec![(Rect::new(0.0, 0.0, 3.0, 1.0).unwrap(), 1.0)];
        assert!(Release::from_parts("x", 1.0, domain, out).is_err());
        // Under-covering cells.
        let hole = vec![(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 1.0)];
        assert!(Release::from_parts("x", 1.0, domain, hole).is_err());
    }

    #[test]
    fn untrusted_json_is_revalidated() {
        // A hand-crafted JSON with a cell escaping the domain must be
        // rejected at load time.
        let json = r#"{
            "method": "evil",
            "epsilon": 1.0,
            "domain": {"rect": {"x0": 0.0, "y0": 0.0, "x1": 1.0, "y1": 1.0}},
            "cells": [[{"x0": 0.0, "y0": 0.0, "x1": 5.0, "y1": 5.0}, 1.0]]
        }"#;
        assert!(Release::read_json(json.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 4), &mut rng(4)).unwrap();
        let rel = Release::from_synopsis("UG-file", &ug);
        let path = std::env::temp_dir().join("dpgrid_release_test.json");
        rel.save(&path).unwrap();
        let back = Release::load(&path).unwrap();
        assert_eq!(back.method(), "UG-file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clones_share_one_compiled_surface() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(11)).unwrap();
        let rel = Release::from_synopsis("UG", &ug);
        assert!(!rel.surface_is_compiled());
        let s1 = rel.shared_surface();
        assert!(rel.surface_is_compiled());
        // A clone taken after compilation carries the same Arc — no
        // recompilation, no deep copy of the index.
        let cloned = rel.clone();
        assert!(cloned.surface_is_compiled());
        assert!(Arc::ptr_eq(&s1, &cloned.shared_surface()));
        assert!(Arc::ptr_eq(&s1, &rel.shared_surface()));
    }

    #[test]
    fn evicted_surface_recompiles_fresh() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(12)).unwrap();
        let mut rel = Release::from_synopsis("UG", &ug);
        let q = Rect::new(1.0, 1.0, 5.0, 5.0).unwrap();
        let before = rel.answer(&q);
        let s1 = rel.shared_surface();
        let evicted = rel.evict_surface().expect("surface was resident");
        assert!(Arc::ptr_eq(&s1, &evicted));
        assert!(!rel.surface_is_compiled());
        assert!(rel.evict_surface().is_none());
        // The evicted handle still answers; the release recompiles to a
        // distinct but equivalent index.
        let s2 = rel.shared_surface();
        assert!(!Arc::ptr_eq(&s1, &s2));
        assert_eq!(s1.answer(&q), before);
        assert_eq!(rel.answer(&q), before);
    }

    #[test]
    fn synthetic_from_release() {
        let ds = dataset();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(5.0, 4), &mut rng(5)).unwrap();
        let rel = Release::from_synopsis("UG", &ug);
        let synth = crate::synthetic::synthesize(&rel, 500, &mut rng(6)).unwrap();
        assert_eq!(synth.len(), 500);
    }
}
