//! Batch f64 arithmetic with a bit-exactness guarantee.
//!
//! Both kernels are element-wise, so vectorizing them cannot
//! reassociate anything — each output element is produced by exactly
//! the IEEE operations the scalar loop performs, in the same order and
//! rounding mode, and **without FMA contraction** (a fused
//! multiply-add rounds once where the scalar code rounds twice, which
//! would make AVX2-sealed releases differ from scalar-sealed ones in
//! the last ulp).
//!
//! The AVX2 `u64 → f64` conversion (AVX2 has no `u64` convert) uses
//! the exponent-bias trick: OR the integer into the mantissa of
//! 2^52, reinterpret as f64, subtract 2^52.0. Exact for values below
//! 2^52; a `srli`/`testz` guard routes any chunk holding a larger
//! tally through the scalar conversion so hostile inputs cannot break
//! the determinism contract.

/// Scalar reference: `out[i] = (acc[i] as f64 − sub) × scale`.
pub(crate) fn affine_u64_scalar(out: &mut [f64], acc: &[u64], sub: f64, scale: f64) {
    for (o, &c) in out.iter_mut().zip(acc) {
        *o = (c as f64 - sub) * scale;
    }
}

/// Scalar reference: `dst[i] += src[i]`.
pub(crate) fn add_assign_scalar(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    const EXP_BIAS_BITS: i64 = 0x4330_0000_0000_0000; // bits of 2^52
    const EXP_BIAS: f64 = 4_503_599_627_370_496.0; // 2^52

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn affine_u64_avx2(out: &mut [f64], acc: &[u64], sub: f64, scale: f64) {
        unsafe {
            let n = out.len();
            let chunks = n / 4;
            let magic_i = _mm256_set1_epi64x(EXP_BIAS_BITS);
            let magic_f = _mm256_set1_pd(EXP_BIAS);
            let subv = _mm256_set1_pd(sub);
            let scalev = _mm256_set1_pd(scale);
            let src = acc.as_ptr();
            let dst = out.as_mut_ptr();
            for i in 0..chunks {
                let v = _mm256_loadu_si256(src.add(4 * i) as *const __m256i);
                // Any bits at or above 2^52 → the bias trick is no
                // longer exact; convert this chunk the scalar way.
                let hi = _mm256_srli_epi64(v, 52);
                if _mm256_testz_si256(hi, hi) == 0 {
                    for j in 4 * i..4 * i + 4 {
                        *dst.add(j) = (*src.add(j) as f64 - sub) * scale;
                    }
                    continue;
                }
                let f = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, magic_i)), magic_f);
                let r = _mm256_mul_pd(_mm256_sub_pd(f, subv), scalev);
                _mm256_storeu_pd(dst.add(4 * i), r);
            }
            for j in chunks * 4..n {
                *dst.add(j) = (*src.add(j) as f64 - sub) * scale;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn add_assign_avx2(dst: &mut [f64], src: &[f64]) {
        unsafe {
            let n = dst.len();
            let chunks = n / 4;
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            for i in 0..chunks {
                let a = _mm256_loadu_pd(d.add(4 * i));
                let b = _mm256_loadu_pd(s.add(4 * i));
                _mm256_storeu_pd(d.add(4 * i), _mm256_add_pd(a, b));
            }
            for j in chunks * 4..n {
                *d.add(j) += *s.add(j);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::{add_assign_avx2, affine_u64_avx2};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_affine_matches_the_open_coded_debias() {
        let acc = [0u64, 3, 17, 250];
        let (sub, scale) = (62.5, 1.0 / 0.6);
        let mut out = [0.0; 4];
        affine_u64_scalar(&mut out, &acc, sub, scale);
        for (i, &c) in acc.iter().enumerate() {
            assert_eq!(out[i].to_bits(), ((c as f64 - sub) * scale).to_bits());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_affine_is_bit_exact_even_past_the_mantissa() {
        if !crate::avx2_available() {
            eprintln!("skipping: no AVX2 on this machine");
            return;
        }
        // Values straddling 2^52 force the guard path mid-stream.
        let acc: Vec<u64> = vec![
            0,
            1,
            (1 << 52) - 1,
            1 << 52,
            (1 << 52) + 1,
            u64::MAX,
            12345,
            (1 << 53) + 7,
            9,
        ];
        let (sub, scale) = (0.125, 3.5);
        let mut want = vec![0.0; acc.len()];
        affine_u64_scalar(&mut want, &acc, sub, scale);
        let mut got = vec![0.0; acc.len()];
        // SAFETY: guarded by avx2_available above.
        unsafe { affine_u64_avx2(&mut got, &acc, sub, scale) };
        let want: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_add_assign_is_bit_exact_across_tails() {
        if !crate::avx2_available() {
            eprintln!("skipping: no AVX2 on this machine");
            return;
        }
        for n in [0usize, 1, 3, 4, 5, 8, 13] {
            let src: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 1.7).collect();
            let base: Vec<f64> = (0..n).map(|i| 1e9 / (i as f64 + 1.0)).collect();
            let mut want = base.clone();
            add_assign_scalar(&mut want, &src);
            let mut got = base;
            // SAFETY: guarded by avx2_available above.
            unsafe { add_assign_avx2(&mut got, &src) };
            let want: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            let got: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }
}
