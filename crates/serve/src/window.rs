//! Sliding-window queries over epoch-sliced releases.
//!
//! A streaming ingestor (`dpgrid-stream`) publishes one release per
//! time epoch under the key grammar of [`dpgrid_core::temporal`]:
//! `{keyspace}@epoch:{i}` for fine epochs, `{keyspace}@epoch:{s}-{e}`
//! for compacted tiers. Nothing else about those releases is special —
//! so a window query needs no new storage, no new engine, and no new
//! transport: [`answer_window`] dispatches through
//! [`QueryService::window`], whose default
//! ([`resolve_window_via_keys`]) resolves the covering epoch surfaces
//! from the service's *advertised keys*, fans one batch over them, and
//! sums the per-epoch answers element-wise. It runs identically
//! against a [`QueryEngine`], a `ShardRouter` fronting a fleet, or a
//! remote shard — and a service fronting a remote peer may override
//! the trait method to forward the whole window as one protocol frame
//! instead of a keys dump plus a per-epoch fan-out.
//!
//! # Window semantics (the epoch-granularity contract)
//!
//! Windows are **half-open epoch ranges** `[start, end)`. Callers with
//! wall-clock windows convert at the edge via
//! [`dpgrid_core::EpochLayout::window`], which widens partial-epoch
//! edges *outward* — released surfaces exist only per epoch, so that
//! is the finest answerable granularity. The response's
//! [`WindowAnswer::covered`] lists the epoch ranges actually summed:
//!
//! * a window overlapping only fine epochs covers exactly those
//!   epochs;
//! * a window straddling a **compacted tier** visibly widens to the
//!   whole tier (the fine surfaces were merged away — the coarser
//!   tier release is all that exists);
//! * epochs inside the window that never published (empty at ingest,
//!   or evicted) simply do not appear in `covered` — absence is
//!   explicit, not a silent zero;
//! * a window touching **no** retained epoch of the keyspace fails
//!   typed with [`ServeError::UnknownRelease`], exactly like querying
//!   a key that does not exist.

use dpgrid_core::{epoch_key, parse_epoch_key, EpochRange};
use dpgrid_geo::Rect;

use crate::engine::QueryRequest;
use crate::error::{Result, ServeError};
use crate::service::QueryService;

#[allow(unused_imports)] // rustdoc links
use crate::engine::QueryEngine;

/// A sliding-window query: sum the `keyspace`'s released epoch
/// surfaces over `[range.start, range.end)` for each rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowQuery {
    /// The keyspace whose epoch releases are summed (the part of the
    /// key before `@epoch:`).
    pub keyspace: String,
    /// The half-open epoch range the window covers.
    pub range: EpochRange,
    /// Query rectangles, answered in order.
    pub rects: Vec<Rect>,
}

impl WindowQuery {
    /// A window over `[start, end)` epochs; `None` unless
    /// `start < end`.
    pub fn new(
        keyspace: impl Into<String>,
        start: u64,
        end: u64,
        rects: Vec<Rect>,
    ) -> Option<Self> {
        Some(WindowQuery {
            keyspace: keyspace.into(),
            range: EpochRange::new(start, end)?,
            rects,
        })
    }
}

/// The answer to a [`WindowQuery`]: element-wise sums over the covered
/// epoch surfaces, plus exactly which surfaces those were.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnswer {
    /// The queried keyspace.
    pub keyspace: String,
    /// The epoch ranges actually summed, ascending and disjoint. A
    /// compacted tier appears as its full range even when the window
    /// only straddles part of it — coverage coarsens with age, and
    /// this field is where that becomes visible.
    pub covered: Vec<EpochRange>,
    /// One summed estimate per requested rectangle, same order.
    pub answers: Vec<f64>,
}

/// Answers a window query against any [`QueryService`] — see the
/// [module docs](self) for the coverage contract.
///
/// This simply dispatches through [`QueryService::window`], so a
/// service that can answer windows natively (a remote shard
/// forwarding the query as one protocol frame) does, and everything
/// else resolves coverage locally via [`resolve_window_via_keys`].
pub fn answer_window<S: QueryService + ?Sized>(
    service: &S,
    query: &WindowQuery,
) -> Result<WindowAnswer> {
    service.window(query)
}

/// The default window resolution — and the only one until a service
/// overrides [`QueryService::window`]: the service's advertised keys
/// are the source of truth for which epochs exist, and one
/// [`QueryService::answer_batch`] call sums the covering surfaces.
///
/// Selection is deterministic when retained surfaces overlap
/// (mid-compaction, a tier and one of its fine epochs can coexist
/// briefly): wider ranges win, and overlapped fine surfaces are
/// skipped so no epoch is ever counted twice. Any covering surface
/// failing to answer (evicted in flight, shed by admission control)
/// fails the whole window with that surface's typed error — a partial
/// sum would be indistinguishable from a complete one.
pub fn resolve_window_via_keys<S: QueryService + ?Sized>(
    service: &S,
    query: &WindowQuery,
) -> Result<WindowAnswer> {
    let mut covering: Vec<(EpochRange, String)> = service
        .keys()
        .into_iter()
        .filter_map(|key| match parse_epoch_key(&key) {
            Some((keyspace, range))
                if keyspace == query.keyspace && range.intersects(&query.range) =>
            {
                Some((range, key))
            }
            _ => None,
        })
        .collect();
    // Ascending by start; on equal starts the widest first, so the
    // greedy pass below prefers tiers over not-yet-evicted fine epochs.
    covering.sort_by(|(a, _), (b, _)| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
    let mut selected: Vec<(EpochRange, String)> = Vec::with_capacity(covering.len());
    for (range, key) in covering {
        if selected
            .last()
            .is_none_or(|(prev, _)| prev.end <= range.start)
        {
            selected.push((range, key));
        }
    }
    if selected.is_empty() {
        return Err(ServeError::UnknownRelease(epoch_key(
            &query.keyspace,
            query.range,
        )));
    }
    let requests: Vec<QueryRequest> = selected
        .iter()
        .map(|(_, key)| QueryRequest::new(key.clone(), query.rects.clone()))
        .collect();
    let mut answers = vec![0.0f64; query.rects.len()];
    for result in service.answer_batch(&requests) {
        let response = result?;
        for (sum, x) in answers.iter_mut().zip(&response.answers) {
            *sum += x;
        }
    }
    Ok(WindowAnswer {
        keyspace: query.keyspace.clone(),
        covered: selected.into_iter().map(|(range, _)| range).collect(),
        answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, QueryEngine};
    use dpgrid_core::{merge_releases, Method, Pipeline, Release, ReleaseSink, Synopsis};
    use dpgrid_geo::{generators, Domain};
    use rand::SeedableRng;

    fn dataset(seed: u64) -> dpgrid_geo::GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::uniform(domain, 1_200, &mut rng)
    }

    fn publish_epoch(catalog: &mut Catalog, keyspace: &str, epoch: u64) -> Release {
        let release = Pipeline::new(&dataset(epoch))
            .epsilon(0.25)
            .method(Method::ug(8))
            .seed(100 + epoch)
            .publish()
            .unwrap();
        catalog.insert(
            epoch_key(keyspace, EpochRange::single(epoch)),
            release.clone(),
        );
        release
    }

    fn rects() -> Vec<Rect> {
        vec![
            Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            Rect::new(1.3, 2.7, 6.9, 8.1).unwrap(),
            Rect::new(0.05, 9.0, 9.95, 9.5).unwrap(),
        ]
    }

    #[test]
    fn windows_sum_the_covering_fine_epochs() {
        let mut catalog = Catalog::new();
        let fine: Vec<Release> = (0..5)
            .map(|e| publish_epoch(&mut catalog, "taxi", e))
            .collect();
        // An unrelated keyspace and a non-temporal key must not leak in.
        publish_epoch(&mut catalog, "other", 2);
        Pipeline::new(&dataset(9))
            .seed(9)
            .publish_into(&mut catalog, "taxi")
            .unwrap();
        let engine = QueryEngine::new(catalog);

        let query = WindowQuery::new("taxi", 1, 4, rects()).unwrap();
        let answer = answer_window(&engine, &query).unwrap();
        assert_eq!(
            answer.covered,
            vec![
                EpochRange::single(1),
                EpochRange::single(2),
                EpochRange::single(3)
            ]
        );
        for (i, q) in rects().iter().enumerate() {
            let expected: f64 = (1..4).map(|e| fine[e as usize].answer(q)).sum();
            assert!(
                (answer.answers[i] - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
                "rect #{i}"
            );
        }
    }

    #[test]
    fn straddling_a_compacted_tier_widens_coverage_visibly() {
        let mut catalog = Catalog::new();
        let fine: Vec<Release> = (0..4)
            .map(|e| publish_epoch(&mut catalog, "k", e))
            .collect();
        // Compact epochs 0..2 into a tier, evicting the fine keys.
        let tier = merge_releases("tier", &[&fine[0], &fine[1]]).unwrap();
        catalog.accept_release(epoch_key("k", EpochRange::new(0, 2).unwrap()), tier.clone());
        assert!(catalog.evict_release(&epoch_key("k", EpochRange::single(0))));
        assert!(catalog.evict_release(&epoch_key("k", EpochRange::single(1))));
        let engine = QueryEngine::new(catalog);

        // The window [1, 3) straddles the tier: coverage widens to
        // [0, 2) ∪ [2, 3) and the answer includes all of epoch 0.
        let query = WindowQuery::new("k", 1, 3, rects()).unwrap();
        let answer = answer_window(&engine, &query).unwrap();
        assert_eq!(
            answer.covered,
            vec![EpochRange::new(0, 2).unwrap(), EpochRange::single(2)]
        );
        for (i, q) in rects().iter().enumerate() {
            let expected = tier.answer(q) + fine[2].answer(q);
            assert!(
                (answer.answers[i] - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
                "rect #{i}"
            );
        }
    }

    #[test]
    fn overlapping_surfaces_never_double_count() {
        let mut catalog = Catalog::new();
        let fine: Vec<Release> = (0..3)
            .map(|e| publish_epoch(&mut catalog, "k", e))
            .collect();
        // Mid-compaction: the tier exists but fine epoch 1 has not
        // been evicted yet. The wider tier must win; epoch 1 must not
        // be summed twice.
        let tier = merge_releases("tier", &[&fine[0], &fine[1]]).unwrap();
        catalog.accept_release(epoch_key("k", EpochRange::new(0, 2).unwrap()), tier.clone());
        let engine = QueryEngine::new(catalog);
        let query = WindowQuery::new("k", 0, 3, rects()).unwrap();
        let answer = answer_window(&engine, &query).unwrap();
        assert_eq!(
            answer.covered,
            vec![EpochRange::new(0, 2).unwrap(), EpochRange::single(2)]
        );
        let q = &rects()[0];
        let expected = tier.answer(q) + fine[2].answer(q);
        assert!((answer.answers[0] - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
    }

    #[test]
    fn uncovered_windows_fail_typed_not_zero() {
        let mut catalog = Catalog::new();
        publish_epoch(&mut catalog, "k", 5);
        publish_epoch(&mut catalog, "k", 6);
        let engine = QueryEngine::new(catalog);
        // Entirely before, entirely after, and wrong-keyspace windows
        // all fail with UnknownRelease naming the missing epoch key.
        for (keyspace, start, end) in [("k", 0, 5), ("k", 7, 20), ("nope", 5, 7)] {
            let query = WindowQuery::new(keyspace, start, end, rects()).unwrap();
            match answer_window(&engine, &query) {
                Err(ServeError::UnknownRelease(key)) => {
                    assert_eq!(key, format!("{keyspace}@epoch:{start}-{end}"));
                }
                other => panic!("window [{start},{end}) on {keyspace}: {other:?}"),
            }
        }
        // Empty windows cannot even be constructed.
        assert!(WindowQuery::new("k", 3, 3, rects()).is_none());
        assert!(WindowQuery::new("k", 4, 3, rects()).is_none());
    }
}
