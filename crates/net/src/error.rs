//! Error type of the TCP transport.

use std::fmt;

use dpgrid_serve::wire::WireError;

/// Everything that can go wrong on the network path.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed (connect, read, write, bind).
    Io(std::io::Error),
    /// The peer sent bytes this protocol cannot understand: an
    /// unparseable frame, a response whose id does not match the
    /// request, or an unexpected response kind.
    Protocol(String),
    /// The server answered with a typed wire error; branch on
    /// [`WireError::code`] (e.g. `Overloaded` means back off and
    /// retry, `UnknownKey` means the release is not published).
    Server(WireError),
    /// The connection closed while a response was pending.
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Server(e) => write!(f, "server error: {e}"),
            NetError::Disconnected => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Server(e) => Some(e),
            NetError::Protocol(_) | NetError::Disconnected => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;
