//! Synthetic analogues of the paper's four evaluation datasets.
//!
//! The raw datasets (2006 TIGER/Line road intersections, a Gowalla
//! check-in sample, TIGER 2010 point landmarks, infochimps storage
//! facilities) are not redistributable, so each is replaced by a
//! deterministic mixture that reproduces the *spatial character* the
//! paper's analysis depends on:
//!
//! * **road** — two dense, internally near-uniform "states" separated by
//!   large blank space (the feature driving the paper's q5 error peak and
//!   the unusually large optimal `c`);
//! * **checkin** — a world-map-like, heavy-tailed scatter of city clusters
//!   with density spanning orders of magnitude;
//! * **landmark** — a country-scale population-like mixture, dense on one
//!   side and sparse on the other;
//! * **storage** — the landmark spatial law at N ≈ 9 000, the paper's
//!   small-dataset stress test for the guidelines.
//!
//! Every generator is a pure function of `(seed, n)`, so experiments are
//! reproducible bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::mixture::{ClusterMixture, Component};
use crate::{Domain, GeoDataset, Point, Rect, Result};

/// The four evaluation datasets of the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// Road intersections of two states: 1.6 M points on a 25 × 20 domain.
    Road,
    /// Gowalla-style check-ins: 1 M points on a 360 × 150 domain.
    Checkin,
    /// US landmarks: 0.9 M points on a 60 × 40 domain.
    Landmark,
    /// Storage facilities: 9 K points on a 60 × 40 domain.
    Storage,
}

impl PaperDataset {
    /// All four datasets, in the paper's order.
    pub const ALL: [PaperDataset; 4] = [
        PaperDataset::Road,
        PaperDataset::Checkin,
        PaperDataset::Landmark,
        PaperDataset::Storage,
    ];

    /// The dataset's lowercase name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Road => "road",
            PaperDataset::Checkin => "checkin",
            PaperDataset::Landmark => "landmark",
            PaperDataset::Storage => "storage",
        }
    }

    /// Number of data points at paper scale (Table II).
    pub fn paper_n(&self) -> usize {
        match self {
            PaperDataset::Road => 1_600_000,
            PaperDataset::Checkin => 1_000_000,
            PaperDataset::Landmark => 900_000,
            PaperDataset::Storage => 9_000,
        }
    }

    /// The data domain (Table II's "domain size" column).
    pub fn domain(&self) -> Domain {
        let d = match self {
            // 25 × 20: longitudes −125..−100, latitudes 30..50.
            PaperDataset::Road => Domain::from_corners(-125.0, 30.0, -100.0, 50.0),
            // 360 × 150: the whole longitude range, latitudes −75..75.
            PaperDataset::Checkin => Domain::from_corners(-180.0, -75.0, 180.0, 75.0),
            // 60 × 40: longitudes −130..−70, latitudes 10..50.
            PaperDataset::Landmark | PaperDataset::Storage => {
                Domain::from_corners(-130.0, 10.0, -70.0, 50.0)
            }
        };
        d.expect("paper domains are valid by construction")
    }

    /// Query sizes `q1..q6` from Table II: `(width, height)` of the
    /// smallest query; each subsequent size doubles both extents.
    pub fn q1_size(&self) -> (f64, f64) {
        match self {
            PaperDataset::Road => (0.5, 0.5),
            PaperDataset::Checkin => (6.0, 3.0),
            PaperDataset::Landmark | PaperDataset::Storage => (1.25, 0.625),
        }
    }

    /// Builds the mixture distribution for this dataset. The mixture
    /// itself is deterministic in `seed` (cluster placement uses its own
    /// RNG stream derived from the seed).
    pub fn mixture(&self, seed: u64) -> Result<ClusterMixture> {
        match self {
            PaperDataset::Road => road_mixture(),
            PaperDataset::Checkin => checkin_mixture(seed),
            PaperDataset::Landmark | PaperDataset::Storage => landmark_mixture(seed),
        }
    }

    /// Generates the dataset at paper scale.
    pub fn generate(&self, seed: u64) -> Result<GeoDataset> {
        self.generate_scaled(seed, 1)
    }

    /// Generates the dataset with `n = paper_n / scale` points
    /// (`scale >= 1`); useful for fast test and CI runs.
    pub fn generate_scaled(&self, seed: u64, scale: usize) -> Result<GeoDataset> {
        let n = (self.paper_n() / scale.max(1)).max(1);
        self.generate_n(seed, n)
    }

    /// Generates the dataset with an explicit number of points.
    pub fn generate_n(&self, seed: u64, n: usize) -> Result<GeoDataset> {
        let mixture = self.mixture(seed)?;
        // Separate stream for point sampling so that the cluster layout
        // stays fixed when only `n` changes.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1F);
        Ok(mixture.sample(n, &mut rng))
    }
}

/// road: two dense rectangular states with mild urban hotspots and nothing
/// else — large blank areas dominate the domain.
fn road_mixture() -> Result<ClusterMixture> {
    let domain = PaperDataset::Road.domain();
    // "Washington": a wide block in the north-west of the domain.
    let wa = Rect::new(-124.7, 45.6, -117.0, 49.0)?;
    // "New Mexico": a block in the south-east of the domain.
    let nm = Rect::new(-109.0, 31.4, -103.0, 37.0)?;
    let components = vec![
        (Component::Uniform { rect: wa }, 0.52),
        (Component::Uniform { rect: nm }, 0.40),
        // Urban hotspots: denser intersection grids around big cities.
        (
            Component::Gaussian {
                center: Point::new(-122.3, 47.6), // Seattle
                sigma_x: 0.35,
                sigma_y: 0.30,
            },
            0.05,
        ),
        (
            Component::Gaussian {
                center: Point::new(-106.6, 35.1), // Albuquerque
                sigma_x: 0.30,
                sigma_y: 0.25,
            },
            0.03,
        ),
    ];
    ClusterMixture::new(domain, components)
}

/// Rough continent bands for the checkin generator: `(rect, band weight)`.
/// Weights skew towards North America and Europe, mirroring where Gowalla
/// was popular.
fn continent_bands() -> Vec<(Rect, f64)> {
    vec![
        // North America
        (Rect::new(-125.0, 25.0, -65.0, 55.0).unwrap(), 0.34),
        // Europe
        (Rect::new(-10.0, 36.0, 30.0, 60.0).unwrap(), 0.30),
        // East & South Asia
        (Rect::new(65.0, 5.0, 145.0, 45.0).unwrap(), 0.18),
        // South America
        (Rect::new(-80.0, -35.0, -35.0, 5.0).unwrap(), 0.08),
        // Africa
        (Rect::new(-15.0, -30.0, 45.0, 35.0).unwrap(), 0.06),
        // Oceania
        (Rect::new(113.0, -40.0, 155.0, -12.0).unwrap(), 0.04),
    ]
}

/// checkin: a few hundred Zipf-weighted city clusters placed inside
/// continent bands, plus a thin diffuse background.
fn checkin_mixture(seed: u64) -> Result<ClusterMixture> {
    let domain = PaperDataset::Checkin.domain();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00C1_EC41);
    let bands = continent_bands();
    let cities_total = 300usize;
    let mut components = Vec::with_capacity(cities_total + bands.len());
    let mut rank = 0usize;
    for (band, band_weight) in &bands {
        let n_cities = ((cities_total as f64) * band_weight).round().max(1.0) as usize;
        for _ in 0..n_cities {
            rank += 1;
            let center = Point::new(
                rng.random_range(band.x0()..band.x1()),
                rng.random_range(band.y0()..band.y1()),
            );
            // Zipf-ish weights: a handful of metropolises dominate.
            let weight = band_weight / (rank as f64).powf(0.85);
            let sigma = rng.random_range(0.25..2.0);
            components.push((
                Component::Gaussian {
                    center,
                    sigma_x: sigma,
                    sigma_y: sigma * rng.random_range(0.6..1.0),
                },
                weight,
            ));
        }
        // Diffuse background inside the band (rural check-ins).
        components.push((Component::Uniform { rect: *band }, band_weight * 0.06));
    }
    ClusterMixture::new(domain, components)
}

/// landmark / storage: a population-like mixture over a US-shaped band,
/// much denser in the eastern half.
fn landmark_mixture(seed: u64) -> Result<ClusterMixture> {
    let domain = PaperDataset::Landmark.domain();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A4D);
    let country = Rect::new(-124.5, 25.5, -70.5, 49.0)?;
    let n_clusters = 160usize;
    let mut components = Vec::with_capacity(n_clusters + 1);
    for rank in 1..=n_clusters {
        // Eastern half gets three quarters of the clusters.
        let east = rng.random::<f64>() < 0.75;
        let (x_lo, x_hi) = if east {
            (-95.0, -70.5)
        } else {
            (-124.5, -95.0)
        };
        let center = Point::new(
            rng.random_range(x_lo..x_hi),
            rng.random_range(country.y0()..country.y1()),
        );
        let weight = 1.0 / (rank as f64).powf(0.8);
        let sigma = rng.random_range(0.15..1.4);
        components.push((
            Component::Gaussian {
                center,
                sigma_x: sigma,
                sigma_y: sigma * rng.random_range(0.5..1.0),
            },
            weight,
        ));
    }
    // Thin rural background over the whole country band.
    components.push((Component::Uniform { rect: country }, 0.35));
    ClusterMixture::new(domain, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseGrid;

    #[test]
    fn names_and_sizes_match_table2() {
        assert_eq!(PaperDataset::Road.name(), "road");
        assert_eq!(PaperDataset::Road.paper_n(), 1_600_000);
        assert_eq!(PaperDataset::Checkin.paper_n(), 1_000_000);
        assert_eq!(PaperDataset::Landmark.paper_n(), 900_000);
        assert_eq!(PaperDataset::Storage.paper_n(), 9_000);
    }

    #[test]
    fn domain_sizes_match_table2() {
        let road = PaperDataset::Road.domain();
        assert!((road.width() - 25.0).abs() < 1e-9);
        assert!((road.height() - 20.0).abs() < 1e-9);
        let checkin = PaperDataset::Checkin.domain();
        assert!((checkin.width() - 360.0).abs() < 1e-9);
        assert!((checkin.height() - 150.0).abs() < 1e-9);
        let landmark = PaperDataset::Landmark.domain();
        assert!((landmark.width() - 60.0).abs() < 1e-9);
        assert!((landmark.height() - 40.0).abs() < 1e-9);
        assert_eq!(
            PaperDataset::Storage.domain(),
            PaperDataset::Landmark.domain()
        );
    }

    #[test]
    fn q6_is_q1_times_32() {
        // q6 doubles both extents five times from q1.
        for d in PaperDataset::ALL {
            let (w1, h1) = d.q1_size();
            let (w6, h6) = (w1 * 32.0, h1 * 32.0);
            match d {
                PaperDataset::Road => {
                    assert!((w6 - 16.0).abs() < 1e-9 && (h6 - 16.0).abs() < 1e-9)
                }
                PaperDataset::Checkin => {
                    assert!((w6 - 192.0).abs() < 1e-9 && (h6 - 96.0).abs() < 1e-9)
                }
                PaperDataset::Landmark | PaperDataset::Storage => {
                    assert!((w6 - 40.0).abs() < 1e-9 && (h6 - 20.0).abs() < 1e-9)
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Storage.generate_n(42, 500).unwrap();
        let b = PaperDataset::Storage.generate_n(42, 500).unwrap();
        assert_eq!(a.points(), b.points());
        let c = PaperDataset::Storage.generate_n(43, 500).unwrap();
        assert_ne!(a.points(), c.points());
    }

    #[test]
    fn cluster_layout_fixed_when_n_changes() {
        // Same seed, different n: the small dataset's density profile must
        // come from the same underlying mixture.
        let small = PaperDataset::Landmark.generate_n(7, 2_000).unwrap();
        let large = PaperDataset::Landmark.generate_n(7, 20_000).unwrap();
        let gs = DenseGrid::count(&small, 8, 8).unwrap();
        let gl = DenseGrid::count(&large, 8, 8).unwrap();
        // Normalized densities should correlate strongly.
        let (mut dot, mut ns, mut nl) = (0.0, 0.0, 0.0);
        for i in 0..gs.values().len() {
            let a = gs.values()[i] / small.len() as f64;
            let b = gl.values()[i] / large.len() as f64;
            dot += a * b;
            ns += a * a;
            nl += b * b;
        }
        let corr = dot / (ns.sqrt() * nl.sqrt());
        assert!(corr > 0.9, "density correlation {corr}");
    }

    #[test]
    fn road_has_large_blank_areas() {
        let ds = PaperDataset::Road.generate_n(1, 20_000).unwrap();
        let g = DenseGrid::count(&ds, 16, 16).unwrap();
        let empty = g.values().iter().filter(|&&v| v == 0.0).count();
        // More than a third of the domain has (almost) no points.
        assert!(
            empty as f64 > 0.35 * g.cell_count() as f64,
            "only {empty} empty cells of {}",
            g.cell_count()
        );
    }

    #[test]
    fn checkin_is_heavy_tailed() {
        let ds = PaperDataset::Checkin.generate_n(2, 50_000).unwrap();
        let g = DenseGrid::count(&ds, 36, 15).unwrap();
        let mut v: Vec<f64> = g.values().to_vec();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_decile: f64 = v[..v.len() / 10].iter().sum();
        let total: f64 = v.iter().sum();
        assert!(
            top_decile / total > 0.5,
            "top decile holds {} of mass",
            top_decile / total
        );
    }

    #[test]
    fn landmark_denser_in_east() {
        let ds = PaperDataset::Landmark.generate_n(3, 30_000).unwrap();
        let east = ds.points().iter().filter(|p| p.x > -95.0).count();
        let frac = east as f64 / ds.len() as f64;
        assert!(frac > 0.55, "east fraction {frac}");
    }

    #[test]
    fn all_points_inside_domains() {
        for d in PaperDataset::ALL {
            let ds = d.generate_n(5, 3_000).unwrap();
            for p in ds.points() {
                assert!(d.domain().contains(p), "{:?}: {p:?}", d.name());
            }
        }
    }
}
