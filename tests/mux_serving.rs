//! Hostile-I/O and concurrency regression for the readiness-
//! multiplexed server.
//!
//! The polite-client behaviors are pinned by `net_serving.rs`, which
//! runs unmodified against the multiplexed default. This suite attacks
//! the transport itself: slowloris clients that dribble one byte at a
//! time, frames pipelined and interleaved across many concurrent
//! connections (answers must match the in-process engine to ≤ 1e-9
//! under both codecs), shutdown under live load, the wire-visible
//! transport counters, and the remote shard's single-frame window
//! path with its keys-based fallback against a pre-`Window` peer.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpgrid::net::ServerMode;
use dpgrid::prelude::*;
use dpgrid::serve::wire::{
    self, binary, ErrorCode, RequestBody, WireError, WireRequest, WireResponse,
};

fn engine(keys: &[(&str, u64)]) -> QueryEngine {
    let dataset = PaperDataset::Storage.generate_n(63, 2_000).unwrap();
    let mut catalog = Catalog::new();
    for (key, seed) in keys {
        Pipeline::new(&dataset)
            .epsilon(1.0)
            .method(Method::ug(16))
            .seed(*seed)
            .publish_into(&mut catalog, *key)
            .unwrap();
    }
    QueryEngine::new(catalog)
}

fn workload(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Rect::new(
                -124.0 + 20.0 * t,
                24.0 + 8.0 * t,
                -90.0 + 15.0 * t,
                40.0 + 5.0 * t,
            )
            .unwrap()
        })
        .collect()
}

/// Dribbles `bytes` into `stream` one byte at a time, flushing each.
fn slowloris_write(stream: &mut TcpStream, bytes: &[u8]) {
    for &b in bytes {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
        // Short enough to keep the test fast, long enough that the
        // server observes hundreds of partial-frame wakeups.
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

fn read_json_frame(reader: &mut BufReader<TcpStream>) -> WireResponse {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    WireResponse::decode(line.trim_end()).unwrap()
}

#[test]
fn slowloris_frames_are_reassembled_under_both_codecs() {
    let engine = Arc::new(engine(&[("a", 1)]));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let q = Rect::new(-120.0, 25.0, -95.0, 42.0).unwrap();
    let expected = engine
        .answer(&QueryRequest::new("a", vec![q]))
        .unwrap()
        .answers[0];

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // JSON v1, one byte at a time: the frame must reassemble and the
    // answer must be exact.
    let request = WireRequest::new(
        1,
        RequestBody::Query(wire::WireQuery {
            release_key: "a".into(),
            rects: vec![(&q).into()],
        }),
    );
    let mut frame = request.encode().into_bytes();
    frame.push(b'\n');
    slowloris_write(&mut stream, &frame);
    let response = read_json_frame(&mut reader);
    assert_eq!(response.id, 1);
    match response.body {
        wire::ResponseBody::Answers(a) => {
            assert!((a.answers[0] - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
        }
        other => panic!("expected answers, got {other:?}"),
    }

    // Negotiate up to binary v2 (also dribbled), then dribble a binary
    // query frame: header and payload reassemble across dozens of
    // partial reads.
    let mut hello = WireRequest::new(2, RequestBody::Hello(wire::HelloOffer { max_version: 2 }))
        .encode()
        .into_bytes();
    hello.push(b'\n');
    slowloris_write(&mut stream, &hello);
    let ack = read_json_frame(&mut reader);
    match ack.body {
        wire::ResponseBody::Hello(ack) => assert_eq!(ack.version, 2),
        other => panic!("expected hello ack, got {other:?}"),
    }

    let request = WireRequest::new(
        3,
        RequestBody::Query(wire::WireQuery {
            release_key: "a".into(),
            rects: vec![(&q).into()],
        }),
    );
    let mut frame = Vec::new();
    binary::encode_request(&request, &mut frame).unwrap();
    slowloris_write(&mut stream, &frame);
    let mut header_buf = [0u8; binary::HEADER_BYTES];
    reader.read_exact(&mut header_buf).unwrap();
    let header = binary::decode_header(&header_buf).unwrap();
    let mut payload = vec![0u8; header.payload_len];
    reader.read_exact(&mut payload).unwrap();
    let response = binary::decode_response(&header, &payload).unwrap();
    assert_eq!(response.id, 3);
    match response.body {
        wire::ResponseBody::Answers(a) => {
            assert!((a.answers[0] - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
        }
        other => panic!("expected answers, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn pipelined_frames_interleave_across_concurrent_connections() {
    let keys: Vec<(String, u64)> = (0..6).map(|i| (format!("k{i}"), 10 + i as u64)).collect();
    let key_refs: Vec<(&str, u64)> = keys.iter().map(|(k, s)| (k.as_str(), *s)).collect();
    let engine = Arc::new(engine(&key_refs));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let rects = workload(11);

    // In-process reference, computed single-threaded up front.
    let reference: Vec<Vec<f64>> = keys
        .iter()
        .map(|(key, _)| {
            engine
                .answer(&QueryRequest::new(key.clone(), rects.clone()))
                .unwrap()
                .answers
        })
        .collect();

    let checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // 8 concurrent connections; even threads speak negotiated v2
        // and pipeline every key as its own frame, odd threads pin
        // JSON v1. Frames from all of them interleave on the server's
        // small worker pool.
        for t in 0..8usize {
            let keys = &keys;
            let rects = &rects;
            let reference = &reference;
            let checked = &checked;
            scope.spawn(move || {
                let max_protocol = if t % 2 == 0 { 2 } else { 1 };
                let mut client = TcpClient::connect_with_protocol(addr, max_protocol).unwrap();
                for i in 0..15 {
                    let order: Vec<usize> =
                        (0..keys.len()).map(|j| (j + t + i) % keys.len()).collect();
                    let batch: Vec<QueryRequest> = order
                        .iter()
                        .map(|&j| QueryRequest::new(keys[j].0.clone(), rects.clone()))
                        .collect();
                    let outcomes = client.query_pipelined(&batch).unwrap();
                    for (&j, outcome) in order.iter().zip(outcomes) {
                        let response = outcome.unwrap();
                        assert_eq!(response.release_key, keys[j].0, "responses out of order");
                        for (a, e) in response.answers.iter().zip(&reference[j]) {
                            assert!(
                                (a - e).abs() <= 1e-9 * (1.0 + e.abs()),
                                "{}: remote {a} vs in-process {e}",
                                keys[j].0
                            );
                        }
                        checked.fetch_add(response.answers.len() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        checked.load(Ordering::Relaxed),
        (8 * 15 * keys.len() * rects.len()) as u64
    );
    // The 4 v2 clients answer one frame per key per iteration; the 4
    // v1 clients degrade each pipeline to a single Batch frame.
    assert!(server.frames_served() >= (4 * 15 * keys.len() + 4 * 15) as u64);
    server.shutdown();
}

#[test]
fn shutdown_under_load_joins_cleanly() {
    let engine = Arc::new(engine(&[("a", 1)]));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let rects = workload(7);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..6 {
        let stop = Arc::clone(&stop);
        let rects = rects.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = TcpClient::connect(addr).unwrap();
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // After shutdown every outcome is an error (never a
                // hang, never a panic); before it, answers flow.
                if client.query("a", &rects).is_ok() {
                    served += 1;
                }
            }
            served
        }));
    }
    // Let real load build up, then pull the plug mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let served_before = server.frames_served();
    server.shutdown(); // must join every worker despite live traffic
    stop.store(true, Ordering::Relaxed);
    let served: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(served_before > 0, "load never reached the server");
    assert!(served > 0, "clients were never answered");
}

#[test]
fn transport_counters_travel_in_wire_stats() {
    let engine = Arc::new(engine(&[("a", 1)]));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let rects = workload(5);

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.query("a", &rects).unwrap();
    client.ping().unwrap();

    // Both codecs carry the tail: the negotiated-v2 client above and a
    // pinned-v1 client below see the same counters (the v1 read is
    // strictly later, so its values can only have grown).
    let stats = client.stats().unwrap();
    let transport = stats.transport.expect("server reports transport counters");
    assert!(transport.accepted >= 1);
    assert!(transport.active >= 1);
    assert!(transport.frames_decoded >= 3, "query + ping + stats");
    assert!(transport.bytes_in > 0 && transport.bytes_out > 0);

    let mut v1 = TcpClient::connect_with_protocol(server.local_addr(), 1).unwrap();
    let v1_transport = v1.stats().unwrap().transport.unwrap();
    assert!(v1_transport.accepted >= 2);
    assert!(v1_transport.frames_decoded > transport.frames_decoded);

    // The server-side accessor agrees with the wire view (modulo
    // traffic that lands between the two reads).
    let direct = server.transport_stats();
    assert!(direct.frames_decoded >= v1_transport.frames_decoded);
    assert_eq!(direct.accepted, v1_transport.accepted);

    // The bare engine still reports no transport: the tail belongs to
    // the serving boundary, not the engine.
    assert!(QueryService::stats(&*engine).transport.is_none());
    server.shutdown();
}

#[test]
fn both_server_modes_agree_and_count() {
    let engine = Arc::new(engine(&[("a", 1)]));
    let q = workload(5);
    let mut answers = Vec::new();
    for mode in [ServerMode::Multiplexed, ServerMode::Threaded] {
        let server = TcpServer::bind_with_mode(Arc::clone(&engine), "127.0.0.1:0", mode).unwrap();
        assert_eq!(server.mode(), mode);
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        answers.push(client.query("a", &q).unwrap().answers);
        let transport = client.stats().unwrap().transport.unwrap();
        assert!(transport.frames_decoded >= 1);
        assert_eq!(server.frames_served(), 3); // hello + query + stats
        server.shutdown();
    }
    assert_eq!(answers[0], answers[1]);
}

/// A fake pre-`Window` (and pre-`Hello`) JSON-only server: one
/// accepted connection, answering `Hello` and `Window` with the
/// `MalformedRequest` an old binary would produce, everything else
/// through the real dispatch.
fn spawn_pre_window_server(
    engine: Arc<QueryEngine>,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let trimmed = line.trim_end();
            let response = match WireRequest::decode(trimmed) {
                Ok(request) => match request.body {
                    RequestBody::Hello(_) => WireResponse::error(
                        request.id,
                        WireError::new(ErrorCode::MalformedRequest, "unknown variant `Hello`"),
                    ),
                    RequestBody::Window(_) => WireResponse::error(
                        request.id,
                        WireError::new(ErrorCode::MalformedRequest, "unknown variant `Window`"),
                    ),
                    body => wire::dispatch(engine.as_ref(), request.id, body),
                },
                Err(e) => WireResponse::error(e.id, e.error),
            };
            writer.write_all(response.encode().as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
        }
    });
    (addr, handle)
}

#[test]
fn remote_window_is_native_with_keys_fallback_for_old_peers() {
    let keys: Vec<String> = (0..4)
        .map(|e| epoch_key("taxi", EpochRange::single(e)))
        .collect();
    let key_refs: Vec<(&str, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), 40 + i as u64))
        .collect();
    let engine = Arc::new(engine(&key_refs));
    let q = workload(3);
    let query = WindowQuery {
        keyspace: "taxi".into(),
        range: EpochRange::new(1, 4).unwrap(),
        rects: q.clone(),
    };
    let expected = answer_window(&*engine, &query).unwrap();

    // Modern peer: the shard's `window` override sends one native
    // `Window` frame, and the server-side resolution matches the
    // in-process one exactly.
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let baseline = server.frames_served();
    let shard = RemoteShard::connect(server.local_addr()).unwrap();
    let native = shard.window(&query).unwrap();
    assert_eq!(native.keyspace, expected.keyspace);
    assert_eq!(native.covered, expected.covered);
    for (a, e) in native.answers.iter().zip(&expected.answers) {
        assert!((a - e).abs() <= 1e-9 * (1.0 + e.abs()));
    }
    // One round trip: connect-verify ping + hello + the window frame
    // itself — no per-epoch queries, no keys enumeration.
    assert!(
        server.frames_served() - baseline <= 3,
        "window fanned out: {} frames",
        server.frames_served() - baseline
    );
    server.shutdown();

    // Pre-`Window` peer: the override's offer is rejected as
    // `MalformedRequest` and the shard falls back to keys-based
    // resolution — same answer, just more round trips.
    let (addr, _old_server) = spawn_pre_window_server(Arc::clone(&engine));
    let shard = RemoteShard::connect(addr).unwrap();
    let fallback = shard.window(&query).unwrap();
    assert_eq!(fallback.covered, expected.covered);
    for (a, e) in fallback.answers.iter().zip(&expected.answers) {
        assert!((a - e).abs() <= 1e-9 * (1.0 + e.abs()));
    }
    // An uncovered range still degrades typed through the fallback.
    let missing = WindowQuery {
        keyspace: "taxi".into(),
        range: dpgrid::core::EpochRange::new(90, 95).unwrap(),
        rects: q,
    };
    assert!(matches!(
        shard.window(&missing),
        Err(ServeError::UnknownRelease(_))
    ));
}
