//! Summed-area tables (2-D prefix sums).

use serde::{Deserialize, Serialize};

use crate::DenseGrid;

/// A summed-area table over a [`DenseGrid`].
///
/// Stores `(cols + 1) × (rows + 1)` prefix sums so any axis-aligned block
/// of cells can be summed in O(1). This is the backbone of query answering
/// for every grid-based synopsis: a rectangle query decomposes into at most
/// nine cell blocks (interior, four edges, four corners), each resolved
/// with a single table lookup.
///
/// Sums are accumulated in `f64`. For the cell counts and grid sizes used
/// in this workspace (≤ 2²⁴ cells, counts ≤ 10⁷) the rounding error is
/// far below the noise the privacy mechanisms add.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummedAreaTable {
    cols: usize,
    rows: usize,
    /// `(cols + 1) * (rows + 1)` row-major prefix sums; entry `(c, r)`
    /// holds the sum of all cells with column `< c` and row `< r`.
    prefix: Vec<f64>,
}

impl SummedAreaTable {
    /// Builds the prefix-sum table of a grid.
    pub fn new(grid: &DenseGrid) -> Self {
        let cols = grid.cols();
        let rows = grid.rows();
        let stride = cols + 1;
        let mut prefix = vec![0.0f64; stride * (rows + 1)];
        for r in 0..rows {
            let mut row_acc = 0.0;
            for c in 0..cols {
                row_acc += grid.get(c, r);
                // prefix[(r+1), (c+1)] = prefix[r][c+1] + running row sum
                prefix[(r + 1) * stride + (c + 1)] = prefix[r * stride + (c + 1)] + row_acc;
            }
        }
        SummedAreaTable { cols, rows, prefix }
    }

    /// Number of grid columns covered.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of grid rows covered.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Sum of the half-open cell block `cols [c0, c1) × rows [r0, r1)`.
    ///
    /// Out-of-range bounds are clamped; empty ranges yield `0.0`.
    #[inline]
    pub fn sum(&self, c0: usize, r0: usize, c1: usize, r1: usize) -> f64 {
        let c0 = c0.min(self.cols);
        let c1 = c1.min(self.cols);
        let r0 = r0.min(self.rows);
        let r1 = r1.min(self.rows);
        if c0 >= c1 || r0 >= r1 {
            return 0.0;
        }
        let stride = self.cols + 1;
        let p = &self.prefix;
        p[r1 * stride + c1] - p[r0 * stride + c1] - p[r1 * stride + c0] + p[r0 * stride + c0]
    }

    /// Sum of every cell in the grid.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum(0, 0, self.cols, self.rows)
    }

    /// Estimated resident size in bytes: the struct itself plus the
    /// owned prefix-sum array. Used by serving-side memory budgets.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.prefix.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn grid_from(vals: &[&[f64]]) -> DenseGrid {
        let rows = vals.len();
        let cols = vals[0].len();
        let domain = Domain::from_corners(0.0, 0.0, cols as f64, rows as f64).unwrap();
        let mut g = DenseGrid::zeros(domain, cols, rows).unwrap();
        for (r, row) in vals.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                g.set(c, r, *v);
            }
        }
        g
    }

    #[test]
    fn matches_naive_sums() {
        let g = grid_from(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[5.0, 6.0, 7.0, 8.0],
            &[9.0, 10.0, 11.0, 12.0],
        ]);
        let sat = SummedAreaTable::new(&g);
        for c0 in 0..=4 {
            for c1 in c0..=4 {
                for r0 in 0..=3 {
                    for r1 in r0..=3 {
                        let mut naive = 0.0;
                        for c in c0..c1 {
                            for r in r0..r1 {
                                naive += g.get(c, r);
                            }
                        }
                        assert!(
                            (sat.sum(c0, r0, c1, r1) - naive).abs() < 1e-9,
                            "block ({c0},{r0})..({c1},{r1})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let g = grid_from(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let sat = SummedAreaTable::new(&g);
        assert_eq!(sat.sum(0, 0, 100, 100), 4.0);
        assert_eq!(sat.sum(5, 5, 9, 9), 0.0);
    }

    #[test]
    fn empty_range_is_zero() {
        let g = grid_from(&[&[3.0]]);
        let sat = SummedAreaTable::new(&g);
        assert_eq!(sat.sum(0, 0, 0, 1), 0.0);
        assert_eq!(sat.sum(0, 0, 1, 0), 0.0);
        assert_eq!(sat.total(), 3.0);
    }

    #[test]
    fn handles_negative_values() {
        // Noisy counts can be negative; the table must not assume
        // non-negativity.
        let g = grid_from(&[&[-1.0, 2.0], &[3.0, -4.0]]);
        let sat = SummedAreaTable::new(&g);
        assert!((sat.total() - 0.0).abs() < 1e-12);
        assert!((sat.sum(0, 0, 1, 1) - -1.0).abs() < 1e-12);
        assert!((sat.sum(1, 1, 2, 2) - -4.0).abs() < 1e-12);
    }
}
