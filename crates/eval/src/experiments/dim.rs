//! §IV-C — the dimensionality analysis behind "why hierarchies stop
//! helping in 2-D", plus an empirical 1-D vs 2-D control experiment.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use dpgrid_baselines::inference::CiTree;
use dpgrid_baselines::oned::{project_x, Histogram1D};
use dpgrid_core::analysis::border_fraction;
use dpgrid_core::Synopsis;
use dpgrid_geo::generators::PaperDataset;
use dpgrid_geo::ndim::{gaussian_mixture, NdBox, NdGrid};
use dpgrid_geo::Rect;
use dpgrid_mech::{uniform_allocation, LaplaceMechanism};

use super::{DataBundle, ExpContext};
use crate::method::Method;
use crate::report::{fmt, Table};
use crate::Result;

/// 3-D side of the contrast: a flat noisy 16³ grid versus a 3-level
/// binary hierarchy (16³ → 8³ → 4³) with constrained inference, on a
/// clustered 3-D Gaussian mixture — testing the paper's *prediction*
/// that the hierarchy benefit "would perform even worse with higher
/// dimensions".
fn hierarchy_benefit_3d(ctx: &ExpContext, trials: usize) -> Result<(f64, f64)> {
    const M: usize = 16;
    let domain = NdBox::new([0.0; 3], [1.0; 3]).map_err(dpgrid_core::CoreError::Geo)?;
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x3D);
    let n = (ctx.n_for(PaperDataset::Checkin) / 4).max(1_000);
    let points =
        gaussian_mixture(domain, 40, 0.05, n, &mut rng).map_err(dpgrid_core::CoreError::Geo)?;
    let truth_grid = NdGrid::count(domain, M, &points).map_err(dpgrid_core::CoreError::Geo)?;

    // Random 3-D box queries.
    let mut q_rng = StdRng::seed_from_u64(ctx.seed ^ 0x3E);
    let queries: Vec<NdBox<3>> = (0..200)
        .map(|_| {
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for k in 0..3 {
                let len = q_rng.random_range(0.1..0.6);
                let a = q_rng.random_range(0.0..1.0 - len);
                lo[k] = a;
                hi[k] = a + len;
            }
            NdBox::new(lo, hi).expect("query box ordered")
        })
        .collect();
    let truths: Vec<f64> = queries
        .iter()
        .map(|q| truth_grid.answer_uniform(q))
        .collect();

    let eps = 1.0;
    let mid_grid = truth_grid
        .aggregate(2)
        .map_err(dpgrid_core::CoreError::Geo)?;
    let top_grid = mid_grid.aggregate(2).map_err(dpgrid_core::CoreError::Geo)?;
    let (mut err_flat, mut err_hier) = (0.0f64, 0.0f64);
    for _ in 0..trials {
        // Flat: full budget on the fine grid.
        let mut flat = truth_grid.clone();
        let mech = LaplaceMechanism::for_count(eps)?;
        for v in flat.values_mut() {
            *v = mech.randomize(*v, &mut rng);
        }
        for (q, t) in queries.iter().zip(&truths) {
            err_flat += (flat.answer_uniform(q) - t).abs();
        }

        // Hierarchy: ε/3 per level (4³, 8³, 16³) + constrained inference.
        let epsilons = uniform_allocation(eps, 3)?;
        let mechs: Vec<LaplaceMechanism> = epsilons
            .iter()
            .map(|&e| LaplaceMechanism::for_count(e))
            .collect::<dpgrid_mech::Result<_>>()?;
        let mut tree = CiTree::with_capacity(
            top_grid.cell_count() + mid_grid.cell_count() + truth_grid.cell_count(),
        );
        let add_level = |tree: &mut CiTree,
                         grid: &NdGrid<3>,
                         mech: &LaplaceMechanism,
                         eps: f64,
                         rng: &mut StdRng|
         -> Result<Vec<usize>> {
            let var = 2.0 / (eps * eps);
            grid.values()
                .iter()
                .map(|&v| tree.add_node(mech.randomize(v, rng), var))
                .collect()
        };
        let top_ids = add_level(&mut tree, &top_grid, &mechs[0], epsilons[0], &mut rng)?;
        let mid_ids = add_level(&mut tree, &mid_grid, &mechs[1], epsilons[1], &mut rng)?;
        let fine_ids = add_level(&mut tree, &truth_grid, &mechs[2], epsilons[2], &mut rng)?;
        // Wire children via the parent-index mapping.
        let mut mid_children: Vec<Vec<usize>> = vec![Vec::new(); mid_grid.cell_count()];
        for (idx, &id) in fine_ids.iter().enumerate() {
            mid_children[truth_grid.parent_index(idx, 2)].push(id);
        }
        for (pi, children) in mid_children.into_iter().enumerate() {
            tree.set_children(mid_ids[pi], children)?;
        }
        let mut top_children: Vec<Vec<usize>> = vec![Vec::new(); top_grid.cell_count()];
        for (idx, &id) in mid_ids.iter().enumerate() {
            top_children[mid_grid.parent_index(idx, 2)].push(id);
        }
        for (pi, children) in top_children.into_iter().enumerate() {
            tree.set_children(top_ids[pi], children)?;
        }
        let consistent = tree.run(&top_ids)?;
        let mut hier = truth_grid.clone();
        for (cell, &id) in hier.values_mut().iter_mut().zip(&fine_ids) {
            *cell = consistent[id];
        }
        for (q, t) in queries.iter().zip(&truths) {
            err_hier += (hier.answer_uniform(q) - t).abs();
        }
    }
    let norm = (trials * queries.len()) as f64;
    Ok((err_flat / norm, err_hier / norm))
}

/// Empirical side of §IV-C: the *same* hierarchy trick (uniform budget
/// over levels + constrained inference) applied to 1-D and 2-D versions
/// of the same data, reported as the error ratio hierarchy/flat. The
/// paper's prediction: the ratio is well below 1 in 1-D (Hay et al.'s
/// regime) and close to 1 in 2-D.
fn hierarchy_benefit(ctx: &ExpContext) -> Result<Table> {
    let which = PaperDataset::Checkin;
    let bundle = DataBundle::prepare(which, ctx)?;
    let eps = 1.0;
    let trials = ctx.trials.max(2);
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xD1);

    // --- 1-D: 1024 bins over the x projection, branching 2 (depth 10).
    let bins = 1024usize;
    let counts = project_x(&bundle.dataset, bins);
    let mut q_rng = StdRng::seed_from_u64(ctx.seed ^ 0xD2);
    let queries_1d: Vec<(f64, f64)> = (0..200)
        .map(|_| {
            let len = q_rng.random_range(8.0..512.0);
            let a = q_rng.random_range(0.0..(bins as f64 - len));
            (a, a + len)
        })
        .collect();
    let truth_1d: Vec<f64> = {
        let exact = Histogram1D::flat(&counts, 1e12, &mut StdRng::seed_from_u64(0)).unwrap();
        queries_1d
            .iter()
            .map(|&(a, b)| exact.answer(a, b))
            .collect()
    };
    let (mut err_flat_1d, mut err_hier_1d) = (0.0f64, 0.0f64);
    for _ in 0..trials {
        let flat = Histogram1D::flat(&counts, eps, &mut rng)?;
        let hier = Histogram1D::hierarchical(&counts, eps, 2, &mut rng)?;
        for (q, t) in queries_1d.iter().zip(&truth_1d) {
            err_flat_1d += (flat.answer(q.0, q.1) - t).abs();
            err_hier_1d += (hier.answer(q.0, q.1) - t).abs();
        }
    }

    // --- 2-D: the same cell count (32² = 1024) as flat grid vs an
    // H_{2,3} hierarchy over it, on the full 2-D data.
    let d = bundle.dataset.domain().rect();
    let mut q_rng = StdRng::seed_from_u64(ctx.seed ^ 0xD3);
    let queries_2d: Vec<Rect> = (0..200)
        .map(|_| {
            let w = q_rng.random_range(d.width() / 32.0..d.width() / 2.0);
            let h = q_rng.random_range(d.height() / 32.0..d.height() / 2.0);
            let x0 = q_rng.random_range(d.x0()..d.x1() - w);
            let y0 = q_rng.random_range(d.y0()..d.y1() - h);
            Rect::new(x0, y0, x0 + w, y0 + h).expect("query in domain")
        })
        .collect();
    let index = dpgrid_geo::PointIndex::build(&bundle.dataset);
    let truth_2d: Vec<f64> = queries_2d.iter().map(|q| index.count(q) as f64).collect();
    let (mut err_flat_2d, mut err_hier_2d) = (0.0f64, 0.0f64);
    for trial in 0..trials {
        let seed = ctx.seed ^ 0xD4 ^ (trial as u64);
        let flat =
            Method::ug(32).build_boxed(&bundle.dataset, eps, &mut StdRng::seed_from_u64(seed))?;
        let hier = Method::hierarchy(32, 2, 3).build_boxed(
            &bundle.dataset,
            eps,
            &mut StdRng::seed_from_u64(seed ^ 0xF),
        )?;
        for (q, t) in queries_2d.iter().zip(&truth_2d) {
            err_flat_2d += (flat.answer(q) - t).abs();
            err_hier_2d += (hier.answer(q) - t).abs();
        }
    }

    let mut t = Table::new(
        "Hierarchy benefit: mean |error| ratio hierarchy/flat, 1024 cells, ε = 1",
        &["dimension", "flat err", "hierarchy err", "ratio"],
    );
    t.push_row(vec![
        "1-D (1024 bins, b=2)".into(),
        fmt(err_flat_1d / (trials * 200) as f64),
        fmt(err_hier_1d / (trials * 200) as f64),
        fmt(err_hier_1d / err_flat_1d),
    ]);
    t.push_row(vec![
        "2-D (32x32, H2,3)".into(),
        fmt(err_flat_2d / (trials * 200) as f64),
        fmt(err_hier_2d / (trials * 200) as f64),
        fmt(err_hier_2d / err_flat_2d),
    ]);

    // --- 3-D: the paper's *prediction* — 16³ cells, binary H with CI.
    let (flat_3d, hier_3d) = hierarchy_benefit_3d(ctx, trials)?;
    t.push_row(vec![
        "3-D (16^3, H2,3)".into(),
        fmt(flat_3d),
        fmt(hier_3d),
        fmt(hier_3d / flat_3d),
    ]);
    Ok(t)
}

/// Runs the analysis: tabulates the query-border fraction
/// `2·d·(b/M)^(1/d)` for the paper's example (`M = 10⁴`, `b = 4`) across
/// dimensions, plus a sweep over `b`, plus the empirical 1-D/2-D
/// hierarchy-benefit contrast.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("dim");
    let mut md = String::from("## §IV-C — effect of dimensionality on hierarchies\n\n");

    let mut t = Table::new(
        "Border fraction 2d·(b/M)^(1/d), M = 10,000",
        &["d", "b=2", "b=4", "b=8", "b=16"],
    );
    for d in 1..=6u32 {
        let mut row = vec![d.to_string()];
        for b in [2u64, 4, 8, 16] {
            row.push(fmt(border_fraction(d, 10_000, b)));
        }
        t.push_row(row);
    }
    t.write_csv(&dir.join("border_fraction.csv"))?;
    md.push_str(&t.to_markdown());

    let d1 = border_fraction(1, 10_000, 4);
    let d2 = border_fraction(2, 10_000, 4);
    md.push_str(&format!(
        "Paper's example: at M = 10,000 and b = 4 the border fraction grows \
         from **{}** (1-D, the paper's 2b/M = 0.0008) to **{}** (2-D, the \
         paper's 4√b/√M = 0.08) — a {}× increase, which is why the benefit \
         of a hierarchy largely disappears in two dimensions.\n\n",
        fmt(d1),
        fmt(d2),
        fmt(d2 / d1),
    ));

    // Empirical control: same trick, both dimensions.
    let bench = hierarchy_benefit(ctx)?;
    bench.write_csv(&dir.join("hierarchy_benefit.csv"))?;
    md.push_str(&bench.to_markdown());
    md.push_str(
        "A ratio below 1 in the 1-D row (hierarchy wins), near 1 in the \
         2-D row (wash) and above 1 in the 3-D row (hierarchy actively \
         hurts) confirms §IV-C's argument — including its prediction for \
         higher dimensions — empirically.\n\n",
    );
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_markdown_and_csv() {
        let ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_dim_test"));
        let md = run(&ctx).unwrap();
        assert!(md.contains("0.0008"));
        assert!(md.contains("0.08"));
        assert!(ctx.dir("dim").join("border_fraction.csv").exists());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
