//! Per-epoch privacy-budget schedules for streaming release pipelines.
//!
//! A streaming ingestor publishes one release per time epoch, and every
//! epoch's release consumes privacy budget under **sequential
//! composition** (each epoch's release reads the same users' data
//! again, so the ε's add). A [`BudgetSchedule`] decides *how much* each
//! epoch may spend and enforces that the per-epoch shares never sum
//! past the configured total:
//!
//! * [`SchedulePolicy::Uniform`] splits ε evenly over a fixed horizon
//!   of `epochs` epochs (`ε / epochs` each); charging an epoch at or
//!   past the horizon is a hard [`MechError::BudgetExhausted`].
//! * [`SchedulePolicy::ExponentialDecay`] gives epoch `i` the share
//!   `ε · (1 − r) · rⁱ` for a decay ratio `r ∈ (0, 1)` — an
//!   infinite-horizon geometric series summing to exactly ε, so a
//!   stream with no known end date can keep publishing forever while
//!   early epochs (the freshest data at launch) get the most budget.
//!
//! The schedule wraps a [`PrivacyBudget`], so the per-epoch shares are
//! not just advisory: every [`BudgetSchedule::spend_epoch`] draws the
//! share from the budget, each epoch can be charged at most once, and
//! over-spending fails typed instead of silently leaking ε.

use std::collections::BTreeSet;

use crate::{check_epsilon, MechError, PrivacyBudget, Result};

/// How a [`BudgetSchedule`] splits its total ε across epoch indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulePolicy {
    /// Even split over a fixed horizon: epoch `i < epochs` receives
    /// `ε / epochs`; epochs at or past the horizon receive nothing.
    Uniform {
        /// Number of epochs the budget is split over (≥ 1).
        epochs: usize,
    },
    /// Infinite-horizon geometric decay: epoch `i` receives
    /// `ε · (1 − decay) · decayⁱ`, which sums to ε over all epochs.
    ExponentialDecay {
        /// Per-epoch decay ratio, strictly inside `(0, 1)`.
        decay: f64,
    },
}

/// A per-epoch ε allocation backed by hard [`PrivacyBudget`]
/// accounting.
///
/// ```
/// use dpgrid_mech::BudgetSchedule;
///
/// let mut schedule = BudgetSchedule::uniform(1.0, 4).unwrap();
/// for epoch in 0..4 {
///     let eps = schedule.spend_epoch(epoch).unwrap();
///     assert!((eps - 0.25).abs() < 1e-12);
/// }
/// assert!(schedule.spend_epoch(4).is_err()); // past the horizon
/// ```
#[derive(Debug, Clone)]
pub struct BudgetSchedule {
    policy: SchedulePolicy,
    budget: PrivacyBudget,
    charged: BTreeSet<u64>,
}

impl BudgetSchedule {
    /// A schedule splitting `epsilon` evenly over `epochs` epochs.
    pub fn uniform(epsilon: f64, epochs: usize) -> Result<Self> {
        if epochs == 0 {
            return Err(MechError::ZeroLevels);
        }
        BudgetSchedule::new(epsilon, SchedulePolicy::Uniform { epochs })
    }

    /// A schedule giving epoch `i` the share `ε · (1 − decay) · decayⁱ`
    /// (`decay` strictly inside `(0, 1)`).
    pub fn exponential_decay(epsilon: f64, decay: f64) -> Result<Self> {
        if !decay.is_finite() || decay <= 0.0 || decay >= 1.0 {
            return Err(MechError::InvalidFraction(decay));
        }
        BudgetSchedule::new(epsilon, SchedulePolicy::ExponentialDecay { decay })
    }

    /// A schedule with total `epsilon` under `policy`. Prefer the
    /// policy-specific constructors, which validate policy parameters.
    pub fn new(epsilon: f64, policy: SchedulePolicy) -> Result<Self> {
        match policy {
            SchedulePolicy::Uniform { epochs: 0 } => return Err(MechError::ZeroLevels),
            SchedulePolicy::ExponentialDecay { decay }
                if !decay.is_finite() || decay <= 0.0 || decay >= 1.0 =>
            {
                return Err(MechError::InvalidFraction(decay));
            }
            _ => {}
        }
        Ok(BudgetSchedule {
            policy,
            budget: PrivacyBudget::new(epsilon)?,
            charged: BTreeSet::new(),
        })
    }

    /// The configured split policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The total ε the schedule distributes.
    pub fn total(&self) -> f64 {
        self.budget.total()
    }

    /// ε charged so far across all epochs.
    pub fn spent(&self) -> f64 {
        self.budget.spent()
    }

    /// ε not yet charged to any epoch.
    pub fn remaining(&self) -> f64 {
        self.budget.remaining()
    }

    /// The epoch horizon: `Some(n)` when only epochs `0..n` receive
    /// budget, `None` for infinite-horizon policies.
    pub fn horizon(&self) -> Option<usize> {
        match self.policy {
            SchedulePolicy::Uniform { epochs } => Some(epochs),
            SchedulePolicy::ExponentialDecay { .. } => None,
        }
    }

    /// Epoch indices already charged through
    /// [`BudgetSchedule::spend_epoch`], ascending.
    pub fn charged_epochs(&self) -> Vec<u64> {
        self.charged.iter().copied().collect()
    }

    /// The ε share `epoch` is entitled to under the policy, without
    /// charging anything.
    ///
    /// Fails with [`MechError::BudgetExhausted`] for epochs past a
    /// uniform horizon, and with [`MechError::InvalidEpsilon`] when a
    /// decayed share underflows to zero (epochs so distant their
    /// geometric share is below `f64` resolution — no meaningful
    /// release could be published at that ε anyway).
    pub fn epsilon_for(&self, epoch: u64) -> Result<f64> {
        match self.policy {
            SchedulePolicy::Uniform { epochs } => {
                if epoch >= epochs as u64 {
                    return Err(MechError::BudgetExhausted {
                        requested: self.budget.total() / epochs as f64,
                        remaining: 0.0,
                    });
                }
                Ok(self.budget.total() / epochs as f64)
            }
            SchedulePolicy::ExponentialDecay { decay } => {
                let share = self.budget.total() * (1.0 - decay) * decay.powf(epoch as f64);
                check_epsilon(share)
            }
        }
    }

    /// Charges `epoch`'s share against the wrapped budget and returns
    /// the ε the epoch's release may spend.
    ///
    /// Each epoch can be charged at most once
    /// ([`MechError::EpochAlreadyCharged`] otherwise) — re-publishing
    /// an epoch would read the same users' data twice while paying
    /// once, which is exactly the silent leak the schedule exists to
    /// prevent.
    pub fn spend_epoch(&mut self, epoch: u64) -> Result<f64> {
        if self.charged.contains(&epoch) {
            return Err(MechError::EpochAlreadyCharged { epoch });
        }
        let share = self.epsilon_for(epoch)?;
        let spent = self.budget.spend(share)?;
        self.charged.insert(epoch);
        Ok(spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shares_sum_to_total_and_horizon_is_hard() {
        let mut s = BudgetSchedule::uniform(1.0, 8).unwrap();
        assert_eq!(s.horizon(), Some(8));
        let mut sum = 0.0;
        for epoch in 0..8 {
            sum += s.spend_epoch(epoch).unwrap();
        }
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.spent() - 1.0).abs() < 1e-12);
        assert!(matches!(
            s.spend_epoch(8),
            Err(MechError::BudgetExhausted { .. })
        ));
        assert_eq!(s.charged_epochs(), (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn decay_shares_form_a_geometric_series_summing_to_total() {
        let s = BudgetSchedule::exponential_decay(2.0, 0.5).unwrap();
        assert_eq!(s.horizon(), None);
        // Finite prefix sums equal ε·(1 − r^n), converging to ε.
        let mut sum = 0.0;
        for epoch in 0..40u64 {
            sum += s.epsilon_for(epoch).unwrap();
        }
        assert!((sum - 2.0 * (1.0 - 0.5f64.powi(40))).abs() < 1e-12);
        assert!(sum < 2.0 + 1e-12);
        assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decay_spending_never_exceeds_the_budget() {
        let mut s = BudgetSchedule::exponential_decay(1.0, 0.8).unwrap();
        for epoch in 0..200u64 {
            s.spend_epoch(epoch).unwrap();
        }
        assert!(s.spent() <= s.total() + 1e-12);
        assert!(s.remaining() >= 0.0);
    }

    #[test]
    fn epochs_charge_at_most_once() {
        let mut s = BudgetSchedule::exponential_decay(1.0, 0.5).unwrap();
        s.spend_epoch(3).unwrap();
        assert!(matches!(
            s.spend_epoch(3),
            Err(MechError::EpochAlreadyCharged { epoch: 3 })
        ));
        // Other epochs are unaffected, in any order.
        s.spend_epoch(0).unwrap();
        s.spend_epoch(7).unwrap();
        assert_eq!(s.charged_epochs(), vec![0, 3, 7]);
    }

    #[test]
    fn constructors_validate() {
        assert!(BudgetSchedule::uniform(1.0, 0).is_err());
        assert!(BudgetSchedule::uniform(0.0, 4).is_err());
        assert!(BudgetSchedule::uniform(f64::NAN, 4).is_err());
        assert!(BudgetSchedule::exponential_decay(1.0, 0.0).is_err());
        assert!(BudgetSchedule::exponential_decay(1.0, 1.0).is_err());
        assert!(BudgetSchedule::exponential_decay(1.0, f64::NAN).is_err());
        assert!(BudgetSchedule::new(1.0, SchedulePolicy::Uniform { epochs: 0 }).is_err());
        assert!(BudgetSchedule::new(1.0, SchedulePolicy::ExponentialDecay { decay: 2.0 }).is_err());
    }

    #[test]
    fn underflowed_decay_share_fails_typed() {
        let s = BudgetSchedule::exponential_decay(1.0, 0.5).unwrap();
        // 2^-5000 underflows to zero: typed error, not a zero-ε spend.
        assert!(matches!(
            s.epsilon_for(5_000),
            Err(MechError::InvalidEpsilon(_))
        ));
    }
}
