//! The trivial 1 × 1 synopsis.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{Build, Domain, GeoDataset, Rect, Synopsis};
use dpgrid_mech::LaplaceMechanism;

use crate::Result;

/// The degenerate "grid" of size 1 × 1: release one noisy total count
/// and answer every query by area proportion.
///
/// §IV-A: *"In the extreme case where the dataset is completely uniform
/// … the optimal grid size is 1 × 1."* `FlatCount` is that extreme — the
/// `c → ∞` anchor of Guideline 1 — and doubles as a sanity baseline in
/// the experiments: any method worth releasing should beat it on
/// non-uniform data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatCount {
    domain: Domain,
    epsilon: f64,
    noisy_total: f64,
}

impl FlatCount {
    /// Builds the synopsis: a single Laplace-noised total. Thin
    /// delegation to the uniform [`Build`] trait.
    pub fn build(dataset: &GeoDataset, epsilon: f64, rng: &mut impl Rng) -> Result<Self> {
        <FlatCount as Build>::build(dataset, &epsilon, rng)
    }

    /// The released noisy total.
    pub fn noisy_total(&self) -> f64 {
        self.noisy_total
    }
}

impl Build for FlatCount {
    /// The flat synopsis has no parameters beyond the budget ε itself.
    type Config = f64;

    fn build(dataset: &GeoDataset, epsilon: &f64, rng: &mut impl Rng) -> Result<Self> {
        let mech = LaplaceMechanism::for_count(*epsilon)?;
        Ok(FlatCount {
            domain: *dataset.domain(),
            epsilon: *epsilon,
            noisy_total: mech.randomize(dataset.len() as f64, rng),
        })
    }
}

impl Synopsis for FlatCount {
    fn domain(&self) -> &Domain {
        &self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn answer(&self, query: &Rect) -> f64 {
        self.noisy_total * self.domain.coverage(query)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        vec![(*self.domain.rect(), self.noisy_total)]
    }

    /// The stored total — no cell export needed.
    fn total_estimate(&self) -> f64 {
        self.noisy_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_data_answered_well() {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let ds = generators::uniform(domain, 10_000, &mut rng(1));
        let f = FlatCount::build(&ds, 1.0, &mut rng(2)).unwrap();
        let q = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        // Quarter of the domain → about a quarter of the points; the only
        // errors are sampling variation and one Laplace draw.
        assert!(
            (f.answer(&q) - truth).abs() < 150.0,
            "answer {} truth {truth}",
            f.answer(&q)
        );
    }

    #[test]
    fn rejects_bad_epsilon() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds = generators::uniform(domain, 10, &mut rng(3));
        assert!(FlatCount::build(&ds, 0.0, &mut rng(4)).is_err());
    }

    #[test]
    fn single_cell() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds = generators::uniform(domain, 100, &mut rng(5));
        let f = FlatCount::build(&ds, 1e9, &mut rng(6)).unwrap();
        assert_eq!(f.cells().len(), 1);
        assert!((f.noisy_total() - 100.0).abs() < 1e-3);
        assert!((f.total_estimate() - 100.0).abs() < 1e-3);
    }
}
