//! Server-side transport counters, shared by both server modes.
//!
//! Counting lives here so the threaded and multiplexed servers report
//! through one vocabulary: a [`TransportCounters`] cell the transport
//! increments, snapshotted into the wire-visible
//! [`dpgrid_serve::TransportStats`], and an [`Instrumented`] service
//! wrapper that splices the snapshot into every `Stats` response —
//! additively, so a tier that aggregates engines *and* fronts them
//! with servers sums both layers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpgrid_serve::{
    EngineStats, QueryRequest, QueryResponse, QueryService, TransportStats, WindowAnswer,
    WindowQuery,
};

/// Live transport counters — one cell per server, touched from every
/// connection (relaxed atomics: these are monotone statistics, not
/// synchronization).
#[derive(Debug, Default)]
pub(crate) struct TransportCounters {
    pub accepted: AtomicU64,
    pub active: AtomicU64,
    /// Response frames queued/written (the public `frames_served`).
    pub responses: AtomicU64,
    /// Request frames that decoded into a dispatchable body.
    pub frames_decoded: AtomicU64,
    pub read_stalls: AtomicU64,
    pub write_stalls: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Individual LDP reports acknowledged on the write path — the sum
    /// of every `Report` ack's `accepted` count (a rejected batch
    /// answers an error frame and counts nothing), kept apart from
    /// `frames_decoded`, which counts request frames regardless of
    /// kind or batch size.
    pub reports_accepted: AtomicU64,
}

impl TransportCounters {
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a dispatched response that acknowledged a `Report`
    /// batch — called at every dispatch site (both codecs, both server
    /// modes) so the write path is visible in `Stats` wherever it
    /// entered.
    pub fn count_report_ack(&self, response: &dpgrid_serve::wire::WireResponse) {
        if let dpgrid_serve::wire::ResponseBody::Report(ack) = &response.body {
            self.add(&self.reports_accepted, ack.accepted);
        }
    }

    /// The wire-visible snapshot.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            read_stalls: self.read_stalls.load(Ordering::Relaxed),
            write_stalls: self.write_stalls.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            reports_accepted: self.reports_accepted.load(Ordering::Relaxed),
        }
    }
}

/// Wraps the served [`QueryService`] so `Stats` responses carry this
/// server's transport counters. Everything else forwards untouched —
/// including [`QueryService::window`], so a service with a native
/// window path (a remote shard) keeps it.
pub(crate) struct Instrumented<S: ?Sized> {
    counters: Arc<TransportCounters>,
    inner: Arc<S>,
}

impl<S: ?Sized> Instrumented<S> {
    pub fn new(inner: Arc<S>, counters: Arc<TransportCounters>) -> Self {
        Instrumented { counters, inner }
    }
}

impl<S: QueryService + ?Sized> QueryService for Instrumented<S> {
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<dpgrid_serve::Result<QueryResponse>> {
        self.inner.answer_batch(requests)
    }

    fn stats(&self) -> EngineStats {
        let mut stats = self.inner.stats();
        let transport = self.counters.snapshot();
        stats.transport = Some(match stats.transport {
            // A service that already reports transport traffic (a
            // router over remote shards) adds this server's on top.
            Some(inner) => inner.merge(&transport),
            None => transport,
        });
        stats
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn window(&self, query: &WindowQuery) -> dpgrid_serve::Result<WindowAnswer> {
        self.inner.window(query)
    }

    fn reports(&self) -> Option<&dyn dpgrid_serve::ReportService> {
        self.inner.reports()
    }
}
