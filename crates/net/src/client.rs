//! The blocking client: one TCP connection speaking the wire protocol.
//!
//! A [`TcpClient`] issues one request frame at a time and blocks for
//! the matching response (ids are checked, so a desynchronised
//! connection fails loudly instead of mismatching answers) — or, over
//! the binary codec, pipelines many id-correlated frames before
//! draining their responses ([`TcpClient::query_pipelined`]). It is
//! deliberately not `Sync` — open one client per thread (or pool
//! clients with [`crate::TcpClientPool`]); the server side is built
//! for many cheap connections.
//!
//! # Protocol negotiation
//!
//! Every fresh connection starts in JSON v1 and immediately offers
//! the binary codec with a `Hello` frame (unless capped to v1 via
//! [`TcpClient::connect_with_protocol`]). A v2-capable server acks and
//! the connection switches to binary framing; an old server rejects
//! the unknown request kind as `MalformedRequest`, which per the
//! versioning policy means "v1 only" — the client falls back
//! silently. The negotiated version is per *connection*, not per
//! client: reconnection always re-handshakes, so a client that
//! negotiated v2 against one server instance cannot desync framing
//! against a restarted v1-only instance.
//!
//! # Reconnection
//!
//! The client remembers the address it connected to and, when a call
//! finds the connection *stale* — broken pipe, reset, or EOF where a
//! response was due, the signature of a server restart or an idle
//! timeout — it reconnects (re-negotiating the protocol from scratch)
//! and resends that frame **once** before surfacing a [`NetError`].
//! One retry is safe because the read-path requests are all
//! idempotent (queries, stats, keys, ping); it is capped at one so a
//! dead server fails fast instead of retry-looping. The write path is
//! the deliberate exception: `Report` batches mutate collector state,
//! so [`TcpClient::submit_report`] and [`TcpClient::submit_reports`]
//! never resend — a connection that dies mid-submit surfaces the
//! error and lets the caller decide whether re-submitting could
//! double-count. A client that has surfaced an error reconnects
//! lazily on its next call, so long-lived clients ride out server
//! restarts without being rebuilt.

use std::borrow::Borrow;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use dpgrid_geo::Rect;
use dpgrid_serve::wire::{
    binary, ErrorCode, HelloOffer, RequestBody, ResponseBody, WireError, WireQuery, WireRect,
    WireReportBatch, WireRequest, WireResponse, WireWindow,
};
use dpgrid_serve::{
    EngineStats, QueryRequest, QueryResponse, ReportAck, ReportBatch, WindowAnswer,
};

use std::time::Duration;

use crate::error::{NetError, Result};

/// How long a dial may block before it fails — a silently dropping
/// host (no RST) must not hang callers for the OS default of minutes.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Default bound on one response wait (and one blocking write). A hung
/// server surfaces a timeout error instead of stalling the caller —
/// and with it every router batch scattered through this connection.
/// Generous: the slowest legitimate responses (a cold compile of a
/// huge surface behind a multi-thousand-rect batch) finish well under
/// it. Tune or disable per client with [`TcpClient::with_io_timeout`].
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// The request id negotiation frames travel under. Connection-level,
/// never allocated to an application request (those start at 1).
const HELLO_ID: u64 = 0;

/// One live connection: buffered reader/writer halves of a stream,
/// the protocol version its `Hello` exchange negotiated, and the
/// reusable buffers binary framing encodes into (cleared, never
/// shrunk — steady-state encoding allocates nothing).
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The codec this connection speaks: [`wire::PROTOCOL_VERSION`]
    /// (JSON lines) or [`binary::PROTOCOL_VERSION`] (length-prefixed
    /// binary). Lives here, not on the client, so a redial can never
    /// carry a stale negotiation onto a fresh connection.
    ///
    /// [`wire::PROTOCOL_VERSION`]: dpgrid_serve::wire::PROTOCOL_VERSION
    protocol: u32,
    /// Outbound frame bytes (payload of one frame, or many whole
    /// frames when pipelining).
    out_buf: Vec<u8>,
    /// Inbound payload bytes of the response being decoded.
    in_buf: Vec<u8>,
    /// Scratch for converting `Rect`s to wire rects without a fresh
    /// allocation per pipelined frame.
    rect_scratch: Vec<WireRect>,
}

impl Conn {
    fn open(addr: SocketAddr, io_timeout: Option<Duration>, max_protocol: u32) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let mut conn = Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            protocol: dpgrid_serve::wire::PROTOCOL_VERSION,
            out_buf: Vec::new(),
            in_buf: Vec::new(),
            rect_scratch: Vec::new(),
        };
        if max_protocol >= binary::PROTOCOL_VERSION {
            conn.negotiate(max_protocol)?;
        }
        Ok(conn)
    }

    /// Offers the binary codec and adopts whatever the server acks.
    /// A pre-`Hello` server rejects the unknown request kind as
    /// `MalformedRequest` — per the versioning policy that means
    /// "v1 only", so it is a successful (if modest) negotiation, not
    /// an error.
    fn negotiate(&mut self, max_protocol: u32) -> Result<()> {
        let offer = WireRequest::new(
            HELLO_ID,
            RequestBody::Hello(HelloOffer {
                max_version: max_protocol,
            }),
        );
        let response = self.roundtrip_json(&offer.encode())?;
        match response.body {
            ResponseBody::Hello(ack) => {
                if ack.version > max_protocol || ack.version < dpgrid_serve::wire::PROTOCOL_VERSION
                {
                    return Err(NetError::Protocol(format!(
                        "server acked protocol {} outside the offered range 1..={max_protocol}",
                        ack.version
                    )));
                }
                self.protocol = ack.version;
                Ok(())
            }
            ResponseBody::Error(e) if e.code == ErrorCode::MalformedRequest => Ok(()),
            ResponseBody::Error(e) => Err(NetError::Server(e)),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// One frame exchange over whichever codec this connection speaks.
    fn exchange(&mut self, body: &RequestBody, id: u64) -> Result<ResponseBody> {
        let response = if self.protocol == binary::PROTOCOL_VERSION {
            self.roundtrip_binary(body, id)?
        } else {
            let frame = WireRequest::new(id, body.clone()).encode();
            // Refuse to send a frame the server is guaranteed to
            // reject (and punish with a mid-write close a retry would
            // only run into again): fail typed and attributable,
            // connection intact.
            if frame.len() + 1 > dpgrid_serve::wire::MAX_FRAME_BYTES {
                return Err(NetError::Protocol(format!(
                    "request frame of {} bytes exceeds the protocol's {} byte cap; \
                     split the batch",
                    frame.len() + 1,
                    dpgrid_serve::wire::MAX_FRAME_BYTES
                )));
            }
            self.roundtrip_json(&frame)?
        };
        // Typed server errors win over the id check: a frame the
        // server could not attribute (oversized, unparseable) is
        // reported under id 0, and this path is strictly
        // request-response, so any error frame belongs to the
        // in-flight request.
        match response.body {
            ResponseBody::Error(e) => Err(NetError::Server(e)),
            body if response.id == id => Ok(body),
            _ => Err(NetError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            ))),
        }
    }

    /// Writes one JSON line and reads the response line.
    fn roundtrip_json(&mut self, frame: &str) -> Result<WireResponse> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(NetError::Disconnected);
        }
        WireResponse::decode(line.trim_end_matches(['\r', '\n']))
            .map_err(|e| NetError::Protocol(e.error.to_string()))
    }

    /// Writes one binary frame and reads the binary response.
    fn roundtrip_binary(&mut self, body: &RequestBody, id: u64) -> Result<WireResponse> {
        let frame_type = binary::encode_request_payload(body, &mut self.out_buf)
            .map_err(|e| NetError::Protocol(e.to_string()))?;
        let header = binary::encode_header(frame_type, id, self.out_buf.len());
        self.writer.write_all(&header)?;
        self.writer.write_all(&self.out_buf)?;
        self.writer.flush()?;
        self.read_binary_response()
    }

    /// Reads one binary response frame (header, then exactly the
    /// declared payload) into the reusable inbound buffer.
    fn read_binary_response(&mut self) -> Result<WireResponse> {
        let mut header_buf = [0u8; binary::HEADER_BYTES];
        self.reader.read_exact(&mut header_buf)?;
        let header =
            binary::decode_header(&header_buf).map_err(|e| NetError::Protocol(e.to_string()))?;
        self.in_buf.clear();
        self.in_buf.resize(header.payload_len, 0);
        self.reader.read_exact(&mut self.in_buf)?;
        binary::decode_response(&header, &self.in_buf)
            .map_err(|e| NetError::Protocol(e.to_string()))
    }

    /// Encodes all `requests` as id-correlated Query frames into one
    /// buffer, ships them with a single write, then drains the
    /// responses in order. Sound because the server answers each
    /// connection's frames sequentially, in arrival order — response
    /// `i` is always the answer to frame `i`.
    fn pipeline_binary(
        &mut self,
        requests: &[QueryRequest],
        first_id: u64,
    ) -> Result<Vec<std::result::Result<QueryResponse, WireError>>> {
        self.out_buf.clear();
        for (i, request) in requests.iter().enumerate() {
            self.rect_scratch.clear();
            self.rect_scratch
                .extend(request.rects.iter().map(WireRect::from));
            binary::append_query(
                first_id + i as u64,
                &request.release_key,
                &self.rect_scratch,
                &mut self.out_buf,
            )
            .map_err(|e| NetError::Protocol(e.to_string()))?;
        }
        self.writer.get_mut().write_all(&self.out_buf)?;

        let mut results = Vec::with_capacity(requests.len());
        for i in 0..requests.len() {
            let expect = first_id + i as u64;
            let response = self.read_binary_response()?;
            match response.body {
                // A per-frame failure under the frame's own id fails
                // only its slot; the drain continues in lockstep.
                ResponseBody::Error(e) if response.id == expect => results.push(Err(e)),
                // An error the server could not attribute (id 0 or
                // otherwise off-sequence) means the lockstep is gone:
                // fail the whole call as a framing problem so the
                // connection is poisoned, not reused desynchronised.
                ResponseBody::Error(e) => {
                    return Err(NetError::Protocol(format!(
                        "pipelined frame {expect} got server error under id {}: {e}",
                        response.id
                    )));
                }
                ResponseBody::Answers(a) if response.id == expect => {
                    results.push(Ok(a.into_response()));
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "pipelined frame {expect} got {other:?} under id {}",
                        response.id
                    )));
                }
            }
        }
        Ok(results)
    }

    /// Encodes all `batches` as id-correlated Report frames, ships
    /// them in one write, then drains the acks in order — the same
    /// lockstep contract as [`Conn::pipeline_binary`]. Encoding is
    /// all-or-nothing *before* the write: a batch the binary codec
    /// refuses (unknown oracle string) fails the call with zero bytes
    /// sent, so nothing is half-applied.
    fn pipeline_reports<B: Borrow<ReportBatch>>(
        &mut self,
        batches: &[B],
        first_id: u64,
    ) -> Result<Vec<std::result::Result<ReportAck, WireError>>> {
        self.out_buf.clear();
        for (i, batch) in batches.iter().enumerate() {
            let wire = WireReportBatch::from_batch(batch.borrow());
            binary::append_report(first_id + i as u64, &wire, &mut self.out_buf)
                .map_err(|e| NetError::Protocol(e.to_string()))?;
        }
        self.writer.get_mut().write_all(&self.out_buf)?;

        let mut results = Vec::with_capacity(batches.len());
        for i in 0..batches.len() {
            let expect = first_id + i as u64;
            let response = self.read_binary_response()?;
            match response.body {
                // A rejected batch (sealed epoch, ε mismatch, a
                // pre-`Report` server's `MalformedRequest`) fails only
                // its slot; the drain continues in lockstep.
                ResponseBody::Error(e) if response.id == expect => results.push(Err(e)),
                ResponseBody::Error(e) => {
                    return Err(NetError::Protocol(format!(
                        "pipelined report {expect} got server error under id {}: {e}",
                        response.id
                    )));
                }
                ResponseBody::Report(ack) if response.id == expect => {
                    results.push(Ok(ack.into_ack()));
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "pipelined report {expect} got {other:?} under id {}",
                        response.id
                    )));
                }
            }
        }
        Ok(results)
    }
}

/// A blocking connection to a [`crate::TcpServer`] (or anything else
/// speaking the wire protocol), with per-connection protocol
/// negotiation (binary v2 where the server supports it, JSON v1
/// otherwise), one-shot reconnection on stale connections and bounded
/// waits (see [`CONNECT_TIMEOUT`] / [`DEFAULT_IO_TIMEOUT`]).
#[derive(Debug)]
pub struct TcpClient {
    peer: SocketAddr,
    conn: Option<Conn>,
    io_timeout: Option<Duration>,
    max_protocol: u32,
    next_id: u64,
}

impl TcpClient {
    /// Connects to `addr`, offering the binary codec (the server may
    /// negotiate down to JSON v1). When `addr` resolves to several
    /// addresses the first that connects wins, and that concrete
    /// address is what reconnection later dials.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::connect_with_protocol(addr, binary::PROTOCOL_VERSION)
    }

    /// Connects offering at most `max_protocol` —
    /// `connect_with_protocol(addr, 1)` pins a pure JSON v1 client
    /// (no `Hello` is sent at all, exactly like a pre-negotiation
    /// client), which is also what to use against servers that
    /// predate the `Keys` request (their `MalformedRequest` reply to
    /// `Hello` is indistinguishable from "v1 only").
    pub fn connect_with_protocol(addr: impl ToSocketAddrs, max_protocol: u32) -> Result<Self> {
        let io_timeout = Some(DEFAULT_IO_TIMEOUT);
        let mut last_err: Option<NetError> = None;
        for candidate in addr.to_socket_addrs()? {
            match Conn::open(candidate, io_timeout, max_protocol) {
                Ok(conn) => {
                    return Ok(TcpClient {
                        peer: candidate,
                        conn: Some(conn),
                        io_timeout,
                        max_protocol,
                        next_id: 1,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        }))
    }

    /// Bounds each blocking read/write (`None` waits forever, the
    /// pre-timeout behaviour). A wait that exceeds the bound surfaces
    /// a timeout [`NetError::Io`] and poisons the connection — it is
    /// *not* retried, since the server may be alive but slow and a
    /// retry would just wait again.
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Result<Self> {
        self.io_timeout = timeout;
        if let Some(conn) = &self.conn {
            let stream = conn.reader.get_ref();
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
        }
        Ok(self)
    }

    /// The concrete peer address this client dials (and redials).
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Whether a connection is currently open (a client that surfaced
    /// a transport error holds none until its next call reconnects).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// The protocol version the current connection negotiated: 1
    /// (JSON) or 2 (binary). `None` when no connection is held — the
    /// next call's fresh connection negotiates from scratch, so a
    /// past connection's version says nothing about the next one.
    pub fn protocol_version(&self) -> Option<u32> {
        self.conn.as_ref().map(|c| c.protocol)
    }

    /// Round-trips a liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the server's engine counters.
    pub fn stats(&mut self) -> Result<EngineStats> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Fetches the server's advertised release keys (sorted). A
    /// pre-`Keys` server answers with a `MalformedRequest` wire error —
    /// treat it as "feature unsupported", per the versioning policy.
    pub fn keys(&mut self) -> Result<Vec<String>> {
        match self.call(RequestBody::Keys)? {
            ResponseBody::Keys(keys) => Ok(keys),
            other => Err(unexpected("Keys", &other)),
        }
    }

    /// Answers `rects` against the release under `key`. Server-side
    /// failures (unknown key, invalid rect, overload) come back as
    /// [`NetError::Server`] with a stable error code.
    pub fn query(&mut self, key: &str, rects: &[Rect]) -> Result<QueryResponse> {
        let query = WireQuery {
            release_key: key.to_string(),
            rects: rects.iter().map(WireRect::from).collect(),
        };
        match self.call(RequestBody::Query(query))? {
            ResponseBody::Answers(answers) => Ok(answers.into_response()),
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Answers a sliding-window query: the server sums `keyspace`'s
    /// released epoch surfaces over the half-open epoch range
    /// `[epoch_start, epoch_end)` for each rectangle — see
    /// [`dpgrid_serve::window`] for the coverage contract. The answer
    /// reports exactly which epoch ranges were summed (compacted
    /// tiers widen coverage visibly). A window touching no retained
    /// epoch fails with an `UnknownKey` wire error naming the missing
    /// range; a pre-`Window` server answers `MalformedRequest` —
    /// treat it as "feature unsupported", per the versioning policy.
    pub fn window(
        &mut self,
        keyspace: &str,
        epoch_start: u64,
        epoch_end: u64,
        rects: &[Rect],
    ) -> Result<WindowAnswer> {
        let window = WireWindow {
            keyspace: keyspace.to_string(),
            epoch_start,
            epoch_end,
            rects: rects.iter().map(WireRect::from).collect(),
        };
        match self.call(RequestBody::Window(window))? {
            ResponseBody::Window(answers) => answers
                .into_answer()
                .map_err(|e| NetError::Protocol(e.to_string())),
            other => Err(unexpected("Window", &other)),
        }
    }

    /// Submits one batch of locally-perturbed reports to the server's
    /// collector and blocks for the ack. Typed collector rejections
    /// (sealed epoch, ε mismatch, overflow) come back as
    /// [`NetError::Server`]; a pre-`Report` server answers
    /// `MalformedRequest` — treat it as "feature unsupported", per the
    /// versioning policy.
    ///
    /// Unlike the read-path calls this is **never resent**: a report
    /// batch mutates collector state, and a connection that dies after
    /// the frame was written may or may not have been applied. The
    /// error is surfaced (and the connection poisoned) so the caller —
    /// who knows whether their reports are deduplicable — decides
    /// whether to re-submit.
    pub fn submit_report(&mut self, batch: &ReportBatch) -> Result<ReportAck> {
        let body = RequestBody::Report(WireReportBatch::from_batch(batch));
        match self.call_mutating(body)? {
            ResponseBody::Report(ack) => Ok(ack.into_ack()),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// Submits several report batches by **pipelining** one Report
    /// frame per batch over the binary codec: all frames ship in a
    /// single write, then the acks are drained in order, so the
    /// socket stays busy instead of ping-ponging per batch — this is
    /// the ingestion fast path. On a connection that negotiated down
    /// to JSON v1 it degrades to sequential per-batch round trips
    /// (same semantics, more round trips). Per-batch rejections are
    /// isolated in the inner results; the outer `Result` is the
    /// transport.
    ///
    /// Like [`TcpClient::submit_report`] this is never resent on a
    /// stale connection — see there for why. On a transport error the
    /// caller learns nothing about *which* of the in-flight batches
    /// were applied; keep batches per-epoch-idempotent (or count on
    /// the ack's `epoch_total`) if that matters.
    pub fn submit_reports<B: Borrow<ReportBatch>>(
        &mut self,
        batches: &[B],
    ) -> Result<Vec<std::result::Result<ReportAck, WireError>>> {
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let first_id = self.next_id;
        self.next_id += batches.len() as u64;
        if self.conn.is_none() {
            self.conn = Some(Conn::open(self.peer, self.io_timeout, self.max_protocol)?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let result = if conn.protocol == binary::PROTOCOL_VERSION {
            conn.pipeline_reports(batches, first_id)
        } else {
            // JSON v1 fallback: sequential frames, rejections still
            // isolated per batch so one sealed epoch doesn't mask the
            // acks around it.
            let mut results = Vec::with_capacity(batches.len());
            let mut sequential = || {
                for (i, batch) in batches.iter().enumerate() {
                    let body = RequestBody::Report(WireReportBatch::from_batch(batch.borrow()));
                    match conn.exchange(&body, first_id + i as u64) {
                        Ok(ResponseBody::Report(ack)) => results.push(Ok(ack.into_ack())),
                        Ok(other) => return Err(unexpected("Report", &other)),
                        Err(NetError::Server(e)) => results.push(Err(e)),
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            };
            sequential().map(|()| results)
        };
        if matches!(result, Err(ref e) if !matches!(e, NetError::Server(_))) {
            self.conn = None;
        }
        result
    }

    /// Answers several requests (possibly across releases) in one
    /// round trip. The outer `Result` is the transport; each inner
    /// result is that query's own outcome, failures isolated exactly
    /// as in [`dpgrid_serve::QueryEngine::answer_batch`].
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<std::result::Result<QueryResponse, WireError>>> {
        let queries = requests.iter().map(WireQuery::from_request).collect();
        match self.call(RequestBody::Batch(queries))? {
            ResponseBody::Batch(outcomes) => {
                if outcomes.len() != requests.len() {
                    return Err(NetError::Protocol(format!(
                        "batch of {} queries got {} outcomes",
                        requests.len(),
                        outcomes.len()
                    )));
                }
                Ok(outcomes
                    .into_iter()
                    .map(|outcome| match outcome {
                        dpgrid_serve::wire::WireOutcome::Answered(a) => Ok(a.into_response()),
                        dpgrid_serve::wire::WireOutcome::Failed(e) => Err(e),
                    })
                    .collect())
            }
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Answers several requests by **pipelining** one Query frame per
    /// request: all frames are encoded into one buffer and shipped in
    /// a single write, then the responses are drained in order — the
    /// socket stays busy instead of ping-ponging per request, which
    /// is what keeps a shard router's scatter leg fed. Failures are
    /// isolated per request exactly as in [`TcpClient::query_batch`].
    ///
    /// Pipelining needs the binary codec's id-correlated frames; on a
    /// connection that negotiated down to JSON v1 this degrades to
    /// one `Batch` frame (same semantics, still one round trip). The
    /// stale-connection retry covers the whole pipeline: ids are
    /// re-issued on the fresh connection, and reads are idempotent.
    pub fn query_pipelined(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<std::result::Result<QueryResponse, WireError>>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let first_id = self.next_id;
        self.next_id += requests.len() as u64;
        match self.pipeline_exchange(requests, first_id) {
            Err(e) if is_stale_connection(&e) => {
                self.conn = None;
                let retried = self.pipeline_exchange(requests, first_id);
                if matches!(retried, Err(ref e) if !matches!(e, NetError::Server(_))) {
                    self.conn = None;
                }
                retried
            }
            Err(e) => {
                if !matches!(e, NetError::Server(_)) {
                    self.conn = None;
                }
                Err(e)
            }
            ok => ok,
        }
    }

    fn pipeline_exchange(
        &mut self,
        requests: &[QueryRequest],
        first_id: u64,
    ) -> Result<Vec<std::result::Result<QueryResponse, WireError>>> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(self.peer, self.io_timeout, self.max_protocol)?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        if conn.protocol == binary::PROTOCOL_VERSION {
            return conn.pipeline_binary(requests, first_id);
        }
        // JSON v1 fallback: one batch frame under the first id.
        let queries = requests.iter().map(WireQuery::from_request).collect();
        match conn.exchange(&RequestBody::Batch(queries), first_id)? {
            ResponseBody::Batch(outcomes) => {
                if outcomes.len() != requests.len() {
                    return Err(NetError::Protocol(format!(
                        "batch of {} queries got {} outcomes",
                        requests.len(),
                        outcomes.len()
                    )));
                }
                Ok(outcomes
                    .into_iter()
                    .map(|outcome| match outcome {
                        dpgrid_serve::wire::WireOutcome::Answered(a) => Ok(a.into_response()),
                        dpgrid_serve::wire::WireOutcome::Failed(e) => Err(e),
                    })
                    .collect())
            }
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Sends one frame and blocks for its response. A *stale*
    /// connection (the server went away between calls: broken pipe,
    /// reset, EOF in place of a response) is redialed — which
    /// re-negotiates the protocol from scratch — and the frame resent
    /// exactly once; every request routed through here is an
    /// idempotent read (mutating `Report` frames go through
    /// [`TcpClient::call_mutating`] instead), so the retry cannot
    /// double-apply anything.
    fn call(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let id = self.next_id;
        self.next_id += 1;
        match self.exchange(&body, id) {
            Err(e) if is_stale_connection(&e) => {
                self.conn = None;
                let retried = self.exchange(&body, id);
                if matches!(retried, Err(ref e) if !matches!(e, NetError::Server(_))) {
                    self.conn = None;
                }
                retried
            }
            Err(e) => {
                // Transport and framing errors poison the connection
                // (a desynchronised stream must not serve the next
                // call); typed server errors leave it healthy.
                if !matches!(e, NetError::Server(_)) {
                    self.conn = None;
                }
                Err(e)
            }
            ok => ok,
        }
    }

    /// [`TcpClient::call`] without the stale-connection resend, for
    /// requests that mutate server state: a fresh connection is still
    /// opened when none is held (no bytes of this request have been
    /// written yet, so that dial risks nothing), but once the frame is
    /// on the wire any failure surfaces to the caller.
    fn call_mutating(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let id = self.next_id;
        self.next_id += 1;
        let result = self.exchange(&body, id);
        if matches!(result, Err(ref e) if !matches!(e, NetError::Server(_))) {
            self.conn = None;
        }
        result
    }

    /// One round trip on the current connection, opening (and
    /// negotiating) a fresh one if none is held.
    fn exchange(&mut self, body: &RequestBody, id: u64) -> Result<ResponseBody> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(self.peer, self.io_timeout, self.max_protocol)?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        conn.exchange(body, id)
    }
}

/// Whether an error means "the connection died under us" — the cases a
/// single redial-and-resend can fix (server restart, idle reap), as
/// opposed to a live server actively answering with an error.
fn is_stale_connection(e: &NetError) -> bool {
    match e {
        NetError::Disconnected => true,
        NetError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::NotConnected
                | std::io::ErrorKind::UnexpectedEof
        ),
        NetError::Protocol(_) | NetError::Server(_) => false,
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
