//! Double-compilation regression: a release's surface is compiled
//! exactly once per residency, however it is reached.
//!
//! Counted through `dpgrid::core::surface::compile_count()`, which
//! tallies every `CompiledSurface::compile` in the process — so this
//! file deliberately holds a SINGLE test: it is the only test binary
//! whose counter deltas are race-free by construction (one process,
//! one test, no concurrent compilations). Do not add further `#[test]`
//! functions here; they would run in parallel and corrupt the deltas.

use std::sync::Arc;

use dpgrid::core::surface::compile_count;
use dpgrid::prelude::*;
use dpgrid::serve::CacheState;

/// Asserts `f` performs exactly `expected` surface compilations.
fn counting<T>(expected: u64, what: &str, f: impl FnOnce() -> T) -> T {
    let before = compile_count();
    let out = f();
    let compiled = compile_count() - before;
    assert_eq!(compiled, expected, "{what}: {compiled} compilations");
    out
}

#[test]
fn every_path_compiles_exactly_once() {
    let dataset = PaperDataset::Storage.generate_n(5, 3_000).unwrap();
    let release = Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ag_suggested())
        .seed(5)
        .publish()
        .unwrap();
    let path = std::env::temp_dir().join("dpgrid_compile_once.json");
    release.save(&path).unwrap();
    let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();

    // The satellite regression itself: load -> surface -> clone ->
    // surface compiles exactly once, and both handles are one index.
    let (loaded, first) = counting(1, "load -> surface", || {
        let loaded = Release::load(&path).unwrap();
        let first = loaded.shared_surface();
        (loaded, first)
    });
    counting(0, "clone -> surface reuses the shared index", || {
        let cloned = loaded.clone();
        assert!(Arc::ptr_eq(&first, &cloned.shared_surface()));
        assert!(Arc::ptr_eq(&first, &loaded.shared_surface()));
        assert_eq!(cloned.answer(&q), loaded.answer(&q));
    });

    // Pre-Arc, `Release::answer`, `answer_all` and `surface()` each
    // worked off the same cache but a *cloned* release recompiled.
    // Now every read path shares one compilation.
    counting(0, "answer/answer_all/surface on a warm release", || {
        loaded.answer(&q);
        loaded.answer_all(&[q, q]);
        loaded.surface();
    });

    // Serving stack: a catalog lookup compiles a cold release once;
    // warm lookups, engine answers and batches never recompile.
    let mut catalog = Catalog::new();
    counting(0, "insert moves the release without compiling", || {
        catalog.insert("fresh", Release::load(&path).unwrap());
    });
    counting(1, "first catalog lookup", || {
        assert_eq!(catalog.surface("fresh").unwrap().cache, CacheState::Cold);
    });
    let engine = counting(0, "warm lookups and engine answers", || {
        assert_eq!(catalog.surface("fresh").unwrap().cache, CacheState::Warm);
        let engine = QueryEngine::new(catalog);
        let req = QueryRequest::new("fresh", vec![q, q, q]);
        engine.answer(&req).unwrap();
        let batch: Vec<QueryRequest> = (0..6).map(|_| req.clone()).collect();
        for response in engine.answer_batch(&batch) {
            assert_eq!(response.unwrap().cache, CacheState::Warm);
        }
        engine
    });

    // Eviction is the only way back to cold: shrink residency by
    // inserting and touching a second release, then confirm the
    // recompile happens once, on the next touch only.
    counting(1, "evicted key recompiles once", || {
        engine.with_catalog(|catalog| {
            let mut release = catalog.remove("fresh").unwrap();
            assert!(release.evict_surface().is_some());
            catalog.insert("fresh", release);
        });
        let handle = engine
            .with_catalog(|catalog| catalog.surface("fresh"))
            .unwrap();
        assert_eq!(handle.cache, CacheState::Cold);
    });

    let _ = std::fs::remove_file(&path);
}
