//! Loopback TCP serving throughput — the acceptance benchmark of the
//! `dpgrid-net` transport.
//!
//! Builds three releases (two lattice-path uniform grids and one
//! band-path adaptive grid) over the 100k-point landmark dataset,
//! serves them through a `TcpServer` over a `QueryEngine`, and
//! measures end-to-end queries/sec through real loopback sockets —
//! frame encode, TCP round trip, boundary validation, engine answer,
//! frame decode — under the three axes that matter for a serving
//! transport:
//!
//! * **server mode**: the readiness-multiplexed default vs the
//!   thread-per-connection reference (`ServerMode`), every row tagged
//!   with which one it ran against;
//! * **concurrency**: 1, 16 and 64 concurrent client connections,
//!   plus an *idle-crowd* row — the busy measurement repeated with 256
//!   idle connections parked on the same server, which prices what a
//!   mostly-idle connection costs each backend;
//! * **codec × pipelining**: JSON v1 frames, binary v2 frames, binary
//!   v2 with all of a connection's frames written in one burst.
//!
//! Every row records the protocol version its clients actually
//! negotiated. Medians are recorded to `BENCH_net_throughput.json` at
//! the workspace root (same shape as `BENCH_serve_throughput.json`) so
//! the transport perf trajectory is tracked in-repo. The in-process
//! `warm_w1` row of `BENCH_serve_throughput.json` is the natural
//! baseline: the gap between the two files is the price of the wire.

use criterion::{criterion_group, criterion_main, Criterion};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{AdaptiveGrid, AgConfig, Release, UgConfig, UniformGrid};
use dpgrid_geo::Rect;
use dpgrid_net::{ServerMode, TcpClient, TcpServer};
use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
use rand::Rng;

const N: usize = 100_000;
const EPS: f64 = 1.0;
/// Rectangles per request frame.
const RECTS_PER_REQUEST: usize = 512;
/// Frames each connection sends per measured pass.
const FRAMES_PER_CONN: usize = 8;
/// Parked connections for the idle-crowd rows.
const IDLE_CROWD: usize = 256;

fn serve_releases() -> Vec<(String, Release)> {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    let mut out = Vec::new();
    for m in [128usize, 512] {
        let ug = UniformGrid::build(&dataset, &UgConfig::fixed(EPS, m), &mut rng).unwrap();
        out.push((format!("ug_m{m}"), Release::from_synopsis("UG", &ug)));
    }
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap();
    out.push(("ag_guideline".into(), Release::from_synopsis("AG", &ag)));
    out
}

/// A mixed query load over the landmark domain `[-130, -70] × [10, 50]`.
fn request_rects() -> Vec<Rect> {
    let mut rng = bench_rng();
    (0..RECTS_PER_REQUEST)
        .map(|i| match i % 16 {
            0 => Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap(),
            1 => Rect::new(-100.1, 10.0, -99.9, 50.0).unwrap(),
            _ => {
                let x = rng.random_range(-130.0..-75.0);
                let y = rng.random_range(10.0..46.0);
                let w = rng.random_range(0.5..5.0);
                let h = rng.random_range(0.5..4.0);
                Rect::new(x, y, x + w, y + h).unwrap()
            }
        })
        .collect()
}

/// One measured configuration: which protocol the clients offer and
/// whether a connection's frames go out one-at-a-time or as one
/// pipelined burst.
#[derive(Clone, Copy)]
struct Variant {
    tag: &'static str,
    max_protocol: u32,
    pipelined: bool,
}

const V1: Variant = Variant {
    tag: "v1",
    max_protocol: 1,
    pipelined: false,
};
const V2: Variant = Variant {
    tag: "v2",
    max_protocol: 2,
    pipelined: false,
};
const V2_PIPE: Variant = Variant {
    tag: "v2_pipe",
    max_protocol: 2,
    pipelined: true,
};

/// The measured concurrency ladder: the full codec matrix at one
/// connection (where per-frame cost dominates), the binary variants at
/// 16 and the pipelined one at 64 (where scheduling dominates and the
/// codec question is already settled).
const LADDER: [(usize, &[Variant]); 3] = [
    (1, &[V1, V2, V2_PIPE]),
    (16, &[V2, V2_PIPE]),
    (64, &[V2_PIPE]),
];

/// One pass: `conns` client threads, each sending `FRAMES_PER_CONN`
/// query frames round-robin across the release keys — one round trip
/// per frame, or all frames in one pipelined burst. Returns elapsed
/// nanoseconds for the whole pass.
fn pass_ns(
    addr: std::net::SocketAddr,
    keys: &[String],
    rects: &[Rect],
    conns: usize,
    variant: Variant,
) -> f64 {
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..conns {
            scope.spawn(move || {
                let mut client =
                    TcpClient::connect_with_protocol(addr, variant.max_protocol).expect("connect");
                if variant.pipelined {
                    let requests: Vec<QueryRequest> = (0..FRAMES_PER_CONN)
                        .map(|i| {
                            QueryRequest::new(keys[(c + i) % keys.len()].clone(), rects.to_vec())
                        })
                        .collect();
                    for outcome in client.query_pipelined(&requests).expect("pipelined") {
                        assert_eq!(outcome.expect("answered").answers.len(), rects.len());
                    }
                } else {
                    for i in 0..FRAMES_PER_CONN {
                        let key = &keys[(c + i) % keys.len()];
                        let response = client.query(key, rects).expect("answered");
                        assert_eq!(response.answers.len(), rects.len());
                    }
                }
            });
        }
    });
    t.elapsed().as_nanos() as f64
}

/// Median nanoseconds per pass within a small time budget.
fn measure_ns(
    addr: std::net::SocketAddr,
    keys: &[String],
    rects: &[Rect],
    conns: usize,
    variant: Variant,
) -> f64 {
    let mut samples = Vec::new();
    let budget = std::time::Duration::from_millis(1_200);
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        samples.push(pass_ns(addr, keys, rects, conns, variant));
        if samples.len() >= 40 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    label: String,
    server: &'static str,
    conns: usize,
    idle_conns: usize,
    protocol: u32,
    pipelined: bool,
    qps: f64,
    elapsed_ms: f64,
}

fn bench_net_throughput(c: &mut Criterion) {
    let parallelism = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let mut catalog = Catalog::new();
    let mut keys = Vec::new();
    for (key, release) in serve_releases() {
        keys.push(key.clone());
        catalog.insert(key, release);
    }
    let engine = Arc::new(QueryEngine::new(catalog));
    let rects = request_rects();

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("net_throughput");
    for (server_tag, mode) in [
        ("mux", ServerMode::Multiplexed),
        ("threaded", ServerMode::Threaded),
    ] {
        let server =
            TcpServer::bind_with_mode(Arc::clone(&engine), "127.0.0.1:0", mode).expect("bind");
        let addr = server.local_addr();

        // Warmup: compile every surface once so all rows measure warm.
        pass_ns(addr, &keys, &rects, 1, V1);

        let mut measure = |conns: usize, idle_conns: usize, variant: Variant, group: &mut _| {
            // Record what a client under this cap actually negotiates —
            // the row is honest even against a downgrading server.
            let protocol = TcpClient::connect_with_protocol(addr, variant.max_protocol)
                .expect("connect")
                .protocol_version()
                .unwrap_or(1);
            let idle_tag = if idle_conns > 0 {
                format!("_idle{idle_conns}")
            } else {
                String::new()
            };
            let label = format!("{server_tag}_{}_c{conns}{idle_tag}", variant.tag);
            let ns = measure_ns(addr, &keys, &rects, conns, variant);
            let group: &mut criterion::BenchmarkGroup<'_> = group;
            group.bench_function(&label, |b| {
                b.iter(|| pass_ns(addr, &keys, &rects, conns, variant));
            });
            let rects_per_pass = (conns * FRAMES_PER_CONN * RECTS_PER_REQUEST) as f64;
            rows.push(Row {
                label,
                server: server_tag,
                conns,
                idle_conns,
                protocol,
                pipelined: variant.pipelined,
                qps: rects_per_pass / (ns / 1e9),
                elapsed_ms: ns / 1e6,
            });
        };

        for (conns, variants) in LADDER {
            for &variant in variants {
                measure(conns, 0, variant, &mut group);
            }
        }

        // Idle crowd: the c16 pipelined measurement with 256 idle
        // connections parked on the same server. The delta against the
        // plain c16 row is the per-tick price of an idle connection —
        // a registration for the multiplexed backend, a parked polling
        // thread for the threaded one.
        let idle: Vec<TcpStream> = (0..IDLE_CROWD)
            .map(|_| TcpStream::connect(addr).expect("idle connect"))
            .collect();
        measure(16, idle.len(), V2_PIPE, &mut group);
        drop(idle);

        server.shutdown();
    }
    group.finish();

    let c1 = rows.first().map(|r| r.qps).unwrap_or(f64::NAN);
    for r in &rows {
        println!(
            "net_throughput/{}: {} conns (+{} idle), proto v{}{}, {} frames x {} rects, \
             {:.1} ms/pass, {:.0} q/s ({:.2}x vs mux_v1_c1)",
            r.label,
            r.conns,
            r.idle_conns,
            r.protocol,
            if r.pipelined { " pipelined" } else { "" },
            r.conns * FRAMES_PER_CONN,
            RECTS_PER_REQUEST,
            r.elapsed_ms,
            r.qps,
            r.qps / c1
        );
    }
    write_json(&rows, keys.len(), parallelism, c1);
}

/// Records the measurements to `BENCH_net_throughput.json` at the
/// workspace root (perf-trajectory files live in-repo).
fn write_json(rows: &[Row], releases: usize, parallelism: usize, c1: f64) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_net_throughput.json"
    );
    let mut out = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \"unit\": \"queries_per_sec\",\n  \
         \"transport\": \"tcp_loopback\",\n  \"releases\": {releases},\n  \
         \"rects_per_request\": {RECTS_PER_REQUEST},\n  \
         \"frames_per_conn\": {FRAMES_PER_CONN},\n  \
         \"parallelism\": {parallelism},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"server\": \"{}\", \"conns\": {}, \"idle_conns\": {}, \
             \"protocol\": {}, \"pipelined\": {}, \
             \"elapsed_ms\": {:.2}, \"qps\": {:.0}, \"speedup_vs_mux_v1_c1\": {:.2}}}{}\n",
            r.label,
            r.server,
            r.conns,
            r.idle_conns,
            r.protocol,
            r.pipelined,
            r.elapsed_ms,
            r.qps,
            r.qps / c1,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("net_throughput: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_net_throughput);
criterion_main!(benches);
