//! Guideline 1 in action: why `m = √(N·ε/c)` is the right grid size.
//!
//! Sweeps the UG grid size on a fixed dataset, prints the paper's
//! closed-form error model next to the measured error, and shows both
//! minimising at the suggested size.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use dpgrid::core::{analysis, guidelines};
use dpgrid::eval::{evaluate, truth::TruthTable, EvalConfig, QueryWorkload, WorkloadSpec};
use dpgrid::prelude::*;
use rand::SeedableRng;

fn main() {
    let which = PaperDataset::Landmark;
    let n = 200_000;
    let eps = 1.0;
    let dataset = which.generate_n(21, n).expect("generate dataset");
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);

    let suggested = guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
    println!(
        "N = {n}, ε = {eps}: Guideline 1 suggests m = {suggested} (c = {})",
        guidelines::DEFAULT_C
    );

    // Workload and truth.
    let spec = WorkloadSpec::paper(which).with_queries_per_size(100);
    let workload = QueryWorkload::generate(dataset.domain(), &spec, &mut rng).expect("workload");
    let index = PointIndex::build(&dataset);
    let truth = TruthTable::compute(&index, &workload);

    // Sweep m across a wide ladder.
    let sizes: Vec<usize> = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|f| ((suggested as f64 * f).round() as usize).max(2))
        .collect();
    let methods: Vec<Method> = sizes.iter().map(|&m| Method::ug(m)).collect();
    let cfg = EvalConfig::new(eps).with_trials(3).with_seed(5);
    let evals = evaluate(&dataset, &workload, &truth, &methods, &cfg).expect("evaluate");

    // The model: evaluated at a representative query ratio r = 1/16
    // (q4-like) with c0 = c/√2.
    let r = 1.0 / 16.0;
    let c0 = analysis::c0_from_c(guidelines::DEFAULT_C);
    println!(
        "\n{:>6} {:>14} {:>14} {:>14} {:>14}",
        "m", "model noise", "model nonunif", "model total", "measured mean RE"
    );
    for (m, e) in sizes.iter().zip(&evals) {
        let noise = analysis::noise_error_std(r, *m, eps);
        let nonunif = analysis::nonuniformity_error(r, n, *m, c0);
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>14.1} {:>14.4}",
            m,
            noise,
            nonunif,
            noise + nonunif,
            e.rel_profile.mean
        );
    }

    let best = evals
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.rel_profile
                .mean
                .partial_cmp(&b.1.rel_profile.mean)
                .unwrap()
        })
        .map(|(i, _)| sizes[i])
        .unwrap();
    println!(
        "\nmeasured best m = {best}; Guideline 1 suggested {suggested} — \
         within a factor of {:.2}",
        best.max(suggested) as f64 / best.min(suggested) as f64
    );

    // `Method::ug_suggested()` is the registry spelling of that
    // guideline: publishing it records the resolved size in the
    // release metadata, so consumers see the m the build actually used.
    let release = Pipeline::new(&dataset)
        .epsilon(eps)
        .method(Method::ug_suggested())
        .seed(23)
        .publish()
        .expect("publish suggested UG");
    println!(
        "published `{}` — metadata resolved method: {:?}",
        release.method(),
        release.metadata().resolved
    );
}
