//! The validated data domain.

use serde::{Deserialize, Serialize};

use crate::{GeoError, Point, Rect, Result};

/// The two-dimensional domain that all tuples of a dataset live in.
///
/// A `Domain` is a [`Rect`] with strictly positive area plus the bucketing
/// logic shared by every grid method: mapping a point to the cell of an
/// `cols × rows` equi-width grid. Points exactly on the domain's upper
/// edges are admitted and bucketed into the last row/column, matching the
/// closed-domain convention of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    rect: Rect,
}

impl Domain {
    /// Wraps a rectangle as a domain. The rectangle must have positive area.
    pub fn new(rect: Rect) -> Result<Self> {
        if rect.is_empty() {
            return Err(GeoError::EmptyRect);
        }
        Ok(Domain { rect })
    }

    /// Convenience constructor from corner coordinates.
    pub fn from_corners(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self> {
        Domain::new(Rect::new_nonempty(x0, y0, x1, y1)?)
    }

    /// The underlying rectangle.
    #[inline]
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// Domain width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.rect.width()
    }

    /// Domain height.
    #[inline]
    pub fn height(&self) -> f64 {
        self.rect.height()
    }

    /// Domain area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.rect.area()
    }

    /// Whether a point belongs to the domain (closed on upper edges).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.rect.contains_closed(p)
    }

    /// Maps a point to its `(col, row)` cell in a `cols × rows` grid.
    ///
    /// Returns `None` for points outside the domain. Points on the upper
    /// edges are clamped into the last row/column so that the grid covers
    /// the closed domain.
    #[inline]
    pub fn cell_of(&self, p: &Point, cols: usize, rows: usize) -> Option<(usize, usize)> {
        if !self.contains(p) {
            return None;
        }
        debug_assert!(cols > 0 && rows > 0);
        let fx = (p.x - self.rect.x0()) / self.rect.width();
        let fy = (p.y - self.rect.y0()) / self.rect.height();
        let col = ((fx * cols as f64) as usize).min(cols - 1);
        let row = ((fy * rows as f64) as usize).min(rows - 1);
        Some((col, row))
    }

    /// Rectangle of cell `(col, row)` in a `cols × rows` grid over the domain.
    #[inline]
    pub fn cell_rect(&self, cols: usize, rows: usize, col: usize, row: usize) -> Rect {
        self.rect.grid_cell(cols, rows, col, row)
    }

    /// Clips a query rectangle to the domain, returning `None` when the
    /// query misses the domain entirely.
    pub fn clip(&self, query: &Rect) -> Option<Rect> {
        self.rect.intersection(query)
    }

    /// Ratio of the query's (clipped) area to the domain area — the `r` of
    /// the paper's error analysis.
    pub fn coverage(&self, query: &Rect) -> f64 {
        match self.clip(query) {
            Some(c) => c.area() / self.area(),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_domain() -> Domain {
        Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(Domain::from_corners(0.0, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn cell_of_interior() {
        let d = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        assert_eq!(d.cell_of(&Point::new(0.0, 0.0), 10, 10), Some((0, 0)));
        assert_eq!(d.cell_of(&Point::new(5.0, 5.0), 10, 10), Some((5, 5)));
        assert_eq!(d.cell_of(&Point::new(9.999, 9.999), 10, 10), Some((9, 9)));
    }

    #[test]
    fn cell_of_upper_edge_clamps_to_last() {
        let d = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        assert_eq!(d.cell_of(&Point::new(10.0, 10.0), 10, 10), Some((9, 9)));
        assert_eq!(d.cell_of(&Point::new(10.0, 0.0), 4, 4), Some((3, 0)));
    }

    #[test]
    fn cell_of_outside_is_none() {
        let d = unit_domain();
        assert_eq!(d.cell_of(&Point::new(1.5, 0.5), 4, 4), None);
        assert_eq!(d.cell_of(&Point::new(-0.1, 0.5), 4, 4), None);
    }

    #[test]
    fn cell_of_matches_cell_rect() {
        // Every interior point's assigned cell rectangle contains it.
        let d = Domain::from_corners(-3.0, 2.0, 9.0, 11.0).unwrap();
        let (cols, rows) = (7, 3);
        for i in 0..100 {
            let p = Point::new(
                -3.0 + 12.0 * (i as f64) / 100.0,
                2.0 + 9.0 * ((i * 37 % 100) as f64) / 100.0,
            );
            let (c, r) = d.cell_of(&p, cols, rows).unwrap();
            let cell = d.cell_rect(cols, rows, c, r);
            assert!(
                cell.contains(&p),
                "point {p:?} not in its cell {cell:?} ({c},{r})"
            );
        }
    }

    #[test]
    fn coverage_ratio() {
        let d = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let q = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        assert!((d.coverage(&q) - 0.25).abs() < 1e-12);
        let outside = Rect::new(20.0, 20.0, 30.0, 30.0).unwrap();
        assert_eq!(d.coverage(&outside), 0.0);
        // Query larger than the domain is clipped.
        let huge = Rect::new(-100.0, -100.0, 100.0, 100.0).unwrap();
        assert!((d.coverage(&huge) - 1.0).abs() < 1e-12);
    }
}
