//! The readiness-multiplexed server — the *run loop* third of the
//! poller / run-loop / dispatch seam.
//!
//! A [`MuxServer`] runs a small pool of worker threads. Each worker
//! owns its own [`crate::poll::Poller`] and its own set of
//! connections — shared-nothing, so there is no cross-worker locking
//! on the hot path. Worker 0 additionally owns the (nonblocking)
//! listener and distributes accepted sockets round-robin: a handoff
//! pushes the socket onto the target worker's injection queue and
//! writes one byte down its wake pipe, which the target's poller
//! observes like any other readiness.
//!
//! The run loop is deliberately ignorant of wire formats: it asks the
//! poller *what* is ready and asks each connection's state machine
//! (the private `conn` module's `MuxConn`) to *make progress*, then
//! re-arms interest with whatever the connection wants next. Protocol
//! work happens entirely inside the state machine (which itself
//! delegates to `dpgrid_serve::wire`) — so a future async-runtime
//! backend replaces this file, not the connection or protocol logic.
//!
//! Shutdown: a flag plus one wake byte per worker. Workers finish the
//! pass in flight (a dispatched frame always gets its response
//! attempt), then drop their connections — peers observe the close.
//! The bounded poll timeout is only a backstop against a lost wake.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dpgrid_serve::QueryService;

use crate::conn::{ConnState, MuxConn};
use crate::counters::{Instrumented, TransportCounters};
use crate::error::Result;
use crate::poll::{default_poller, Interest, PollEvent, Poller};

/// Poll-wait backstop: how long a lost wake can delay shutdown.
const WAIT_BACKSTOP: Duration = Duration::from_millis(100);

/// Token of a worker's wake pipe.
const WAKE_TOKEN: usize = 0;
/// Token of the listener (worker 0 only).
const LISTENER_TOKEN: usize = 1;
/// First connection token; connection `i` lives at `CONN_BASE + i`.
const CONN_BASE: usize = 2;

/// What worker 0 shares with every worker to hand off connections.
struct WorkerShared {
    /// Accepted sockets waiting to be adopted by this worker.
    injected: Mutex<Vec<TcpStream>>,
    /// Write end of the worker's wake pipe.
    wake_tx: UnixStream,
}

/// A running multiplexed TCP query server. Use through
/// [`crate::TcpServer`] unless you need to pin the worker count.
#[derive(Debug)]
pub struct MuxServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    wakes: Vec<UnixStream>,
    counters: Arc<TransportCounters>,
}

impl MuxServer {
    /// Binds `addr` and serves `service` over a default-sized worker
    /// pool (available parallelism, capped at 8).
    pub fn bind<S>(service: Arc<S>, addr: impl ToSocketAddrs) -> Result<MuxServer>
    where
        S: QueryService + 'static,
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        MuxServer::bind_with_workers(service, addr, workers)
    }

    /// Binds `addr` and serves `service` over exactly `workers` event
    /// loops (at least one).
    pub fn bind_with_workers<S>(
        service: Arc<S>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<MuxServer>
    where
        S: QueryService + 'static,
    {
        let worker_count = workers.max(1);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(TransportCounters::default());
        let service = Arc::new(Instrumented::new(service, Arc::clone(&counters)));

        let mut shared = Vec::with_capacity(worker_count);
        let mut wake_rxs = Vec::with_capacity(worker_count);
        let mut wakes = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            wakes.push(tx.try_clone()?);
            shared.push(Arc::new(WorkerShared {
                injected: Mutex::new(Vec::new()),
                wake_tx: tx,
            }));
            wake_rxs.push(rx);
        }
        let shared: Arc<[Arc<WorkerShared>]> = shared.into();

        let mut handles = Vec::with_capacity(worker_count);
        for (me, wake_rx) in wake_rxs.into_iter().enumerate() {
            let mut worker = Worker {
                poller: default_poller()?,
                wake_rx,
                listener: if me == 0 {
                    Some(listener.try_clone()?)
                } else {
                    None
                },
                conns: Vec::new(),
                free: Vec::new(),
                me,
                next_rr: 0,
                shared: Arc::clone(&shared),
                service: Arc::clone(&service),
                shutdown: Arc::clone(&shutdown),
                counters: Arc::clone(&counters),
            };
            handles.push(std::thread::spawn(move || worker.run()));
        }
        drop(listener);

        Ok(MuxServer {
            addr,
            shutdown,
            workers: handles,
            wakes,
            counters,
        })
    }

    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Response frames served since start (all connections).
    pub fn frames_served(&self) -> u64 {
        self.counters
            .responses
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A snapshot of this server's transport counters — the same
    /// numbers the wire `Stats` response carries.
    pub fn transport_stats(&self) -> dpgrid_serve::TransportStats {
        self.counters.snapshot()
    }

    /// Stops accepting, closes every connection, joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for wake in &self.wakes {
            let _ = wake.write_one();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MuxServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One-byte nonblocking wake write; a full pipe already wakes.
trait WakeWrite {
    fn write_one(&self) -> io::Result<()>;
}

impl WakeWrite for UnixStream {
    fn write_one(&self) -> io::Result<()> {
        use io::Write;
        let mut s: &UnixStream = self;
        match s.write(&[1]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// One event-loop worker: poller, wake pipe, connection slab, and —
/// on worker 0 — the listener.
struct Worker<S: QueryService + 'static> {
    poller: Box<dyn Poller>,
    wake_rx: UnixStream,
    listener: Option<TcpListener>,
    /// Connection slab: token `CONN_BASE + i` maps to `conns[i]`.
    conns: Vec<Option<MuxConn>>,
    /// Free slab slots.
    free: Vec<usize>,
    me: usize,
    /// Round-robin cursor for connection handoff (worker 0 only).
    next_rr: usize,
    shared: Arc<[Arc<WorkerShared>]>,
    service: Arc<Instrumented<S>>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<TransportCounters>,
}

impl<S: QueryService + 'static> Worker<S> {
    fn run(&mut self) {
        let _ = self
            .poller
            .register(self.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ);
        if let Some(listener) = &self.listener {
            let _ = self
                .poller
                .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
        }
        let mut events: Vec<PollEvent> = Vec::new();
        while !self.shutdown.load(Ordering::Acquire) {
            events.clear();
            if self.poller.wait(&mut events, Some(WAIT_BACKSTOP)).is_err() {
                // A broken poller cannot serve; bail rather than spin.
                break;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.adopt_injected();
            for event in &events {
                match event.token {
                    WAKE_TOKEN => self.drain_wake(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token - CONN_BASE),
                }
            }
        }
        // Dropping the slab closes every socket (peers observe EOF or
        // a reset); dropping the listener frees the port.
        for slot in self.conns.drain(..) {
            if slot.is_some() {
                self.counters.active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Adopts handed-off connections into this worker's slab.
    fn adopt_injected(&mut self) {
        let injected = {
            let mut queue = self.shared[self.me]
                .injected
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *queue)
        };
        for stream in injected {
            self.add_conn(stream);
        }
    }

    fn drain_wake(&mut self) {
        use io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Accepts until the listener would block, distributing sockets
    /// round-robin over the pool.
    fn accept_ready(&mut self) {
        loop {
            let listener = self.listener.as_ref().expect("only the owner gets events");
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    self.counters.active.fetch_add(1, Ordering::Relaxed);
                    let target = self.next_rr % self.shared.len();
                    self.next_rr = self.next_rr.wrapping_add(1);
                    if target == self.me {
                        self.add_conn(stream);
                    } else {
                        self.shared[target]
                            .injected
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(stream);
                        let _ = self.shared[target].wake_tx.write_one();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (EMFILE under a flood,
                    // ECONNABORTED): back off briefly instead of
                    // busy-spinning a level-triggered listener.
                    std::thread::sleep(Duration::from_millis(20));
                    return;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        let conn = MuxConn::new(stream);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let conn = self.conns[idx].as_ref().expect("just stored");
        if self
            .poller
            .register(conn.stream().as_raw_fd(), CONN_BASE + idx, conn.interest())
            .is_err()
        {
            self.conns[idx] = None;
            self.free.push(idx);
            self.counters.active.fetch_sub(1, Ordering::Relaxed);
        }
        // Level-triggered pollers re-report anything already pending,
        // so a socket that arrived with bytes in flight wakes us on
        // the next wait — no eager pump needed.
    }

    /// Lets one connection make progress, then re-arms (or reaps) it.
    fn conn_ready(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return; // already reaped this pass
        };
        let before = conn.interest();
        match conn.on_ready(&*self.service, &self.counters) {
            ConnState::Closed => {
                let conn = self.conns[idx].take().expect("checked above");
                let _ = self.poller.deregister(conn.stream().as_raw_fd());
                self.free.push(idx);
                self.counters.active.fetch_sub(1, Ordering::Relaxed);
                // Dropping `conn` closes the socket.
            }
            ConnState::Open(interest) => {
                if interest != before {
                    let fd = conn.stream().as_raw_fd();
                    let _ = self.poller.reregister(fd, CONN_BASE + idx, interest);
                }
            }
        }
    }
}
