//! Figure 3 — the effect of adding hierarchies (and wavelets) on top of
//! a fixed grid.
//!
//! Paper panels: checkin and landmark at ε ∈ {0.1, 1}; methods are the
//! best-sweep UG, U₃₆₀, W₃₆₀ (Privelet), and hierarchies H₂,₄ H₂,₃ H₃,₃
//! H₄,₂ H₅,₂ H₆,₂ over a 360 grid. Shape criterion: hierarchies give at
//! most small improvements over U₃₆₀; Privelet a modest one.

use dpgrid_core::guidelines;
use dpgrid_geo::generators::PaperDataset;

use super::{DataBundle, ExpContext};
use crate::method::Method;
use crate::report::profile_table;
use crate::Result;

/// The base grid the paper builds hierarchies over.
const BASE: usize = 360;

/// Runs the experiment; writes per-panel CSVs and returns the markdown.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("fig3");
    let mut md = String::from("## Figure 3 — hierarchies over a 360 grid\n\n");
    for which in [PaperDataset::Checkin, PaperDataset::Landmark] {
        let bundle = DataBundle::prepare(which, ctx)?;
        let n = bundle.dataset.len();
        for &eps in &ctx.epsilons {
            let suggested = guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
            let methods = vec![
                Method::ug(suggested),
                Method::ug(BASE),
                Method::privelet(BASE),
                Method::hierarchy(BASE, 2, 4),
                Method::hierarchy(BASE, 2, 3),
                Method::hierarchy(BASE, 3, 3),
                Method::hierarchy(BASE, 4, 2),
                Method::hierarchy(BASE, 5, 2),
                Method::hierarchy(BASE, 6, 2),
            ];
            let stem = format!("{}_eps{eps}", which.name());
            let evals = bundle.run_panel(&dir, &stem, &methods, eps, ctx)?;
            let title = format!("fig3: {} ε={eps}", which.name());
            md.push_str(&profile_table(&title, &evals).to_markdown());
        }
    }
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_fig3_test"));
        ctx.scale = 1024;
        ctx.queries_per_size = 5;
        let md = run(&ctx).unwrap();
        assert!(md.contains("H2,3@360"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
