//! The LDP ingestion front door: phones perturb locally, report over
//! TCP, and sealed epochs become ordinary served releases.
//!
//! ```sh
//! cargo run --release --example ldp_ingestion
//! ```
//!
//! Part 1 runs the whole loop on one node: a simulated fleet perturbs
//! its grid cell on-device (half GRR, half OUE), batches travel over a
//! negotiated binary-v2 connection into a `CollectingService`, a wrong
//! ε is rejected typed without touching the accumulator, and two
//! sealed epochs are queried back over the same connection — the
//! morning/evening hotspot shift is visible in the noisy counts even
//! though the server never saw a single true location.
//!
//! Part 2 scatters ingestion across shards: a `ReportRouter` sends
//! each batch to the shard that owns its epoch key under the same
//! rendezvous placement the read side uses, so reports aggregate
//! exactly where the sealed release will be served.

use std::sync::Arc;

use dpgrid::ldp::{CollectingService, CollectorConfig, ReportCollector};
use dpgrid::mech::oue_words;
use dpgrid::net::{NetError, ReportRouter, TcpClient, TcpServer};
use dpgrid::prelude::*;
use dpgrid::serve::wire::ErrorCode;
use dpgrid::serve::QueryEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLS: usize = 16;
const ROWS: usize = 16;
const CELLS: u32 = (COLS * ROWS) as u32;
const EPSILON: f64 = 1.0;
const FLEET: usize = 4_000;

fn domain() -> Domain {
    Domain::from_corners(0.0, 0.0, 16.0, 16.0).unwrap()
}

fn collecting(keyspace: &str) -> CollectingService<QueryEngine> {
    let config = CollectorConfig::new(
        keyspace,
        domain(),
        COLS,
        ROWS,
        BudgetSchedule::uniform(2.0, 2).unwrap(),
    )
    .unwrap();
    CollectingService::new(
        QueryEngine::new(Catalog::new()),
        ReportCollector::new(config).unwrap(),
    )
}

/// Simulates one epoch of a fleet: each user is at the epoch's hot
/// corner with probability 60%, elsewhere uniformly. Even users
/// perturb with GRR, odd with OUE — the collector accepts a mixed
/// fleet. Returns wire-ready batches; the true cells never leave.
fn fleet_reports(keyspace: &str, epoch: u64, users: usize, seed: u64) -> Vec<ReportBatch> {
    let mut rng = StdRng::seed_from_u64(seed);
    let grr = Grr::new(CELLS as usize, EPSILON).unwrap();
    let oue = Oue::new(CELLS as usize, EPSILON).unwrap();
    // Morning crowd downtown (3,3); evening crowd uptown (12,12).
    let hot = if epoch == 0 {
        3 * COLS + 3
    } else {
        12 * COLS + 12
    };
    let mut grr_cells = Vec::new();
    let mut oue_bits = Vec::new();
    for user in 0..users {
        let cell = if rng.random_range(0..10u32) < 6 {
            hot
        } else {
            rng.random_range(0..CELLS as usize)
        };
        let oracle: &dyn FrequencyOracle = if user % 2 == 0 { &grr } else { &oue };
        match oracle.perturb(cell, &mut rng).unwrap() {
            LocalReport::Cell(c) => grr_cells.push(c),
            LocalReport::Bits(words) => oue_bits.extend_from_slice(&words),
        }
    }
    let batch = |payload| ReportBatch {
        keyspace: keyspace.to_string(),
        epoch,
        epsilon: EPSILON,
        cells: CELLS,
        payload,
    };
    let mut batches = Vec::new();
    for chunk in grr_cells.chunks(512) {
        batches.push(batch(ReportPayload::Grr(chunk.to_vec())));
    }
    let words = oue_words(CELLS as usize);
    for chunk in oue_bits.chunks(512 * words) {
        batches.push(batch(ReportPayload::Oue {
            count: (chunk.len() / words) as u32,
            bits: chunk.to_vec(),
        }));
    }
    batches
}

fn main() {
    // ----- Part 1: one node collects, seals, and serves. -----
    let service = Arc::new(collecting("city"));
    let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    println!(
        "front door on {} (protocol v{})",
        server.local_addr(),
        client.protocol_version().unwrap()
    );

    // A batch perturbed at the wrong ε is rejected typed, all-or-
    // nothing — mismatched ε would silently break the debiasing.
    let mut wrong = fleet_reports("city", 0, 8, 99).remove(0);
    wrong.epsilon = 3.0;
    match client.submit_report(&wrong) {
        Err(NetError::Server(e)) if e.code == ErrorCode::InvalidQuery => {
            println!("wrong-ε batch rejected typed: {e}")
        }
        other => panic!("expected InvalidQuery, got {other:?}"),
    }

    for epoch in 0..2u64 {
        let batches = fleet_reports("city", epoch, FLEET, epoch);
        let mut accepted = 0u64;
        for ack in client.submit_reports(&batches).unwrap() {
            accepted += ack.expect("well-formed batch").accepted;
        }
        println!(
            "epoch {epoch}: {} users reported in {} pipelined batches",
            accepted,
            batches.len()
        );

        // Seal on the serving side: ε charged exactly once, tallies
        // debiased, and the release published into the same engine
        // that absorbed the reports.
        let sealed = service.seal_open_epoch().unwrap();
        println!(
            "  sealed {} (ε = {}, {} GRR + {} OUE reports)",
            sealed.summary.key,
            sealed.summary.epsilon,
            sealed.summary.grr_reports,
            sealed.summary.oue_reports
        );
        service
            .inner()
            .insert(sealed.summary.key.clone(), sealed.release);
    }

    // The hotspot shift survives the noise: query both epochs over the
    // same connection that ingested them.
    let downtown = Rect::new(2.0, 2.0, 5.0, 5.0).unwrap();
    let uptown = Rect::new(11.0, 11.0, 14.0, 14.0).unwrap();
    for epoch in 0..2u64 {
        let key = format!("city@epoch:{epoch}");
        let answers = client.query(&key, &[downtown, uptown]).unwrap().answers;
        println!(
            "{key}: downtown ~ {:>7.0}, uptown ~ {:>7.0}",
            answers[0], answers[1]
        );
        let (hot, cold) = if epoch == 0 {
            (answers[0], answers[1])
        } else {
            (answers[1], answers[0])
        };
        assert!(
            hot > cold,
            "epoch {epoch}: the hotspot should dominate ({hot} vs {cold})"
        );
    }
    let stats = client.stats().unwrap();
    println!(
        "server counted {} accepted reports over the wire",
        stats.transport.unwrap().reports_accepted
    );
    server.shutdown();

    // ----- Part 2: scatter ingestion across shards. -----
    let shards = [
        ("alpha", collecting("harbor")),
        ("beta", collecting("harbor")),
    ];
    let mut servers = Vec::new();
    let mut addresses = Vec::new();
    for (name, svc) in shards {
        let svc = Arc::new(svc);
        let server = TcpServer::bind(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        addresses.push((name.to_string(), server.local_addr()));
        servers.push((name, svc, server));
    }
    let router = ReportRouter::connect(addresses).unwrap();

    // Placement is the read side's rendezvous hash over the epoch key:
    // reports for `harbor@epoch:0` aggregate on the shard that will
    // serve the sealed release — no cross-shard merge, ever.
    let owner = router.route("harbor", 0);
    println!("harbor@epoch:0 is owned by shard {owner:?}");
    let batches = fleet_reports("harbor", 0, 600, 7);
    for ack in router.submit_reports(&batches) {
        ack.expect("routed batch accepted");
    }
    for (name, svc, server) in servers {
        let held = svc.with_collector(|c| c.open_reports());
        println!("  shard {name}: {held} reports buffered");
        assert_eq!(
            held > 0,
            name == owner,
            "reports must sit on the owner only"
        );
        server.shutdown();
    }
    println!("done");
}
