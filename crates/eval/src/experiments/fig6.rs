//! Figure 6 — final comparison in absolute error (log scale in the
//! paper). The runs are shared with Figure 5; see [`super::fig5`].

use super::ExpContext;
use crate::Result;

/// Runs the experiment (delegates to the shared fig5/fig6 pipeline).
pub fn run(ctx: &ExpContext) -> Result<String> {
    super::fig5::run_absolute(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_fig6_test"));
        ctx.scale = 2048;
        ctx.queries_per_size = 4;
        let md = run(&ctx).unwrap();
        assert!(md.contains("absolute error"));
        assert!(ctx.dir("fig6").join("storage_eps1_abs.csv").exists());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
