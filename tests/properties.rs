//! Cross-crate property-based tests (proptest) on the core invariants.

use dpgrid::baselines::wavelet;
use dpgrid::eval::{metrics, QueryWorkload, WorkloadSpec};
use dpgrid::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    /// Haar round-trip is the identity for any power-of-two vector.
    #[test]
    fn haar_roundtrip(values in prop::collection::vec(-1e6f64..1e6, 1..=64), k in 0usize..=6) {
        let n = 1usize << k;
        let mut v: Vec<f64> = values.into_iter().cycle().take(n).collect();
        let orig = v.clone();
        wavelet::forward_1d(&mut v).unwrap();
        wavelet::inverse_1d(&mut v).unwrap();
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// The SAT-based fractional range answer equals the per-cell
    /// brute-force sum for arbitrary grids and queries.
    #[test]
    fn grid_answer_matches_bruteforce(
        cols in 1usize..12,
        rows in 1usize..12,
        vals in prop::collection::vec(-100f64..100.0, 144),
        qx0 in -2f64..12.0,
        qy0 in -2f64..12.0,
        qw in 0.01f64..14.0,
        qh in 0.01f64..14.0,
    ) {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let g = DenseGrid::from_fn(domain, cols, rows, |c, r| vals[r * cols + c]).unwrap();
        let q = Rect::new(qx0, qy0, qx0 + qw, qy0 + qh).unwrap();
        let fast = g.answer_uniform(&g.sat(), &q);
        let brute: f64 = g
            .iter_cells()
            .map(|(_, _, cell, v)| v * cell.overlap_fraction(&q))
            .sum();
        prop_assert!(
            (fast - brute).abs() < 1e-6 * (1.0 + brute.abs()),
            "fast {} vs brute {}", fast, brute
        );
    }

    /// Range answers are additive: splitting a query at any interior x
    /// coordinate preserves the total.
    #[test]
    fn query_additivity(
        seed in 0u64..1000,
        split_frac in 0.01f64..0.99,
    ) {
        let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
        let ds = dpgrid::geo::generators::uniform(domain, 500, &mut rng(seed));
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 9), &mut rng(seed)).unwrap();
        let q = Rect::new(1.0, 1.0, 7.0, 7.0).unwrap();
        let split_x = 1.0 + 6.0 * split_frac;
        let (l, r) = q.split_x(split_x);
        let total = ug.answer(&q);
        let parts = ug.answer(&l) + ug.answer(&r);
        prop_assert!((total - parts).abs() < 1e-6, "{} vs {}", total, parts);
    }

    /// The exact point index agrees with a linear scan on arbitrary
    /// queries and point sets.
    #[test]
    fn point_index_exactness(
        pts in prop::collection::vec((0f64..10.0, 0f64..10.0), 0..200),
        qx0 in -1f64..11.0,
        qy0 in -1f64..11.0,
        qw in 0f64..12.0,
        qh in 0f64..12.0,
        res in 1usize..20,
    ) {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let points: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let ds = GeoDataset::from_points(points, domain).unwrap();
        let idx = dpgrid::geo::PointIndex::with_resolution(&ds, res);
        let q = Rect::new(qx0, qy0, qx0 + qw, qy0 + qh).unwrap();
        prop_assert_eq!(idx.count(&q), ds.count_in(&q) as u64);
    }

    /// Workload queries always lie inside the domain and have the
    /// declared doubling sizes.
    #[test]
    fn workload_queries_in_domain(
        seed in 0u64..500,
        q1w in 0.1f64..2.0,
        q1h in 0.1f64..2.0,
        sizes in 1usize..6,
    ) {
        let domain = Domain::from_corners(-5.0, -5.0, 5.0, 5.0).unwrap();
        let spec = WorkloadSpec {
            q1_width: q1w,
            q1_height: q1h,
            num_sizes: sizes,
            queries_per_size: 10,
        };
        let w = QueryWorkload::generate(&domain, &spec, &mut rng(seed)).unwrap();
        for (i, q) in w.iter_flat() {
            prop_assert!(domain.rect().contains_rect(q));
            let expect_w = (q1w * 2f64.powi(i as i32)).min(10.0);
            prop_assert!((q.width() - expect_w).abs() < 1e-9);
        }
    }

    /// Relative error is non-negative, zero iff exact, and uses the ρ
    /// floor correctly.
    #[test]
    fn relative_error_properties(
        est in -1e4f64..1e4,
        truth in 0f64..1e4,
        rho in 0.001f64..100.0,
    ) {
        let re = metrics::relative_error(est, truth, rho);
        prop_assert!(re >= 0.0);
        if (est - truth).abs() < 1e-12 {
            prop_assert!(re < 1e-9);
        }
        // Scaling both error and denominator floor keeps RE bounded.
        prop_assert!(re <= (est - truth).abs() / rho.min(truth.max(rho)) + 1e-9);
    }

    /// AG leaf cells always tile the domain exactly, for arbitrary m1
    /// and small datasets.
    #[test]
    fn ag_partition_invariant(
        seed in 0u64..200,
        m1 in 2usize..8,
        n in 0usize..300,
    ) {
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
        let ds = dpgrid::geo::generators::uniform(domain, n.max(1), &mut rng(seed));
        let mut cfg = AgConfig::guideline(1.0).with_m1(m1);
        cfg.m2_cap = 6;
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(seed ^ 0xFF)).unwrap();
        let area: f64 = ag.cells().iter().map(|(r, _)| r.area()).sum();
        prop_assert!((area - 16.0).abs() < 1e-6);
        // Consistency: whole-domain answer equals leaf total.
        let whole = Rect::new(0.0, 0.0, 4.0, 4.0).unwrap();
        let leaf_total: f64 = ag.cells().iter().map(|(_, v)| v).sum();
        prop_assert!((ag.answer(&whole) - leaf_total).abs() < 1e-6);
    }

    /// Epoch-suffixed keys round-trip through the temporal key grammar
    /// and place deterministically under rendezvous routing: the same
    /// key always lands on the same shard, and the parsed form loses
    /// nothing.
    #[test]
    fn epoch_keys_roundtrip_and_route_deterministically(
        ks_seed in 0u64..10_000,
        ks_len in 1usize..12,
        start in 0u64..1_000_000,
        span in 1u64..100,
        shards in 1usize..8,
    ) {
        use dpgrid::core::rendezvous_route;
        // Keyspace names drawn from a mixed alphabet (including '@'
        // and '-', which also appear in the epoch suffix grammar).
        const ALPHABET: &[u8] = b"abcz019_-@.";
        let keyspace: String = (0..ks_len)
            .map(|i| {
                let idx = (ks_seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) as usize;
                ALPHABET[idx % ALPHABET.len()] as char
            })
            .collect();
        let range = EpochRange::new(start, start + span).unwrap();
        let key = epoch_key(&keyspace, range);
        // Round-trip: parsing recovers exactly what was encoded.
        let (parsed_keyspace, parsed_range) =
            parse_epoch_key(&key).expect("epoch keys always parse");
        prop_assert_eq!(parsed_keyspace, keyspace.as_str());
        prop_assert_eq!(parsed_range, range);
        // Determinism: routing the same key twice over the same shard
        // list picks the same shard, and every epoch key routes
        // somewhere whenever shards exist.
        let names: Vec<String> = (0..shards).map(|i| format!("shard-{i}")).collect();
        let first = rendezvous_route(&names, &key);
        prop_assert!(first.is_some());
        prop_assert_eq!(rendezvous_route(&names, &key), first);
        prop_assert!(first.unwrap() < shards);
        // Stability under growth: adding a shard either keeps the key
        // in place or moves it to the new shard — never reshuffles it
        // onto another existing shard (the rendezvous property).
        let mut grown = names.clone();
        grown.push("shard-new".to_string());
        let after = rendezvous_route(&grown, &key).unwrap();
        prop_assert!(
            after == first.unwrap() || after == shards,
            "key moved from {:?} to {} on growth", first, after
        );
    }
}
