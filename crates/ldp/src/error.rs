//! Typed errors for the LDP ingestion front door.

use std::error::Error;
use std::fmt;

use dpgrid_core::CoreError;
use dpgrid_mech::MechError;

/// Everything that can go wrong collecting, aggregating or sealing
/// LDP report batches. Mirrors the streaming subsystem's convention:
/// every rejection is typed and carries the state that caused it, so
/// transports can map each variant onto a stable wire error.
#[derive(Debug)]
pub enum LdpError {
    /// A batch named a keyspace this collector does not aggregate.
    UnknownKeyspace {
        /// The keyspace the batch carried.
        got: String,
        /// The keyspace the collector aggregates.
        want: String,
    },
    /// A batch arrived for an epoch that has already been sealed and
    /// published — late reports cannot be folded in without
    /// re-spending the epoch's budget.
    SealedEpoch {
        /// The epoch the batch carried.
        epoch: u64,
        /// The collector's open (accepting) epoch.
        open: u64,
    },
    /// A batch arrived for an epoch the collector has not opened yet.
    /// Reports are accepted strictly in epoch order, one open epoch at
    /// a time, so accumulator memory stays bounded.
    FutureEpoch {
        /// The epoch the batch carried.
        epoch: u64,
        /// The collector's open (accepting) epoch.
        open: u64,
    },
    /// The batch's per-report ε does not match the share the budget
    /// schedule assigns this epoch. Folding it in anyway would
    /// silently break the debiasing (and the privacy claim).
    EpsilonMismatch {
        /// The epoch in question.
        epoch: u64,
        /// The ε the batch claimed its reports were perturbed at.
        got: f64,
        /// The ε the schedule assigns the epoch.
        want: f64,
    },
    /// The batch's grid domain size does not match the collector's.
    DomainMismatch {
        /// The cell count the batch carried.
        got: u32,
        /// The collector's cell count.
        want: u32,
    },
    /// Accepting the batch would push the open epoch's accumulator
    /// past its configured report capacity. Nothing was folded in;
    /// the caller should back off until the epoch seals.
    BufferOverflow {
        /// The open epoch.
        epoch: u64,
        /// Reports already held plus the rejected batch's count.
        requested: u64,
        /// The configured per-epoch report capacity.
        capacity: u64,
    },
    /// A report inside the batch did not fit the declared shape
    /// (out-of-range GRR index, wrong OUE word count, set bits past
    /// the domain). The whole batch is rejected untouched.
    MalformedBatch(String),
    /// The collector was configured inconsistently.
    InvalidConfig(String),
    /// A budget-schedule operation failed (exhausted horizon,
    /// double-charged epoch…).
    Mech(MechError),
    /// Building the sealed release failed.
    Core(CoreError),
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::UnknownKeyspace { got, want } => {
                write!(
                    f,
                    "batch names keyspace `{got}`, collector aggregates `{want}`"
                )
            }
            LdpError::SealedEpoch { epoch, open } => write!(
                f,
                "epoch {epoch} is already sealed; the open epoch is {open}"
            ),
            LdpError::FutureEpoch { epoch, open } => {
                write!(f, "epoch {epoch} is not open yet; the open epoch is {open}")
            }
            LdpError::EpsilonMismatch { epoch, got, want } => write!(
                f,
                "batch claims per-report ε = {got}, the schedule assigns epoch {epoch} ε = {want}"
            ),
            LdpError::DomainMismatch { got, want } => write!(
                f,
                "batch covers {got} grid cells, collector aggregates {want}"
            ),
            LdpError::BufferOverflow {
                epoch,
                requested,
                capacity,
            } => write!(
                f,
                "accepting the batch would hold {requested} reports for epoch {epoch}, \
                 capacity is {capacity}"
            ),
            LdpError::MalformedBatch(why) => write!(f, "malformed report batch: {why}"),
            LdpError::InvalidConfig(why) => write!(f, "invalid collector config: {why}"),
            LdpError::Mech(e) => write!(f, "budget schedule: {e}"),
            LdpError::Core(e) => write!(f, "release construction: {e}"),
        }
    }
}

impl Error for LdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LdpError::Mech(e) => Some(e),
            LdpError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MechError> for LdpError {
    fn from(e: MechError) -> Self {
        LdpError::Mech(e)
    }
}

impl From<CoreError> for LdpError {
    fn from(e: CoreError) -> Self {
        LdpError::Core(e)
    }
}
