//! GRR tally scatter: the fused validate + fold building blocks.
//!
//! The batch contract is all-or-nothing, so the fold runs a max
//! pre-scan (vectorized under AVX2) proving every report is in-domain
//! before the scatter pass touches the accumulator — one pass over
//! the reports for validation instead of a `find` sweep, and the
//! scatter itself stays a plain data-dependent increment loop (gather/
//! scatter conflicts make a SIMD scatter a loss at these tally
//! widths).

/// Scalar max pre-scan; `None` for an empty batch.
pub(crate) fn max_u32_scalar(reports: &[u32]) -> Option<u32> {
    reports.iter().copied().max()
}

/// The scatter pass: every report bumps exactly one tally. Callers
/// proved `report < acc.len()` via the max pre-scan.
pub(crate) fn scatter(acc: &mut [u64], reports: &[u32]) {
    for &cell in reports {
        acc[cell as usize] += 1;
    }
}

/// AVX2 max pre-scan: eight lanes of `_mm256_max_epu32` per step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn max_u32_avx2(reports: &[u32]) -> Option<u32> {
    use std::arch::x86_64::*;
    if reports.is_empty() {
        return None;
    }
    let chunks = reports.len() / 8;
    let mut best = 0u32;
    if chunks > 0 {
        unsafe {
            let ptr = reports.as_ptr();
            let mut m = _mm256_loadu_si256(ptr as *const __m256i);
            for i in 1..chunks {
                m = _mm256_max_epu32(m, _mm256_loadu_si256(ptr.add(8 * i) as *const __m256i));
            }
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, m);
            best = lanes.into_iter().max().expect("eight lanes");
        }
    }
    for &r in &reports[chunks * 8..] {
        best = best.max(r);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_max_handles_empty_and_singleton() {
        assert_eq!(max_u32_scalar(&[]), None);
        assert_eq!(max_u32_scalar(&[7]), Some(7));
        assert_eq!(max_u32_scalar(&[3, 9, 1]), Some(9));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_max_matches_scalar_across_tail_lengths() {
        if !crate::avx2_available() {
            eprintln!("skipping: no AVX2 on this machine");
            return;
        }
        for n in [0usize, 1, 7, 8, 9, 16, 23, 64, 100] {
            let reports: Vec<u32> = (0..n)
                .map(|i| ((i as u32).wrapping_mul(0x9E37_79B9)) >> 8)
                .collect();
            // SAFETY: guarded by avx2_available above.
            let got = unsafe { max_u32_avx2(&reports) };
            assert_eq!(got, max_u32_scalar(&reports), "n = {n}");
        }
    }
}
