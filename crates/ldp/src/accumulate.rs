//! The aggregation hot path: folding whole report batches into flat
//! tally vectors.
//!
//! The per-report API in `dpgrid_mech` ([`dpgrid_mech::FrequencyOracle`
//! `::aggregate`]) is the semantic reference; these functions are the
//! batch form the collector actually runs. Validation always precedes
//! arithmetic so a rejected batch leaves the accumulator untouched,
//! and the arithmetic itself runs on the [`dpgrid_kernels`] layer —
//! runtime-dispatched scalar/AVX2 implementations whose integer
//! outputs are bit-exact regardless of backend. [`fold_grr_checked`]
//! fuses the two passes (a vectorized max pre-scan, then the scatter)
//! while keeping the all-or-nothing contract.

use crate::error::LdpError;
use crate::Result;

/// Validates one GRR batch against a `cells`-cell domain: every
/// perturbed index must land inside the grid.
pub fn validate_grr(cells: u32, reports: &[u32]) -> Result<()> {
    match reports.iter().find(|&&c| c >= cells) {
        None => Ok(()),
        Some(&c) => Err(LdpError::MalformedBatch(format!(
            "GRR report names cell {c}, domain has {cells}"
        ))),
    }
}

/// Folds one validated GRR batch: each report bumps exactly one tally.
/// `acc` must have `cells` entries and `reports` must have passed
/// [`validate_grr`] for the same `cells`.
pub fn fold_grr(acc: &mut [u64], reports: &[u32]) {
    for &cell in reports {
        acc[cell as usize] += 1;
    }
}

/// Fused validate + fold for one GRR batch — the path the collector
/// runs. A single vectorized max pre-scan (see
/// [`dpgrid_kernels::fold_grr_checked`]) proves the whole batch
/// in-domain before the scatter pass touches `acc`, preserving the
/// all-or-nothing contract; a rejected batch reports the first
/// offending cell with the same message as [`validate_grr`].
pub fn fold_grr_checked(acc: &mut [u64], cells: u32, reports: &[u32]) -> Result<()> {
    dpgrid_kernels::fold_grr_checked(acc, cells, reports).map_err(|c| {
        LdpError::MalformedBatch(format!("GRR report names cell {c}, domain has {cells}"))
    })
}

/// Packed words per OUE report over a `cells`-cell domain.
pub fn oue_words(cells: u32) -> usize {
    dpgrid_mech::oue_words(cells as usize)
}

/// Validates one OUE batch against a `cells`-cell domain: the packed
/// vector must hold exactly `count × ⌈cells/64⌉` words, and no report
/// may set bits past the domain in its last word (a hostile tail
/// would inflate the debiased tally of nonexistent cells — rejected
/// here, before anything is folded).
///
/// Error priority is part of the contract: a batch that is both
/// mis-shaped and tail-poisoned reports the shape error, because the
/// tail sweep only runs once the word count proves `chunks_exact`
/// tiles the buffer into whole reports.
pub fn validate_oue(cells: u32, count: u32, bits: &[u64]) -> Result<()> {
    let words = oue_words(cells);
    match (count as usize).checked_mul(words) {
        Some(expected) if expected == bits.len() => {}
        _ => {
            return Err(LdpError::MalformedBatch(format!(
            "OUE batch holds {} words, {count} reports over {cells} cells need {count} × {words}",
            bits.len()
        )))
        }
    }
    let tail = (words * 64 - cells as usize) as u32;
    if tail > 0 {
        // One branchless sweep: OR every report's last word together,
        // one shift-compare at the end.
        let poisoned = bits
            .chunks_exact(words)
            .fold(0u64, |or, report| or | report[words - 1]);
        if poisoned >> (64 - tail) != 0 {
            return Err(LdpError::MalformedBatch(format!(
                "OUE report sets bits past the {cells}-cell domain"
            )));
        }
    }
    Ok(())
}

/// Folds one validated OUE batch: every set bit bumps its cell's
/// tally. `acc` must have `cells` entries; [`validate_oue`]
/// guarantees no set bit maps past it.
///
/// Runs [`dpgrid_kernels::fold_oue`] — a Harley–Seal positional
/// popcount (bit-sliced vertical counters, AVX2 when the CPU has it)
/// that replaces the old one-bit-at-a-time scatter. Tallies are `u64`
/// adds, so the result is bit-exact on every backend.
pub fn fold_oue(acc: &mut [u64], words: usize, bits: &[u64]) {
    dpgrid_kernels::fold_oue(acc, words, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_mech::{FrequencyOracle, Grr, LocalReport, Oue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grr_validation_names_the_offending_cell() {
        assert!(validate_grr(10, &[0, 9, 5]).is_ok());
        let err = validate_grr(10, &[0, 10]).unwrap_err();
        assert!(err.to_string().contains("cell 10"), "{err}");
    }

    #[test]
    fn oue_validation_rejects_shape_and_tail_violations() {
        // 100 cells → 2 words per report.
        assert!(validate_oue(100, 2, &[1, 0, 0, 1 << 35]).is_ok());
        assert!(validate_oue(100, 2, &[1, 0, 0]).is_err());
        // Bit 100 of the second report is past the domain.
        let err = validate_oue(100, 2, &[1, 0, 0, 1 << 36]).unwrap_err();
        assert!(
            err.to_string().contains("past the 100-cell domain"),
            "{err}"
        );
        // An exact multiple of 64 has no tail to poison.
        assert!(validate_oue(128, 1, &[u64::MAX, u64::MAX]).is_ok());
    }

    #[test]
    fn oue_validation_reports_shape_before_tail() {
        // 100 cells → 2 words; this batch is both the wrong length
        // for its claimed count AND tail-poisoned in its first whole
        // report. The shape error must win — the stable
        // error-priority contract callers key their diagnostics on.
        let err = validate_oue(100, 3, &[0, 1 << 36, 0]).unwrap_err();
        assert!(err.to_string().contains("holds 3 words"), "{err}");
        assert!(!err.to_string().contains("past the"), "{err}");
        // The same tail poison with a correct shape reports the tail.
        let err = validate_oue(100, 2, &[0, 1 << 36, 0, 0]).unwrap_err();
        assert!(
            err.to_string().contains("past the 100-cell domain"),
            "{err}"
        );
    }

    #[test]
    fn fused_grr_fold_is_all_or_nothing_with_the_validate_error() {
        let mut acc = vec![0u64; 10];
        fold_grr_checked(&mut acc, 10, &[0, 9, 5, 5]).unwrap();
        assert_eq!(acc[5], 2);

        let before = acc.clone();
        let err = fold_grr_checked(&mut acc, 10, &[3, 10, 11]).unwrap_err();
        assert_eq!(acc, before, "rejected batch must not fold anything");
        // Same message as validate_grr, naming the FIRST offender.
        assert_eq!(
            err.to_string(),
            validate_grr(10, &[3, 10, 11]).unwrap_err().to_string()
        );
        assert!(err.to_string().contains("cell 10"), "{err}");
    }

    #[test]
    fn batch_folds_match_the_per_report_oracle_path() {
        let cells = 100u32;
        let epsilon = 0.8;
        let grr = Grr::new(cells as usize, epsilon).unwrap();
        let oue = Oue::new(cells as usize, epsilon).unwrap();
        let mut rng = StdRng::seed_from_u64(42);

        let mut grr_batch = Vec::new();
        let mut oue_count = 0u32;
        let mut oue_bits = Vec::new();
        let mut reference_grr = vec![0u64; cells as usize];
        let mut reference_oue = vec![0u64; cells as usize];
        for i in 0..500usize {
            let truth = i % cells as usize;
            let g = grr.perturb(truth, &mut rng).unwrap();
            grr.aggregate(&mut reference_grr, &g).unwrap();
            let LocalReport::Cell(c) = g else {
                panic!("GRR perturbs to a cell")
            };
            grr_batch.push(c);

            let o = oue.perturb(truth, &mut rng).unwrap();
            oue.aggregate(&mut reference_oue, &o).unwrap();
            let LocalReport::Bits(words) = o else {
                panic!("OUE perturbs to packed bits")
            };
            oue_count += 1;
            oue_bits.extend_from_slice(&words);
        }

        validate_grr(cells, &grr_batch).unwrap();
        let mut acc = vec![0u64; cells as usize];
        fold_grr(&mut acc, &grr_batch);
        assert_eq!(acc, reference_grr);

        validate_oue(cells, oue_count, &oue_bits).unwrap();
        let mut acc = vec![0u64; cells as usize];
        fold_oue(&mut acc, oue_words(cells), &oue_bits);
        assert_eq!(acc, reference_oue);
    }
}
