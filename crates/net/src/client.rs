//! The blocking client: one TCP connection speaking the wire protocol.
//!
//! A [`TcpClient`] issues one request frame at a time and blocks for
//! the matching response (ids are checked, so a desynchronised
//! connection fails loudly instead of mismatching answers). It is
//! deliberately not `Sync` — open one client per thread (or pool
//! clients with [`crate::TcpClientPool`]); the server side is built
//! for many cheap connections.
//!
//! # Reconnection
//!
//! The client remembers the address it connected to and, when a call
//! finds the connection *stale* — broken pipe, reset, or EOF where a
//! response was due, the signature of a server restart or an idle
//! timeout — it reconnects and resends that frame **once** before
//! surfacing a [`NetError`]. One retry is safe because every request
//! in the protocol is an idempotent read (queries, stats, keys, ping);
//! it is capped at one so a dead server fails fast instead of
//! retry-looping. A client that has surfaced an error reconnects
//! lazily on its next call, so long-lived clients ride out server
//! restarts without being rebuilt.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use dpgrid_geo::Rect;
use dpgrid_serve::wire::{
    RequestBody, ResponseBody, WireError, WireQuery, WireRect, WireRequest, WireResponse,
};
use dpgrid_serve::{EngineStats, QueryRequest, QueryResponse};

use std::time::Duration;

use crate::error::{NetError, Result};

/// How long a dial may block before it fails — a silently dropping
/// host (no RST) must not hang callers for the OS default of minutes.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Default bound on one response wait (and one blocking write). A hung
/// server surfaces a timeout error instead of stalling the caller —
/// and with it every router batch scattered through this connection.
/// Generous: the slowest legitimate responses (a cold compile of a
/// huge surface behind a multi-thousand-rect batch) finish well under
/// it. Tune or disable per client with [`TcpClient::with_io_timeout`].
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One live connection: buffered reader/writer halves of a stream.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr, io_timeout: Option<Duration>) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }
}

/// A blocking connection to a [`crate::TcpServer`] (or anything else
/// speaking the wire protocol over newline-delimited JSON), with
/// one-shot reconnection on stale connections and bounded waits
/// (see [`CONNECT_TIMEOUT`] / [`DEFAULT_IO_TIMEOUT`]).
#[derive(Debug)]
pub struct TcpClient {
    peer: SocketAddr,
    conn: Option<Conn>,
    io_timeout: Option<Duration>,
    next_id: u64,
}

impl TcpClient {
    /// Connects to `addr`. When `addr` resolves to several addresses
    /// the first that connects wins, and that concrete address is what
    /// reconnection later dials.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let io_timeout = Some(DEFAULT_IO_TIMEOUT);
        let mut last_err: Option<NetError> = None;
        for candidate in addr.to_socket_addrs()? {
            match Conn::open(candidate, io_timeout) {
                Ok(conn) => {
                    return Ok(TcpClient {
                        peer: candidate,
                        conn: Some(conn),
                        io_timeout,
                        next_id: 1,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        }))
    }

    /// Bounds each blocking read/write (`None` waits forever, the
    /// pre-timeout behaviour). A wait that exceeds the bound surfaces
    /// a timeout [`NetError::Io`] and poisons the connection — it is
    /// *not* retried, since the server may be alive but slow and a
    /// retry would just wait again.
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Result<Self> {
        self.io_timeout = timeout;
        if let Some(conn) = &self.conn {
            let stream = conn.reader.get_ref();
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
        }
        Ok(self)
    }

    /// The concrete peer address this client dials (and redials).
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Whether a connection is currently open (a client that surfaced
    /// a transport error holds none until its next call reconnects).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Round-trips a liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the server's engine counters.
    pub fn stats(&mut self) -> Result<EngineStats> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Fetches the server's advertised release keys (sorted). A
    /// pre-`Keys` server answers with a `MalformedRequest` wire error —
    /// treat it as "feature unsupported", per the versioning policy.
    pub fn keys(&mut self) -> Result<Vec<String>> {
        match self.call(RequestBody::Keys)? {
            ResponseBody::Keys(keys) => Ok(keys),
            other => Err(unexpected("Keys", &other)),
        }
    }

    /// Answers `rects` against the release under `key`. Server-side
    /// failures (unknown key, invalid rect, overload) come back as
    /// [`NetError::Server`] with a stable error code.
    pub fn query(&mut self, key: &str, rects: &[Rect]) -> Result<QueryResponse> {
        let query = WireQuery {
            release_key: key.to_string(),
            rects: rects.iter().map(WireRect::from).collect(),
        };
        match self.call(RequestBody::Query(query))? {
            ResponseBody::Answers(answers) => Ok(answers.into_response()),
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Answers several requests (possibly across releases) in one
    /// round trip. The outer `Result` is the transport; each inner
    /// result is that query's own outcome, failures isolated exactly
    /// as in [`dpgrid_serve::QueryEngine::answer_batch`].
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<std::result::Result<QueryResponse, WireError>>> {
        let queries = requests.iter().map(WireQuery::from_request).collect();
        match self.call(RequestBody::Batch(queries))? {
            ResponseBody::Batch(outcomes) => {
                if outcomes.len() != requests.len() {
                    return Err(NetError::Protocol(format!(
                        "batch of {} queries got {} outcomes",
                        requests.len(),
                        outcomes.len()
                    )));
                }
                Ok(outcomes
                    .into_iter()
                    .map(|outcome| match outcome {
                        dpgrid_serve::wire::WireOutcome::Answered(a) => Ok(a.into_response()),
                        dpgrid_serve::wire::WireOutcome::Failed(e) => Err(e),
                    })
                    .collect())
            }
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Sends one frame and blocks for its response. A *stale*
    /// connection (the server went away between calls: broken pipe,
    /// reset, EOF in place of a response) is redialed and the frame
    /// resent exactly once; every request is an idempotent read, so
    /// the retry cannot double-apply anything.
    fn call(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = WireRequest::new(id, body).encode();
        // Refuse to send a frame the server is guaranteed to reject
        // (and punish with a mid-write close the retry would only run
        // into again): fail typed and attributable, connection intact.
        if frame.len() + 1 > dpgrid_serve::wire::MAX_FRAME_BYTES {
            return Err(NetError::Protocol(format!(
                "request frame of {} bytes exceeds the protocol's {} byte cap; split the batch",
                frame.len() + 1,
                dpgrid_serve::wire::MAX_FRAME_BYTES
            )));
        }
        match self.exchange(&frame, id) {
            Err(e) if is_stale_connection(&e) => {
                self.conn = None;
                let retried = self.exchange(&frame, id);
                if matches!(retried, Err(ref e) if !matches!(e, NetError::Server(_))) {
                    self.conn = None;
                }
                retried
            }
            Err(e) => {
                // Transport and framing errors poison the connection
                // (a desynchronised stream must not serve the next
                // call); typed server errors leave it healthy.
                if !matches!(e, NetError::Server(_)) {
                    self.conn = None;
                }
                Err(e)
            }
            ok => ok,
        }
    }

    /// One write/read round trip on the current connection, opening a
    /// fresh one if none is held.
    fn exchange(&mut self, frame: &str, id: u64) -> Result<ResponseBody> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(self.peer, self.io_timeout)?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        conn.writer.write_all(frame.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;

        let mut line = String::new();
        if conn.reader.read_line(&mut line)? == 0 {
            return Err(NetError::Disconnected);
        }
        let response = WireResponse::decode(line.trim_end_matches(['\r', '\n']))
            .map_err(|e| NetError::Protocol(e.error.to_string()))?;
        // Typed server errors win over the id check: a frame the
        // server could not attribute (oversized, unparseable) is
        // reported under id 0, and this client is strictly
        // request-response, so any error frame belongs to the
        // in-flight request.
        match response.body {
            ResponseBody::Error(e) => Err(NetError::Server(e)),
            body if response.id == id => Ok(body),
            _ => Err(NetError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            ))),
        }
    }
}

/// Whether an error means "the connection died under us" — the cases a
/// single redial-and-resend can fix (server restart, idle reap), as
/// opposed to a live server actively answering with an error.
fn is_stale_connection(e: &NetError) -> bool {
    match e {
        NetError::Disconnected => true,
        NetError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::NotConnected
                | std::io::ErrorKind::UnexpectedEof
        ),
        NetError::Protocol(_) | NetError::Server(_) => false,
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
