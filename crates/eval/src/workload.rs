//! Query workload generation (§V-A).

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{generators::PaperDataset, Domain, Rect};

use crate::{EvalError, Result};

/// Specification of a query workload: the smallest query size, the
/// number of doublings, and the queries per size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Width of the smallest query `q1`.
    pub q1_width: f64,
    /// Height of the smallest query `q1`.
    pub q1_height: f64,
    /// Number of sizes (`6` in the paper; each doubles both extents, so
    /// `q6` covers `32 × 32` times the area of `q1`).
    pub num_sizes: usize,
    /// Random queries per size (`200` in the paper).
    pub queries_per_size: usize,
}

impl WorkloadSpec {
    /// The paper's workload for one of its four datasets (Table II).
    pub fn paper(dataset: PaperDataset) -> Self {
        let (w, h) = dataset.q1_size();
        WorkloadSpec {
            q1_width: w,
            q1_height: h,
            num_sizes: 6,
            queries_per_size: 200,
        }
    }

    /// Overrides the number of queries per size (for fast test runs).
    pub fn with_queries_per_size(mut self, n: usize) -> Self {
        self.queries_per_size = n;
        self
    }

    fn validate(&self, domain: &Domain) -> Result<()> {
        if !self.q1_width.is_finite()
            || self.q1_width <= 0.0
            || !self.q1_height.is_finite()
            || self.q1_height <= 0.0
        {
            return Err(EvalError::InvalidConfig(format!(
                "q1 must have positive extents, got {} x {}",
                self.q1_width, self.q1_height
            )));
        }
        if self.num_sizes == 0 || self.queries_per_size == 0 {
            return Err(EvalError::InvalidConfig(
                "workload needs at least one size and one query".into(),
            ));
        }
        if self.q1_width > domain.width() || self.q1_height > domain.height() {
            return Err(EvalError::InvalidConfig(format!(
                "q1 ({} x {}) exceeds the domain ({} x {})",
                self.q1_width,
                self.q1_height,
                domain.width(),
                domain.height()
            )));
        }
        Ok(())
    }
}

/// A generated workload: for each size index, a batch of random
/// query rectangles placed uniformly inside the domain.
///
/// Query extents are clamped to the domain size (the paper's `q6` covers
/// between a quarter and half of the whole space, so clamping only
/// triggers for non-paper configurations).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// `(width, height)` of each size class.
    sizes: Vec<(f64, f64)>,
    /// `queries[size_index][query_index]`.
    queries: Vec<Vec<Rect>>,
}

impl QueryWorkload {
    /// Generates the workload over `domain`.
    pub fn generate(domain: &Domain, spec: &WorkloadSpec, rng: &mut impl Rng) -> Result<Self> {
        spec.validate(domain)?;
        let d = domain.rect();
        let mut sizes = Vec::with_capacity(spec.num_sizes);
        let mut queries = Vec::with_capacity(spec.num_sizes);
        for i in 0..spec.num_sizes {
            let scale = 2f64.powi(i as i32);
            let w = (spec.q1_width * scale).min(domain.width());
            let h = (spec.q1_height * scale).min(domain.height());
            sizes.push((w, h));
            let mut batch = Vec::with_capacity(spec.queries_per_size);
            for _ in 0..spec.queries_per_size {
                let max_x = d.x1() - w;
                let max_y = d.y1() - h;
                let x0 = if max_x > d.x0() {
                    rng.random_range(d.x0()..=max_x)
                } else {
                    d.x0()
                };
                let y0 = if max_y > d.y0() {
                    rng.random_range(d.y0()..=max_y)
                } else {
                    d.y0()
                };
                batch.push(Rect::new(x0, y0, x0 + w, y0 + h).expect("query inside domain"));
            }
            queries.push(batch);
        }
        Ok(QueryWorkload { sizes, queries })
    }

    /// Number of size classes.
    pub fn num_sizes(&self) -> usize {
        self.sizes.len()
    }

    /// `(width, height)` of size class `i`.
    pub fn size(&self, i: usize) -> (f64, f64) {
        self.sizes[i]
    }

    /// The queries of size class `i`.
    pub fn queries(&self, i: usize) -> &[Rect] {
        &self.queries[i]
    }

    /// Iterates over `(size_index, query)` pairs in order.
    pub fn iter_flat(&self) -> impl Iterator<Item = (usize, &Rect)> {
        self.queries
            .iter()
            .enumerate()
            .flat_map(|(i, batch)| batch.iter().map(move |q| (i, q)))
    }

    /// Total number of queries across all sizes.
    pub fn total_queries(&self) -> usize {
        self.queries.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn paper_specs_match_table2() {
        let road = WorkloadSpec::paper(PaperDataset::Road);
        assert_eq!((road.q1_width, road.q1_height), (0.5, 0.5));
        assert_eq!(road.num_sizes, 6);
        assert_eq!(road.queries_per_size, 200);
        let checkin = WorkloadSpec::paper(PaperDataset::Checkin);
        assert_eq!((checkin.q1_width, checkin.q1_height), (6.0, 3.0));
    }

    #[test]
    fn sizes_double_and_queries_fit() {
        let domain = PaperDataset::Road.domain();
        let spec = WorkloadSpec::paper(PaperDataset::Road).with_queries_per_size(50);
        let w = QueryWorkload::generate(&domain, &spec, &mut rng(1)).unwrap();
        assert_eq!(w.num_sizes(), 6);
        // q6 = 16 x 16 for road.
        assert_eq!(w.size(5), (16.0, 16.0));
        for i in 1..6 {
            let (pw, ph) = w.size(i - 1);
            let (cw, ch) = w.size(i);
            assert!((cw - pw * 2.0).abs() < 1e-9);
            assert!((ch - ph * 2.0).abs() < 1e-9);
        }
        for (_, q) in w.iter_flat() {
            assert!(domain.rect().contains_rect(q), "query {q:?} escapes domain");
        }
        assert_eq!(w.total_queries(), 300);
    }

    #[test]
    fn oversize_queries_clamp_to_domain() {
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
        let spec = WorkloadSpec {
            q1_width: 3.0,
            q1_height: 3.0,
            num_sizes: 3,
            queries_per_size: 10,
        };
        let w = QueryWorkload::generate(&domain, &spec, &mut rng(2)).unwrap();
        assert_eq!(w.size(2), (4.0, 4.0)); // clamped
        for q in w.queries(2) {
            assert_eq!(q.width(), 4.0);
        }
    }

    #[test]
    fn validation_errors() {
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
        let bad = WorkloadSpec {
            q1_width: 5.0,
            q1_height: 1.0,
            num_sizes: 2,
            queries_per_size: 10,
        };
        assert!(QueryWorkload::generate(&domain, &bad, &mut rng(3)).is_err());
        let zero = WorkloadSpec {
            q1_width: 1.0,
            q1_height: 1.0,
            num_sizes: 0,
            queries_per_size: 10,
        };
        assert!(QueryWorkload::generate(&domain, &zero, &mut rng(3)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let domain = PaperDataset::Landmark.domain();
        let spec = WorkloadSpec::paper(PaperDataset::Landmark).with_queries_per_size(5);
        let a = QueryWorkload::generate(&domain, &spec, &mut rng(7)).unwrap();
        let b = QueryWorkload::generate(&domain, &spec, &mut rng(7)).unwrap();
        for i in 0..a.num_sizes() {
            assert_eq!(a.queries(i), b.queries(i));
        }
    }

    #[test]
    fn placement_spreads_over_domain() {
        let domain = Domain::from_corners(0.0, 0.0, 100.0, 100.0).unwrap();
        let spec = WorkloadSpec {
            q1_width: 1.0,
            q1_height: 1.0,
            num_sizes: 1,
            queries_per_size: 500,
        };
        let w = QueryWorkload::generate(&domain, &spec, &mut rng(8)).unwrap();
        let left = w.queries(0).iter().filter(|q| q.x0() < 50.0).count();
        let frac = left as f64 / 500.0;
        assert!((frac - 0.5).abs() < 0.1, "left fraction {frac}");
    }
}
