//! # dpgrid — differentially private grids for geospatial data
//!
//! A faithful, production-quality Rust implementation of
//! *"Differentially Private Grids for Geospatial Data"* (Qardaji, Yang,
//! Li — ICDE 2013), including the paper's two contributions — the
//! **Uniform Grid (UG)** method with its grid-size guideline and the
//! **Adaptive Grid (AG)** method — plus every baseline the paper compares
//! against (KD-standard, KD-hybrid, b-ary hierarchies with constrained
//! inference, and the Privelet wavelet method) and the full evaluation
//! harness that regenerates the paper's tables and figures.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable module names.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`kernels`] | `dpgrid-kernels` | the vectorized data-plane kernel layer: batch positional popcount, fused GRR tally scatter, exact f64 affine/add — each with a scalar reference and an AVX2 implementation behind one runtime dispatcher (`DPGRID_FORCE_SCALAR` overrides) |
//! | [`geo`] | `dpgrid-geo` | points, rectangles, domains, datasets, dense histograms, synthetic generators, compiled cell indexes (`cell_index`), the `Synopsis`/`Build` traits and the unified `DpError` |
//! | [`mech`] | `dpgrid-mech` | Laplace / geometric / exponential mechanisms, budget accounting |
//! | [`core`] | `dpgrid-core` | UG, AG, the guidelines, error analysis, the `Method` registry, the publishing `Pipeline`, the compiled query surface (`surface`) and the portable `Release` format |
//! | [`baselines`] | `dpgrid-baselines` | KD-trees, hierarchies, constrained inference, Privelet |
//! | [`eval`] | `dpgrid-eval` | query workloads, error metrics, the experiment harness |
//! | [`serve`] | `dpgrid-serve` | the multi-release serving engine: the memory-budgeted release `Catalog`, the batched `QueryEngine` frontend with admission control, the transport-facing `QueryService` trait, the versioned wire protocol (`serve::wire`) and the sharded serving tier (`serve::shard`) |
//! | [`net`] | `dpgrid-net` | the TCP transport: thread-per-connection `TcpServer`, reconnecting `TcpClient`/`TcpClientPool`, the `RemoteShard` leg of the sharded tier and the `ReportRouter` write-path fan-out |
//! | [`stream`] | `dpgrid-stream` | the temporal subsystem: streaming ingestion into epoch-sliced releases under a `BudgetSchedule`, plus tiered compaction of expired epochs |
//! | [`ldp`] | `dpgrid-ldp` | the local-DP ingestion front door: the per-epoch `ReportCollector` over the `mech` frequency oracles (GRR / OUE), and the `CollectingService` wrapper that accepts `Report` wire frames on serving connections |
//!
//! # One publishing API: build → publish → serve
//!
//! Every method is one entry in the [`core::Method`] registry, every
//! build funnels through `Method::build_boxed`, and the
//! [`core::Pipeline`] chains the whole workflow: pick a method, spend
//! ε, publish a [`core::Release`] carrying typed
//! [`core::ReleaseMetadata`] (the declarative method, its
//! guideline-resolved parameters, ε, and — for seeded experiment
//! releases — the seed). Serving then goes through one seam:
//! [`core::CompiledSurface`]. Any synopsis's exported cells compile —
//! once, lazily on first answer — into either a dense lattice +
//! summed-area table (grid-shaped partitions: O(log cells) per query)
//! or a sorted row-band / interval index (irregular partitions such as
//! KD trees; its band segment tree doubles as a coarse y-skip-list, so
//! wide queries absorb whole fully-covered band runs in O(log bands)
//! instead of stabbing each band), so a JSON release loaded from disk
//! is exactly as fast to query as the in-memory type that produced it.
//! Batch endpoints (`Synopsis::answer_all`) chunk large query slices
//! across scoped threads.
//!
//! # The serving stack: many releases, one engine, any transport
//!
//! Above the per-release surface sits the multi-release serving layer
//! ([`serve`], crate `dpgrid-serve`):
//!
//! * a [`serve::Catalog`] holds keyed, **versioned** releases —
//!   inserted from memory, handed over zero-copy from a pipeline via
//!   [`core::Pipeline::publish_into`], or bulk-loaded from a directory
//!   of release JSON dumps — and bounds memory with a **byte-budgeted
//!   LRU** of compiled surfaces: at most
//!   [`serve::Catalog::memory_budget`] bytes of compiled index stay
//!   resident (sized via [`core::CompiledSurface::memory_bytes`]), and
//!   a resident index is never recompiled (releases share their
//!   compilation behind `Arc`, so clones and leases all point at the
//!   same index);
//! * a [`serve::QueryEngine`] is the thread-safe batched frontend: it
//!   admits every request against a bounded in-flight rectangle budget
//!   (overload sheds with a typed `Overloaded` error instead of
//!   queueing unboundedly), routes [`serve::QueryRequest`] batches
//!   across releases, leases every compiled surface under one short
//!   catalog lock, answers with no lock held, shards work over
//!   `std::thread::scope` workers through the same batched driver the
//!   evaluation harness uses, and returns typed
//!   [`serve::QueryResponse`]s carrying the release version and cache
//!   state. Inserts and queries interleave freely — the concurrency
//!   regression tests hammer one engine from eight threads while
//!   re-versioning keys.
//!
//! Transports plug into the engine through one seam, the
//! [`serve::QueryService`] trait, and speak the versioned wire
//! protocol of [`serve::wire`]: single-line JSON frames, rectangle
//! validation at the boundary (NaN / inverted rects never reach the
//! engine), and stable error codes (`UnknownKey`, `InvalidQuery`,
//! `Overloaded`, …). The first transport ships in [`net`]
//! (crate `dpgrid-net`): a std-only TCP server
//! ([`net::TcpServer`], thread-per-connection over newline-delimited
//! frames, graceful shutdown) and a blocking [`net::TcpClient`] that
//! redials stale connections once (server restarts don't strand
//! long-lived clients) — see `examples/net_roundtrip.rs` for the full
//! publish → serve → query-over-TCP loop.
//!
//! # The sharded tier: one keyspace over many engines
//!
//! When one engine's host runs out of cores or memory, the serving
//! tier scales *horizontally* through [`serve::shard`]
//! (`dpgrid::serve::shard`):
//!
//! * a [`serve::ShardRouter`] routes every release key to the shard
//!   that owns it by deterministic **rendezvous hashing** over shard
//!   names ([`core::rendezvous_route`] — no coordination, no lookup
//!   table, minimal remapping on topology changes), scatter–gathers
//!   mixed-key batches across the owning shards with order-preserving
//!   reassembly, isolates failures per shard (one backend's
//!   `Overloaded` or unreachability fails only its sub-batch), and
//!   reports exact merged [`serve::EngineStats`] plus a per-shard
//!   [`serve::RouterStats`] breakdown;
//! * shards are [`serve::Shard`]s — [`serve::LocalShard`] wraps an
//!   in-process engine, [`net::RemoteShard`] dials an engine on
//!   another host through a reconnecting [`net::TcpClientPool`] — and
//!   a router mixes both transparently;
//! * the router is itself a [`serve::QueryService`], so a
//!   [`net::TcpServer`] bound to it becomes a **front-door node**
//!   proxying N backends with the unchanged wire protocol;
//! * publishing agrees with routing by construction: a
//!   [`core::ShardedSink`] fans [`core::Pipeline::publish_into`]
//!   across named sinks with the same hash, so build → publish →
//!   route place every key identically.
//!
//! See `examples/sharded_serving.rs` for the full fleet — local and
//! remote shards behind one front door — and `tests/sharded_serving.rs`
//! for the equivalence guarantee (a 4-shard router answers mixed
//! batches identically to one engine holding everything).
//!
//! # The temporal subsystem: streams, epochs, windows
//!
//! Timestamped point streams enter through [`stream`]
//! (crate `dpgrid-stream`) and come out the same serving stack as
//! static releases:
//!
//! * a [`stream::StreamIngestor`] stages points into bounded
//!   per-epoch buffers (an [`core::EpochLayout`] maps timestamps to
//!   epoch indices), tracks an event-time watermark with configurable
//!   allowed lateness, and — as epochs seal — publishes **one release
//!   per epoch** through the ordinary [`core::Pipeline`] into any
//!   [`core::ReleaseSink`], under the epoch-key grammar
//!   `{keyspace}@epoch:{i}` of [`core::temporal`];
//! * each epoch's ε comes from a [`mech::BudgetSchedule`] — uniform
//!   shares over a fixed horizon, or exponentially decaying shares
//!   summing to the total over an infinite stream — charged exactly
//!   once per epoch (late arrivals and exhausted budgets fail typed,
//!   never silently overspend);
//! * a [`stream::Compactor`] merges expired fine epochs into coarser
//!   tiers (`{keyspace}@epoch:{s}-{e}`) via [`core::merge_releases`]
//!   — pure post-processing, ε-free — publishing the tier before
//!   evicting the fine releases so coverage never transiently drops;
//! * sliding-window queries resolve and sum the covering epoch
//!   surfaces through [`serve::answer_window`] against any
//!   [`serve::QueryService`], or in one round trip over TCP via
//!   [`net::TcpClient::window`] (wire kind `Window`, additive in both
//!   codecs). Answers report exactly which epoch ranges were summed,
//!   so compaction's coarsening stays visible.
//!
//! See `examples/streaming_window.rs` for the loop (ingest → seal →
//! window ≡ per-epoch sums) and `tests/streaming_temporal.rs` for the
//! end-to-end guarantee over the full TCP front door.
//!
//! # The local-DP front door: reports in, releases out
//!
//! Everything above is *central* DP — a trusted curator holds the raw
//! points. The [`ldp`] crate (`dpgrid-ldp`) adds the complementary
//! *local* trust model on the same grids, fed over the same wire
//! protocol:
//!
//! * each user perturbs their own grid cell **on-device** with a
//!   frequency oracle from [`mech`] — [`mech::Grr`] (generalized
//!   randomized response over cell indices) or [`mech::Oue`]
//!   (unary encoding with per-bit flips, packed into `u64` words) —
//!   behind the one [`mech::FrequencyOracle`] trait;
//! * batches of perturbed reports travel as the `Report` wire kind
//!   (JSON v1 and binary v2; [`net::TcpClient::submit_reports`]
//!   pipelines them, [`net::ReportRouter`] scatters them to the shard
//!   that will serve the epoch, by the same rendezvous placement the
//!   read side routes with);
//! * a [`ldp::ReportCollector`] behind [`ldp::CollectingService`]
//!   folds them into flat per-epoch tally vectors (chunked array
//!   arithmetic, no per-report allocation), charges each epoch's ε
//!   through a [`mech::BudgetSchedule`] exactly once at seal time,
//!   debiases, and publishes an ordinary [`core::Release`] under the
//!   epoch-key grammar — served, sharded, and windowed exactly like a
//!   central release, but tagged [`core::TrustModel::Local`] in its
//!   metadata (the estimator is far noisier, and the ε is per user per
//!   epoch — consumers can tell the two models apart).
//!
//! See `examples/ldp_ingestion.rs` for the loop (users perturb →
//! batched over TCP → seal → query) and `tests/ldp_ingestion.rs` for
//! the end-to-end guarantee.
//!
//! # Quickstart
//!
//! ```
//! use dpgrid::prelude::*;
//!
//! // A small synthetic dataset (storage-facility-like distribution).
//! let dataset = PaperDataset::Storage.generate_n(42, 2_000).unwrap();
//!
//! // Publish an adaptive-grid release under a total budget of ε = 1.
//! // (`seed` makes the example reproducible; leave it off — and the
//! // noise unpredictable — for production releases.)
//! let release = Pipeline::new(&dataset)
//!     .epsilon(1.0)
//!     .method(Method::ag_suggested())
//!     .seed(7)
//!     .publish()
//!     .unwrap();
//!
//! // The release knows what it is…
//! assert_eq!(release.method_kind(), Some(&Method::ag_suggested()));
//! assert_eq!(release.epsilon(), 1.0);
//!
//! // …answers rectangle count queries through its compiled surface…
//! let query = Rect::new(-100.0, 30.0, -80.0, 45.0).unwrap();
//! let estimate = release.answer(&query);
//! let truth = dataset.count_in(&query) as f64;
//! assert!((estimate - truth).abs() < truth.max(100.0));
//!
//! // …and is safe to share: every value inside is ε-DP output.
//! let mut json = Vec::new();
//! release.write_json(&mut json).unwrap();
//! ```

pub use dpgrid_baselines as baselines;
pub use dpgrid_core as core;
pub use dpgrid_eval as eval;
pub use dpgrid_geo as geo;
pub use dpgrid_kernels as kernels;
pub use dpgrid_ldp as ldp;
pub use dpgrid_mech as mech;
pub use dpgrid_net as net;
pub use dpgrid_serve as serve;
pub use dpgrid_stream as stream;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dpgrid_baselines::{
        HierarchicalGrid, HierarchyConfig, KdConfig, KdHybrid, KdStandard, Privelet, PriveletConfig,
    };
    pub use dpgrid_core::{
        epoch_key, merge_releases, parse_epoch_key, parse_epoch_key_strict, AdaptiveGrid, AgConfig,
        CompiledSurface, EpochLayout, EpochRange, GridSize, Method, NoiseKind, Pipeline, Release,
        ReleaseMetadata, ReleaseSink, ShardedSink, TrustModel, UgConfig, UniformGrid,
    };
    pub use dpgrid_geo::generators::PaperDataset;
    pub use dpgrid_geo::{
        Build, DenseGrid, Domain, DpError, GeoDataset, Point, PointIndex, Rect, Synopsis,
    };
    pub use dpgrid_ldp::{CollectingService, CollectorConfig, LdpError, ReportCollector};
    pub use dpgrid_mech::{
        BudgetSchedule, FrequencyOracle, Grr, LaplaceMechanism, LocalReport, Oue, PrivacyBudget,
    };
    pub use dpgrid_net::{RemoteShard, ReportRouter, TcpClient, TcpClientPool, TcpServer};
    pub use dpgrid_serve::{
        answer_window, Catalog, EngineStats, LocalShard, QueryEngine, QueryRequest, QueryResponse,
        QueryService, ReportAck, ReportBatch, ReportPayload, ReportService, RouterStats,
        ServeError, Shard, ShardRouter, WindowAnswer, WindowQuery,
    };
    pub use dpgrid_stream::{Compactor, StreamIngestor};
}
