//! Axis-aligned rectangles with half-open semantics.

use serde::{Deserialize, Serialize};

use crate::{GeoError, Point, Result};

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)`.
///
/// Rectangles are the common currency of the synopsis framework: grid
/// cells, query ranges and dataset domains are all `Rect`s. The half-open
/// convention means a family of edge-adjacent rectangles tiles the plane
/// without double counting, which is what the paper's cell partitions
/// require.
///
/// Invariants enforced by [`Rect::new`]: all coordinates finite and
/// `x0 <= x1`, `y0 <= y1` (degenerate zero-area rectangles are allowed;
/// use [`Rect::new_nonempty`] to also reject those).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    /// Creates a rectangle, validating finiteness and corner ordering.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self> {
        for (v, context) in [
            (x0, "rect x0"),
            (y0, "rect y0"),
            (x1, "rect x1"),
            (y1, "rect y1"),
        ] {
            if !v.is_finite() {
                return Err(GeoError::NonFiniteCoordinate { value: v, context });
            }
        }
        if x0 > x1 || y0 > y1 {
            return Err(GeoError::InvertedRect {
                lo: (x0, y0),
                hi: (x1, y1),
            });
        }
        Ok(Rect { x0, y0, x1, y1 })
    }

    /// Creates a rectangle that must have strictly positive area.
    pub fn new_nonempty(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self> {
        let r = Rect::new(x0, y0, x1, y1)?;
        if r.is_empty() {
            return Err(GeoError::EmptyRect);
        }
        Ok(r)
    }

    /// Builds the bounding rectangle of a non-empty point slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut x0 = first.x;
        let mut y0 = first.y;
        let mut x1 = first.x;
        let mut y1 = first.y;
        for p in &points[1..] {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        Rect::new(x0, y0, x1, y1).ok()
    }

    /// Lower x edge.
    #[inline]
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Lower y edge.
    #[inline]
    pub fn y0(&self) -> f64 {
        self.y0
    }

    /// Upper x edge (exclusive).
    #[inline]
    pub fn x1(&self) -> f64 {
        self.x1
    }

    /// Upper y edge (exclusive).
    #[inline]
    pub fn y1(&self) -> f64 {
        self.y1
    }

    /// Width of the rectangle (`x1 - x0`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle (`y1 - y0`).
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether the rectangle has zero area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Half-open containment test: `x0 <= p.x < x1 && y0 <= p.y < y1`.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Containment test that is closed on the upper edges.
    ///
    /// Used by the domain to admit points sitting exactly on the domain's
    /// maximum coordinates (they are bucketed into the last cell).
    #[inline]
    pub fn contains_closed(&self, p: &Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Whether `other` is completely inside `self` (as point sets of the
    /// half-open boxes).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// Intersection of two rectangles, or `None` when the overlap has zero
    /// area.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x0 < x1 && y0 < y1 {
            Some(Rect { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// Whether the two rectangles overlap with positive area.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Fraction of this rectangle's area covered by `query`.
    ///
    /// This is the quantity the uniformity assumption turns into an
    /// estimated count: a cell with noisy count `n` intersected by a query
    /// contributes `n * cell.overlap_fraction(query)`. Returns a value in
    /// `[0, 1]`; `0` for empty cells.
    pub fn overlap_fraction(&self, query: &Rect) -> f64 {
        let area = self.area();
        if area <= 0.0 {
            return 0.0;
        }
        match self.intersection(query) {
            Some(i) => (i.area() / area).clamp(0.0, 1.0),
            None => 0.0,
        }
    }

    /// Splits the rectangle at `x`, returning the left and right parts.
    ///
    /// `x` is clamped into `[x0, x1]`, so either side may be empty.
    pub fn split_x(&self, x: f64) -> (Rect, Rect) {
        let x = x.clamp(self.x0, self.x1);
        (
            Rect {
                x0: self.x0,
                y0: self.y0,
                x1: x,
                y1: self.y1,
            },
            Rect {
                x0: x,
                y0: self.y0,
                x1: self.x1,
                y1: self.y1,
            },
        )
    }

    /// Splits the rectangle at `y`, returning the bottom and top parts.
    pub fn split_y(&self, y: f64) -> (Rect, Rect) {
        let y = y.clamp(self.y0, self.y1);
        (
            Rect {
                x0: self.x0,
                y0: self.y0,
                x1: self.x1,
                y1: y,
            },
            Rect {
                x0: self.x0,
                y0: y,
                x1: self.x1,
                y1: self.y1,
            },
        )
    }

    /// Sub-rectangle for cell `(col, row)` of an `cols × rows` equi-width
    /// grid laid over this rectangle.
    ///
    /// Cell edges are computed as exact linear interpolations so that
    /// adjacent cells share the same edge coordinate and the union of all
    /// cells is exactly `self`.
    pub fn grid_cell(&self, cols: usize, rows: usize, col: usize, row: usize) -> Rect {
        debug_assert!(col < cols && row < rows);
        let fx = |i: usize| self.x0 + (self.x1 - self.x0) * (i as f64) / (cols as f64);
        let fy = |j: usize| self.y0 + (self.y1 - self.y0) * (j as f64) / (rows as f64);
        Rect {
            x0: fx(col),
            y0: fy(row),
            x1: fx(col + 1),
            y1: fy(row + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(x0, y0, x1, y1).unwrap()
    }

    #[test]
    fn new_rejects_inverted() {
        assert!(Rect::new(1.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new(0.0, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn new_rejects_nan() {
        assert!(Rect::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn new_allows_degenerate_but_nonempty_rejects() {
        assert!(Rect::new(0.0, 0.0, 0.0, 1.0).is_ok());
        assert!(Rect::new_nonempty(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new_nonempty(0.0, 0.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn half_open_containment() {
        let c = r(0.0, 0.0, 1.0, 1.0);
        assert!(c.contains(&Point::new(0.0, 0.0)));
        assert!(!c.contains(&Point::new(1.0, 0.5)));
        assert!(!c.contains(&Point::new(0.5, 1.0)));
        assert!(c.contains_closed(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn intersection_basic() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(1.0, 1.0, 2.0, 2.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_disjoint_and_touching() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersection(&b).is_none());
        // Touching along an edge has zero-area overlap.
        let c = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
    }

    #[test]
    fn overlap_fraction_halves() {
        let cell = r(0.0, 0.0, 2.0, 2.0);
        let q = r(0.0, 0.0, 1.0, 2.0);
        assert!((cell.overlap_fraction(&q) - 0.5).abs() < 1e-12);
        // Query covering the whole cell.
        let big = r(-1.0, -1.0, 5.0, 5.0);
        assert_eq!(cell.overlap_fraction(&big), 1.0);
        // Disjoint query.
        let far = r(10.0, 10.0, 11.0, 11.0);
        assert_eq!(cell.overlap_fraction(&far), 0.0);
    }

    #[test]
    fn grid_cells_tile_exactly() {
        let d = r(-3.0, 1.0, 7.0, 9.0);
        let (cols, rows) = (7, 5);
        let mut total_area = 0.0;
        for row in 0..rows {
            for col in 0..cols {
                let cell = d.grid_cell(cols, rows, col, row);
                total_area += cell.area();
                // Adjacent cells share exact edges.
                if col + 1 < cols {
                    let right = d.grid_cell(cols, rows, col + 1, row);
                    assert_eq!(cell.x1(), right.x0());
                }
                if row + 1 < rows {
                    let up = d.grid_cell(cols, rows, col, row + 1);
                    assert_eq!(cell.y1(), up.y0());
                }
            }
        }
        assert!((total_area - d.area()).abs() < 1e-9);
        // Outermost edges coincide with the rect's edges.
        assert_eq!(d.grid_cell(cols, rows, 0, 0).x0(), d.x0());
        assert_eq!(d.grid_cell(cols, rows, cols - 1, rows - 1).x1(), d.x1());
    }

    #[test]
    fn split_clamps() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let (l, rr) = a.split_x(-5.0);
        assert!(l.is_empty());
        assert_eq!(rr, a);
        let (b, t) = a.split_y(1.0);
        assert_eq!(b, r(0.0, 0.0, 2.0, 1.0));
        assert_eq!(t, r(0.0, 1.0, 2.0, 2.0));
    }

    #[test]
    fn bounding_box() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let b = Rect::bounding(&pts).unwrap();
        assert_eq!(b, r(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::bounding(&[]).is_none());
    }
}
