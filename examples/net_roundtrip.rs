//! Network round trip: publish DP releases, serve them over TCP, and
//! query them back — server and client in one process.
//!
//! ```sh
//! cargo run --release --example net_roundtrip
//! ```
//!
//! Demonstrates the whole transport-ready stack: `Pipeline` publishes
//! into a memory-budgeted `Catalog`, a `QueryEngine` (with admission
//! control) implements `QueryService`, a `TcpServer` exposes it over
//! newline-delimited JSON frames, and a blocking `TcpClient` pings,
//! queries, batches, observes typed errors (unknown key, invalid
//! rect semantics, overload) and reads engine stats over the same
//! connection — with every remote answer checked against the
//! in-process engine.

use std::sync::Arc;

use dpgrid::net::NetError;
use dpgrid::prelude::*;
use dpgrid::serve::wire::ErrorCode;

fn main() {
    // 1. Publish two releases into a catalog with a 64 MiB budget of
    //    resident compiled surface.
    let mut catalog = Catalog::with_memory_budget(64 << 20);
    for (i, (key, dataset)) in [
        ("storage", PaperDataset::Storage),
        ("landmark", PaperDataset::Landmark),
    ]
    .iter()
    .enumerate()
    {
        let data = dataset
            .generate_n(200 + i as u64, 20_000)
            .expect("generate dataset");
        Pipeline::new(&data)
            .epsilon(1.0)
            .method(Method::ag_suggested())
            .seed(11 + i as u64)
            .publish_into(&mut catalog, *key)
            .expect("publish release");
        println!(
            "published {key:>8}: {} cells",
            catalog.release(key).unwrap().cell_count()
        );
    }

    // 2. Serve it on an ephemeral loopback port. The engine sheds past
    //    4096 in-flight rectangles instead of queueing unboundedly.
    let engine = Arc::new(QueryEngine::new(catalog).with_admission_limit(4096));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback server");
    println!("serving on {}", server.local_addr());

    // 3. A client connects and works the protocol.
    let mut client = TcpClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    let queries = [
        Rect::new(-130.0, 10.0, -70.0, 50.0).expect("valid rect"),
        Rect::new(-100.0, 30.0, -90.0, 40.0).expect("valid rect"),
    ];
    for key in ["storage", "landmark"] {
        let remote = client.query(key, &queries).expect("remote answer");
        let local = engine
            .answer(&QueryRequest::new(key, queries.to_vec()))
            .expect("local answer");
        assert_eq!(
            remote.answers, local.answers,
            "TCP answers must equal the in-process engine's"
        );
        println!(
            "{key:>8} v{}: total ~ {:>9.1}, window ~ {:>8.1} (remote == local)",
            remote.version, remote.answers[0], remote.answers[1]
        );
    }

    // 4. One batch frame across both releases, failures isolated.
    let outcomes = client
        .query_batch(&[
            QueryRequest::new("storage", queries.to_vec()),
            QueryRequest::new("not-published", queries.to_vec()),
        ])
        .expect("batch transport");
    assert!(outcomes[0].is_ok());
    match &outcomes[1] {
        Err(e) if e.code == ErrorCode::UnknownKey => {
            println!("unknown key failed alone: {e}")
        }
        other => panic!("expected UnknownKey, got {other:?}"),
    }

    // 5. Overload: a request larger than the whole admission budget is
    //    shed with a typed, retryable error — never a hang.
    let flood: Vec<Rect> = (0..5000)
        .map(|i| {
            let t = i as f64 / 5000.0;
            Rect::new(-130.0 + t, 10.0, -70.0, 50.0).expect("valid rect")
        })
        .collect();
    match client.query("storage", &flood) {
        Err(NetError::Server(e)) if e.code == ErrorCode::Overloaded => {
            println!("flood of {} rects shed: {e}", flood.len())
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // 6. Operator view over the same connection.
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} requests ({} shed), {} answers, {}/{} budget bytes resident",
        stats.requests,
        stats.shed,
        stats.answers,
        stats.catalog.resident_bytes,
        stats.catalog.budget_bytes
    );
    assert!(stats.catalog.resident_bytes <= stats.catalog.budget_bytes);
    assert_eq!(stats.shed, 1);

    // 7. Graceful shutdown: connections drain and join.
    server.shutdown();
    println!("server shut down cleanly");
}
