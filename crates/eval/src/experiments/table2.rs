//! Table II — Guideline-1/2 predictions vs experimentally best sizes.
//!
//! For every dataset and ε the experiment sweeps UG over a size ladder
//! and AG over an `m₁` ladder, reports the best-performing sizes, and
//! sets them against the paper's suggested values. The success criterion
//! (DESIGN.md) is that the suggestion lands inside or adjacent to the
//! empirically best range.

use dpgrid_core::guidelines;
use dpgrid_geo::generators::PaperDataset;

use super::{best_by_mean, size_ladder, DataBundle, ExpContext};
use crate::method::Method;
use crate::report::{fmt, Table};
use crate::Result;

/// Runs the experiment; writes `table2/table2.csv` and per-panel sweep
/// CSVs, returns the markdown summary.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("table2");
    let mut summary = Table::new(
        "Table II — suggested vs experimentally best grid sizes",
        &[
            "dataset",
            "n",
            "eps",
            "UG suggested",
            "UG best (sweep)",
            "UG best err",
            "UG err at suggested",
            "AG m1 suggested",
            "AG m1 best (sweep)",
            "AG best err",
        ],
    );
    for which in PaperDataset::ALL {
        let bundle = DataBundle::prepare(which, ctx)?;
        let n = bundle.dataset.len();
        for &eps in &ctx.epsilons {
            let ug_suggested = guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
            let m1_suggested = guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C);

            // UG sweep over the ladder (suggested size included).
            let ug_sizes = size_ladder(ug_suggested);
            let ug_methods: Vec<Method> = ug_sizes.iter().map(|&m| Method::ug(m)).collect();
            let stem = format!("{}_eps{eps}_ug", which.name());
            let ug_evals = bundle.run_panel(&dir, &stem, &ug_methods, eps, ctx)?;
            let ug_best = best_by_mean(&ug_evals);
            let ug_at_suggested = ug_sizes
                .iter()
                .position(|&m| m == ug_suggested)
                .map(|i| ug_evals[i].rel_profile.mean)
                .unwrap_or(f64::NAN);

            // AG m1 sweep.
            let m1_sizes: Vec<usize> = size_ladder(m1_suggested)
                .into_iter()
                .filter(|&m| m >= 2)
                .collect();
            let ag_methods: Vec<Method> = m1_sizes.iter().map(|&m| Method::ag(m)).collect();
            let stem = format!("{}_eps{eps}_ag", which.name());
            let ag_evals = bundle.run_panel(&dir, &stem, &ag_methods, eps, ctx)?;
            let ag_best = best_by_mean(&ag_evals);

            summary.push_row(vec![
                which.name().to_string(),
                n.to_string(),
                eps.to_string(),
                ug_suggested.to_string(),
                ug_sizes[ug_best].to_string(),
                fmt(ug_evals[ug_best].rel_profile.mean),
                fmt(ug_at_suggested),
                m1_suggested.to_string(),
                m1_sizes[ag_best].to_string(),
                fmt(ag_evals[ag_best].rel_profile.mean),
            ]);
        }
    }
    summary.write_csv(&dir.join("table2.csv"))?;
    let mut md = String::from("## Table II — grid-size guidelines vs sweeps\n\n");
    md.push_str(&summary.to_markdown());
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_writes_outputs() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_table2_test"));
        ctx.scale = 512; // tiny datasets for speed
        ctx.queries_per_size = 10;
        let md = run(&ctx).unwrap();
        assert!(md.contains("Table II"));
        assert!(ctx.dir("table2").join("table2.csv").exists());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
