//! The release catalog: keyed, versioned releases plus a
//! capacity-bounded LRU of compiled surfaces.
//!
//! A [`Catalog`] owns [`Release`]s under string keys. Releases arrive
//! from memory ([`Catalog::insert`], or zero-copy from a publishing
//! pipeline via [`dpgrid_core::Pipeline::publish_into`]) or from a
//! directory of release JSON files ([`Catalog::load_dir`]). Inserting
//! under an existing key *re-versions* it: the version counter bumps
//! and the stale compiled surface is dropped.
//!
//! Compiled surfaces — the O(cells) indexes releases answer through —
//! are the memory-heavy part, so the catalog keeps at most
//! [`Catalog::capacity`] of them resident, evicting the
//! least-recently-used one ([`Release::evict_surface`]) when a lookup
//! compiles past the bound. Eviction is pure cache management: leased
//! [`SurfaceHandle`]s stay valid (the index is reference-counted), and
//! a later lookup of an evicted key recompiles from the retained
//! cells. A resident surface is never recompiled — lookups hand out
//! clones of the same `Arc`.
//!
//! Lookups are two-phase so a catalog behind a lock never compiles
//! while holding it: [`Catalog::lease`] resolves warm hits or hands
//! out a [`ColdLease`], the caller runs [`ColdLease::compile`] outside
//! the lock (per-release `OnceLock` serialisation keeps it
//! exactly-once), and [`Catalog::note_compiled`] folds the new
//! resident surface into the LRU. [`Catalog::surface`] bundles both
//! phases for direct (unlocked) owners.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use dpgrid_core::{CompiledSurface, Release, ReleaseSink};

use crate::error::{Result, ServeError};

/// Default bound on resident compiled surfaces.
pub const DEFAULT_SURFACE_CAPACITY: usize = 64;

/// Whether a surface lookup was served from the resident cache or had
/// to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// The compiled surface was already resident.
    Warm,
    /// The surface was compiled (first touch, or refetch after
    /// eviction / re-versioning) during this lookup.
    Cold,
}

/// A leased compiled surface plus the lookup's provenance, as returned
/// by [`Catalog::surface`].
#[derive(Debug, Clone)]
pub struct SurfaceHandle {
    /// The shared compiled surface; valid even after the catalog
    /// evicts or replaces the release.
    pub surface: Arc<CompiledSurface>,
    /// Whether this lookup hit the resident cache.
    pub cache: CacheState,
    /// Version of the release answered (1 on first insert, bumped by
    /// every re-insert of the key).
    pub version: u64,
}

/// Point-in-time catalog counters (see [`Catalog::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogStats {
    /// Releases currently held.
    pub releases: usize,
    /// Compiled surfaces currently resident.
    pub warm: usize,
    /// Residency bound.
    pub capacity: usize,
    /// Surface lookups served since creation.
    pub lookups: u64,
    /// Lookups that found the surface resident.
    pub warm_hits: u64,
    /// Surface compilations performed.
    pub compilations: u64,
    /// Surfaces evicted by the LRU bound.
    pub evictions: u64,
}

/// A leased release awaiting its surface compilation — phase one of
/// the two-phase cold lookup (see [`Catalog::lease`]).
///
/// The holder compiles **outside** the catalog lock via
/// [`ColdLease::compile`] (the release's own `OnceLock` serialises
/// concurrent compiles of the same release), then reports back with
/// [`Catalog::note_compiled`] so the LRU can account for the new
/// resident surface.
#[derive(Debug, Clone)]
pub struct ColdLease {
    release: Arc<Release>,
    version: u64,
}

impl ColdLease {
    /// Compiles (or joins an in-flight compilation of) the release's
    /// surface. Run this without holding any catalog lock.
    pub fn compile(&self) -> SurfaceHandle {
        SurfaceHandle {
            surface: self.release.shared_surface(),
            cache: CacheState::Cold,
            version: self.version,
        }
    }

    /// Version of the leased release.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One [`Catalog::lease`] outcome: resident surface or a cold lease to
/// compile outside the lock.
#[derive(Debug, Clone)]
pub enum Lease {
    /// The surface was resident; the handle is ready.
    Warm(SurfaceHandle),
    /// The surface must be compiled; see [`ColdLease`].
    Cold(ColdLease),
}

#[derive(Debug)]
struct CatalogEntry {
    /// Shared so cold compilations can run outside the catalog lock;
    /// the catalog itself holds the only long-lived reference (leases
    /// hold a second one just for the duration of a compile).
    release: Arc<Release>,
    version: u64,
    hits: u64,
    /// Version whose compilation was last counted (0 = none since the
    /// last insert/eviction) — keeps `compilations` exact when racing
    /// reporters or late `note_compiled` calls arrive for work the
    /// counter already recorded.
    counted_version: u64,
}

/// Keyed, versioned releases with a capacity-bounded LRU of compiled
/// surfaces.
#[derive(Debug)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
    /// Keys whose surfaces are resident, least-recently-used first.
    /// Catalogs hold few enough releases that the O(warm) touch is
    /// noise next to one surface compilation.
    lru: Vec<String>,
    capacity: usize,
    lookups: u64,
    warm_hits: u64,
    compilations: u64,
    evictions: u64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog bounded at [`DEFAULT_SURFACE_CAPACITY`]
    /// resident surfaces.
    pub fn new() -> Self {
        Catalog::with_capacity(DEFAULT_SURFACE_CAPACITY)
    }

    /// An empty catalog keeping at most `capacity` (≥ 1) compiled
    /// surfaces resident.
    pub fn with_capacity(capacity: usize) -> Self {
        Catalog {
            entries: HashMap::new(),
            lru: Vec::new(),
            capacity: capacity.max(1),
            lookups: 0,
            warm_hits: 0,
            compilations: 0,
            evictions: 0,
        }
    }

    /// Loads every `*.json` release in `dir` into a fresh catalog,
    /// keyed by file stem (see [`Catalog::load_dir`]).
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let mut catalog = Catalog::new();
        catalog.load_dir(dir)?;
        Ok(catalog)
    }

    /// Loads every `*.json` file in `dir` as a release keyed by its
    /// file stem, in lexicographic order (so re-versioned dumps load
    /// deterministically). Returns the keys inserted.
    ///
    /// Each file goes through [`Release::load`], which re-validates the
    /// release invariants — a directory of untrusted dumps cannot
    /// smuggle malformed cells into the serving path.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<Vec<String>> {
        let dir = dir.as_ref();
        let io_err = |e: std::io::Error| ServeError::Io {
            path: dir.to_path_buf(),
            source: e,
        };
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(io_err)?
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(io_err)?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let mut keys = Vec::with_capacity(paths.len());
        for path in paths {
            let stem = path.file_stem().and_then(|s| s.to_str()).ok_or_else(|| {
                ServeError::InvalidKey(format!(
                    "release file {} has a non-UTF-8 stem",
                    path.display()
                ))
            })?;
            let release = Release::load(&path)?;
            self.insert(stem, release);
            keys.push(stem.to_string());
        }
        Ok(keys)
    }

    /// Inserts (or re-versions) `release` under `key`, returning the
    /// assigned version: 1 for a new key, previous + 1 when replacing.
    /// Replacing drops the stale compiled surface from the LRU. A
    /// release arriving *already compiled* (e.g. a clone of a warm
    /// release — clones share their surface) counts against the
    /// residency bound immediately, so inserts cannot smuggle resident
    /// surfaces past the LRU.
    pub fn insert(&mut self, key: impl Into<String>, release: Release) -> u64 {
        let key = key.into();
        let version = match self.entries.get(&key) {
            Some(old) => old.version + 1,
            None => 1,
        };
        self.lru.retain(|k| k != &key);
        let compiled = release.surface_is_compiled();
        self.entries.insert(
            key.clone(),
            CatalogEntry {
                release: Arc::new(release),
                version,
                hits: 0,
                counted_version: 0,
            },
        );
        if compiled {
            self.touch(&key);
        } else {
            // Inserts are also collection points for overflow left by
            // eviction attempts that had to defer (victims mid-compile
            // elsewhere) — the bound must not wait for the next lookup.
            self.enforce_capacity();
        }
        version
    }

    /// Removes `key` and returns its release, if held.
    pub fn remove(&mut self, key: &str) -> Option<Release> {
        self.lru.retain(|k| k != key);
        self.entries.remove(key).map(|e| {
            // Unshared in the common case; a clone (sharing the
            // compiled surface, copying cells) covers a remove racing
            // an in-flight cold lease.
            Arc::try_unwrap(e.release).unwrap_or_else(|arc| (*arc).clone())
        })
    }

    /// The release under `key`, if held. Does not touch the LRU.
    pub fn release(&self, key: &str) -> Option<&Release> {
        self.entries.get(key).map(|e| e.release.as_ref())
    }

    /// The current version of `key`, if held.
    pub fn version(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|e| e.version)
    }

    /// Surface lookups served for `key` since it was (re-)inserted.
    pub fn hits(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|e| e.hits)
    }

    /// Phase one of a surface lookup: lease without compiling.
    ///
    /// A warm key returns its resident surface (and becomes most
    /// recently used); a cold key returns a [`ColdLease`] for the
    /// caller to [`ColdLease::compile`] **after releasing any lock
    /// around this catalog** — compilation is O(cells·log cells) and
    /// must not serialise unrelated lookups — and then report back
    /// through [`Catalog::note_compiled`]. [`Catalog::surface`] wraps
    /// the two phases for callers that hold the catalog directly.
    pub fn lease(&mut self, key: &str) -> Result<Lease> {
        let entry = self
            .entries
            .get_mut(key)
            .ok_or_else(|| ServeError::UnknownRelease(key.to_string()))?;
        entry.hits += 1;
        self.lookups += 1;
        if entry.release.surface_is_compiled() {
            let handle = SurfaceHandle {
                surface: entry.release.shared_surface(),
                cache: CacheState::Warm,
                version: entry.version,
            };
            self.warm_hits += 1;
            self.touch(key);
            Ok(Lease::Warm(handle))
        } else {
            Ok(Lease::Cold(ColdLease {
                release: Arc::clone(&entry.release),
                version: entry.version,
            }))
        }
    }

    /// Phase two of a cold lookup: accounts for a surface compiled
    /// outside the lock (residency, LRU order, eviction pressure).
    ///
    /// No-op when the key was meanwhile removed or re-versioned — the
    /// compiled surface then lives only as long as its leases. When
    /// several lookups raced on the same cold key, the release's
    /// `OnceLock` compiled once and exactly one reporter counts the
    /// compilation (tracked per version, so a warm lease slipping in
    /// between the compile and this report cannot suppress the count).
    pub fn note_compiled(&mut self, key: &str, version: u64) {
        let Some(entry) = self.entries.get_mut(key) else {
            return;
        };
        if entry.version != version || !entry.release.surface_is_compiled() {
            return;
        }
        if entry.counted_version != version {
            entry.counted_version = version;
            self.compilations += 1;
        }
        self.touch(key);
    }

    /// Leases the compiled surface for `key`, compiling inline if it
    /// is not resident — both lookup phases in one call, for callers
    /// that own the catalog directly (no lock to hold open).
    pub fn surface(&mut self, key: &str) -> Result<SurfaceHandle> {
        match self.lease(key)? {
            Lease::Warm(handle) => Ok(handle),
            Lease::Cold(lease) => {
                let handle = lease.compile();
                self.note_compiled(key, handle.version);
                Ok(handle)
            }
        }
    }

    /// Marks `key` most recently used and enforces the residency
    /// bound. A victim whose release is mid-compilation elsewhere (its
    /// `Arc` is leased) is skipped — evicting it would free nothing
    /// while the lease lives — and retried on later pressure.
    fn touch(&mut self, key: &str) {
        if self.lru.last().map(String::as_str) != Some(key) {
            self.lru.retain(|k| k != key);
            self.lru.push(key.to_string());
        }
        self.enforce_capacity();
    }

    /// Evicts least-recently-used surfaces until the residency bound
    /// holds, sparing the most-recently-used key. Deferred victims
    /// (mid-compile elsewhere) leave transient overflow; every caller
    /// — lookups *and* inserts — retries the sweep, so the bound is
    /// restored by whichever catalog operation comes next.
    fn enforce_capacity(&mut self) {
        let mut victim = 0;
        while self.lru.len() > self.capacity && victim + 1 < self.lru.len() {
            let evicted = match self.entries.get_mut(&self.lru[victim]) {
                Some(entry) => match Arc::get_mut(&mut entry.release) {
                    Some(release) => {
                        release.evict_surface();
                        // A later recompile of this same version is new
                        // work; let it count again.
                        entry.counted_version = 0;
                        true
                    }
                    None => false,
                },
                // LRU keys always have entries; stay safe if not.
                None => true,
            };
            if evicted {
                self.lru.remove(victim);
                self.evictions += 1;
            } else {
                victim += 1;
            }
        }
    }

    /// Number of releases held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no releases.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is held.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Number of compiled surfaces currently resident.
    pub fn warm_len(&self) -> usize {
        self.lru.len()
    }

    /// The residency bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            releases: self.entries.len(),
            warm: self.lru.len(),
            capacity: self.capacity,
            lookups: self.lookups,
            warm_hits: self.warm_hits,
            compilations: self.compilations,
            evictions: self.evictions,
        }
    }
}

/// Zero-copy handoff from [`dpgrid_core::Pipeline::publish_into`].
impl ReleaseSink for Catalog {
    fn accept_release(&mut self, key: String, release: Release) {
        self.insert(key, release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_core::{Method, Pipeline, Synopsis};
    use dpgrid_geo::generators::PaperDataset;
    use dpgrid_geo::Rect;

    fn release(seed: u64, m: usize) -> Release {
        let ds = PaperDataset::Storage.generate_n(seed, 1_500).unwrap();
        Pipeline::new(&ds)
            .method(Method::ug(m))
            .seed(seed)
            .publish()
            .unwrap()
    }

    #[test]
    fn insert_versions_and_lookup() {
        let mut catalog = Catalog::new();
        assert!(catalog.is_empty());
        assert_eq!(catalog.insert("a", release(1, 8)), 1);
        assert_eq!(catalog.insert("b", release(2, 8)), 1);
        assert_eq!(catalog.insert("a", release(3, 8)), 2);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(catalog.version("a"), Some(2));
        assert_eq!(catalog.version("c"), None);
        assert!(matches!(
            catalog.surface("missing"),
            Err(ServeError::UnknownRelease(_))
        ));
    }

    #[test]
    fn warm_surfaces_are_shared_not_recompiled() {
        let mut catalog = Catalog::new();
        catalog.insert("a", release(1, 16));
        let first = catalog.surface("a").unwrap();
        assert_eq!(first.cache, CacheState::Cold);
        let second = catalog.surface("a").unwrap();
        assert_eq!(second.cache, CacheState::Warm);
        assert!(Arc::ptr_eq(&first.surface, &second.surface));
        assert_eq!(catalog.hits("a"), Some(2));
        let stats = catalog.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn lru_evicts_past_capacity_and_leases_stay_valid() {
        let mut catalog = Catalog::with_capacity(2);
        for (key, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
            catalog.insert(key, release(seed, 8));
        }
        let a = catalog.surface("a").unwrap();
        catalog.surface("b").unwrap();
        assert_eq!(catalog.warm_len(), 2);
        // Touch "a" so "b" is the LRU victim when "c" compiles.
        catalog.surface("a").unwrap();
        catalog.surface("c").unwrap();
        assert_eq!(catalog.warm_len(), 2);
        assert_eq!(catalog.stats().evictions, 1);
        assert!(catalog
            .release("b")
            .is_some_and(|r| !r.surface_is_compiled()));
        assert!(catalog
            .release("a")
            .is_some_and(Release::surface_is_compiled));
        // "a" is still resident: a new lookup leases the same index.
        assert!(Arc::ptr_eq(
            &a.surface,
            &catalog.surface("a").unwrap().surface
        ));
        // The evicted key recompiles on next touch (evicting "c", the
        // new LRU victim, in turn); the old lease answers regardless.
        assert_eq!(catalog.surface("b").unwrap().cache, CacheState::Cold);
        assert_eq!(catalog.stats().evictions, 2);
        assert!(catalog
            .release("c")
            .is_some_and(|r| !r.surface_is_compiled()));
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        assert!(a.surface.answer(&q).is_finite());
    }

    #[test]
    fn precompiled_inserts_count_against_the_residency_bound() {
        // A release can arrive already compiled (clones share their
        // surface); the LRU must account for it at insert time, not
        // let it bypass the capacity bound until first lookup.
        let mut catalog = Catalog::with_capacity(2);
        for (key, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
            let rel = release(seed, 8);
            rel.answer(&Rect::new(-100.0, 20.0, -90.0, 30.0).unwrap());
            assert!(rel.surface_is_compiled());
            catalog.insert(key, rel);
        }
        assert_eq!(catalog.warm_len(), 2, "bound enforced at insert");
        assert_eq!(catalog.stats().evictions, 1);
        assert!(catalog
            .release("a")
            .is_some_and(|r| !r.surface_is_compiled()));
        // The registered surfaces really are warm on first lookup.
        assert_eq!(catalog.surface("c").unwrap().cache, CacheState::Warm);
        assert_eq!(catalog.surface("a").unwrap().cache, CacheState::Cold);
    }

    #[test]
    fn two_phase_lease_compiles_outside_and_reports_back() {
        let mut catalog = Catalog::with_capacity(2);
        catalog.insert("a", release(1, 16));
        let Lease::Cold(cold) = catalog.lease("a").unwrap() else {
            panic!("first lookup must be cold");
        };
        // Nothing resident until the compile is reported back.
        assert_eq!(catalog.warm_len(), 0);
        let handle = cold.compile();
        assert_eq!(handle.cache, CacheState::Cold);
        assert_eq!(handle.version, 1);
        catalog.note_compiled("a", handle.version);
        assert_eq!(catalog.warm_len(), 1);
        assert_eq!(catalog.stats().compilations, 1);
        // A racing second reporter does not double-count.
        catalog.note_compiled("a", handle.version);
        assert_eq!(catalog.stats().compilations, 1);
        assert!(matches!(catalog.lease("a").unwrap(), Lease::Warm(_)));
        // A stale report (key re-versioned meanwhile) is a no-op.
        catalog.insert("a", release(9, 16));
        catalog.note_compiled("a", handle.version);
        assert_eq!(catalog.warm_len(), 0);
    }

    #[test]
    fn reinsert_drops_stale_surface_and_bumps_version() {
        let mut catalog = Catalog::new();
        catalog.insert("a", release(1, 8));
        let v1 = catalog.surface("a").unwrap();
        assert_eq!(v1.version, 1);
        catalog.insert("a", release(9, 8));
        let v2 = catalog.surface("a").unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(v2.cache, CacheState::Cold);
        assert!(!Arc::ptr_eq(&v1.surface, &v2.surface));
        // Per-key hit counters reset with the new version.
        assert_eq!(catalog.hits("a"), Some(1));
    }

    #[test]
    fn publish_into_lands_in_catalog() {
        let ds = PaperDataset::Storage.generate_n(7, 1_500).unwrap();
        let mut catalog = Catalog::new();
        Pipeline::new(&ds)
            .method(Method::ug(8))
            .seed(7)
            .publish_into(&mut catalog, "storage")
            .unwrap();
        assert!(catalog.contains("storage"));
        assert_eq!(catalog.version("storage"), Some(1));
        let handle = catalog.surface("storage").unwrap();
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        let direct = catalog.release("storage").unwrap().answer(&q);
        assert_eq!(handle.surface.answer(&q), direct);
    }

    #[test]
    fn load_dir_roundtrips_releases() {
        let dir = std::env::temp_dir().join("dpgrid_catalog_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rel_a = release(1, 8);
        let rel_b = release(2, 16);
        rel_a.save(dir.join("alpha.json")).unwrap();
        rel_b.save(dir.join("beta.json")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let mut catalog = Catalog::from_dir(&dir).unwrap();
        assert_eq!(
            catalog.keys(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        let handle = catalog.surface("alpha").unwrap();
        assert!((handle.surface.answer(&q) - rel_a.answer(&q)).abs() <= 1e-9);

        // A malformed file fails the load loudly.
        std::fs::write(dir.join("zz_bad.json"), "{not json").unwrap();
        assert!(Catalog::from_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
