//! The release-format traits: [`Synopsis`] (query a published
//! decomposition) and [`Build`] (construct one under a privacy budget).
//!
//! These two traits are the seam every crate in the workspace plugs
//! into: `dpgrid-core` and `dpgrid-baselines` implement them for their
//! synopsis types, `dpgrid-core`'s method registry erases them behind
//! `Box<dyn Synopsis>`, and the evaluation harness and serving surface
//! consume them without knowing the producing method. They live in the
//! substrate crate so that implementors only need `dpgrid-geo` (and the
//! mechanisms), not each other.

use rand::Rng;

use crate::{Domain, DpError, GeoDataset, Rect};

/// Minimum batch size per worker thread before
/// [`answer_all_batched`] (and therefore the default
/// [`Synopsis::answer_all`]) fans out; below this the spawn overhead
/// outweighs the per-query work.
pub const MIN_QUERIES_PER_THREAD: usize = 256;

/// A differentially private synopsis of a two-dimensional dataset.
///
/// Per §II-B of the paper, a synopsis is a partition of the domain into
/// cells plus a noisy count for each cell. It supports rectangle count
/// queries: fully covered cells contribute their whole noisy count,
/// partially covered cells contribute proportionally to the overlapped
/// area (the *uniformity assumption*).
///
/// Everything reachable through this trait is safe to publish: the
/// implementations only store noisy (ε-differentially-private) values,
/// never the raw data.
///
/// `Sync` is a supertrait so that synopses can be queried from many
/// threads at once: the default [`Synopsis::answer_all`] chunks large
/// batches across scoped threads, and the evaluation runner shares
/// synopses across its method threads the same way.
pub trait Synopsis: Sync {
    /// The domain the synopsis covers.
    fn domain(&self) -> &Domain;

    /// Total privacy budget ε consumed building the synopsis.
    fn epsilon(&self) -> f64;

    /// Estimated number of points inside `query`.
    ///
    /// Queries are clipped to the domain; a query that misses the domain
    /// answers `0`. Estimates can be negative because cell counts are
    /// noisy — callers that need non-negative answers may clamp.
    fn answer(&self, query: &Rect) -> f64;

    /// The synopsis's leaf cells and their (post-processed) noisy counts.
    ///
    /// The rectangles partition the domain. Used for synthetic-data
    /// regeneration, for serialising releases, and as the input of
    /// compiled-surface construction (`dpgrid_core::CompiledSurface`).
    ///
    /// **Allocates a fresh `Vec` on every call** — never call it on the
    /// per-query hot path. Implementations that hold their cells should
    /// override [`Synopsis::total_estimate`] (and any similar
    /// aggregate) to read the stored cells directly instead of going
    /// through this method.
    fn cells(&self) -> Vec<(Rect, f64)>;

    /// Answers a batch of queries.
    ///
    /// The default implementation evaluates [`Synopsis::answer`] per
    /// query, chunking the batch across `std::thread::scope` threads
    /// once it is large enough to amortise the spawns (mirroring the
    /// evaluation runner's method-level parallelism). Implementations
    /// with a cheaper batch path — e.g. `dpgrid_core::Release`, which
    /// answers through its compiled surface — may override.
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        answer_all_batched(queries, |q| self.answer(q))
    }

    /// Sum of all leaf-cell counts — the synopsis's estimate of the
    /// dataset cardinality.
    ///
    /// The default goes through [`Synopsis::cells`] and therefore
    /// allocates; implementations that store their cells (or a prefix
    /// sum) should override with a direct read.
    fn total_estimate(&self) -> f64 {
        self.cells().iter().map(|(_, v)| v).sum()
    }
}

/// A synopsis type that can be constructed from a dataset under a
/// privacy budget: the uniform construction seam of the workspace.
///
/// Every method — UG, AG, the baselines — exposes the same shape:
/// a configuration type carrying ε plus the method's distinguishing
/// parameters, and a build function spending that budget over a
/// dataset with caller-supplied randomness. The per-type inherent
/// `build` functions are thin delegations to this trait, and
/// `dpgrid_core::Method::build_boxed` erases it into a boxed
/// [`Synopsis`] for registry-driven construction.
pub trait Build: Synopsis + Sized {
    /// Method configuration: ε plus the method's parameters.
    type Config;

    /// Builds the synopsis, consuming the configured privacy budget.
    ///
    /// Determinism contract: the same dataset, configuration and RNG
    /// state must produce an identical synopsis, so that seeded
    /// publishes are reproducible.
    fn build(
        dataset: &GeoDataset,
        config: &Self::Config,
        rng: &mut impl Rng,
    ) -> Result<Self, DpError>;
}

/// Object-safe helpers for boxed synopses. `answer_all` and
/// `total_estimate` forward too, so implementation overrides (like
/// `dpgrid_core::Release`'s surface-backed batch path) survive
/// indirection.
impl<S: Synopsis + ?Sized> Synopsis for &S {
    fn domain(&self) -> &Domain {
        (**self).domain()
    }
    fn epsilon(&self) -> f64 {
        (**self).epsilon()
    }
    fn answer(&self, query: &Rect) -> f64 {
        (**self).answer(query)
    }
    fn cells(&self) -> Vec<(Rect, f64)> {
        (**self).cells()
    }
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        (**self).answer_all(queries)
    }
    fn total_estimate(&self) -> f64 {
        (**self).total_estimate()
    }
}

impl<S: Synopsis + ?Sized> Synopsis for Box<S> {
    fn domain(&self) -> &Domain {
        (**self).domain()
    }
    fn epsilon(&self) -> f64 {
        (**self).epsilon()
    }
    fn answer(&self, query: &Rect) -> f64 {
        (**self).answer(query)
    }
    fn cells(&self) -> Vec<(Rect, f64)> {
        (**self).cells()
    }
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        (**self).answer_all(queries)
    }
    fn total_estimate(&self) -> f64 {
        (**self).total_estimate()
    }
}

/// Count of batched fan-outs currently inside their thread scope.
/// Callers like the evaluation runner already parallelise one level up
/// (a thread per method); dividing the worker budget by the number of
/// concurrently active fan-outs keeps the total CPU-bound thread count
/// near `available_parallelism` instead of multiplying the two levels.
static ACTIVE_FANOUTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Shared batched-answering driver: evaluates `answer` over `queries`,
/// fanning out across `std::thread::scope` when the batch is large
/// enough (mirroring `dpgrid-eval`'s runner, which parallelises at the
/// method level the same way).
pub fn answer_all_batched<F>(queries: &[Rect], answer: F) -> Vec<f64>
where
    F: Fn(&Rect) -> f64 + Sync,
{
    use std::sync::atomic::Ordering;
    // Drop guard so every exit path (including a panicking answer
    // closure) releases this call's slot in the counter.
    struct FanoutGuard;
    impl Drop for FanoutGuard {
        fn drop(&mut self) {
            ACTIVE_FANOUTS.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
    // Increment BEFORE reading the concurrency level: simultaneous
    // callers (the eval runner's method threads) must see each other,
    // which a load-then-add would miss.
    let concurrent = ACTIVE_FANOUTS.fetch_add(1, Ordering::Relaxed) + 1;
    let _guard = FanoutGuard;
    let workers = (std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
        / concurrent)
        .min(queries.len() / MIN_QUERIES_PER_THREAD);
    answer_all_with_workers(queries, answer, workers)
}

/// The worker-count-explicit core of [`answer_all_batched`], public so
/// callers that manage their own thread budget (and tests exercising
/// the scoped-thread path on any machine) can pin the fan-out width.
pub fn answer_all_with_workers<F>(queries: &[Rect], answer: F, workers: usize) -> Vec<f64>
where
    F: Fn(&Rect) -> f64 + Sync,
{
    if workers <= 1 {
        return queries.iter().map(&answer).collect();
    }
    let chunk = queries.len().div_ceil(workers);
    let mut out = vec![0.0; queries.len()];
    std::thread::scope(|scope| {
        for (q_chunk, out_chunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let answer = &answer;
            scope.spawn(move || {
                for (q, slot) in q_chunk.iter().zip(out_chunk) {
                    *slot = answer(q);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    /// Minimal synopsis for exercising the provided methods: one cell
    /// holding a fixed count.
    struct OneCell {
        domain: Domain,
        count: f64,
    }

    impl Synopsis for OneCell {
        fn domain(&self) -> &Domain {
            &self.domain
        }
        fn epsilon(&self) -> f64 {
            1.0
        }
        fn answer(&self, query: &Rect) -> f64 {
            self.count * self.domain.coverage(query)
        }
        fn cells(&self) -> Vec<(Rect, f64)> {
            vec![(*self.domain.rect(), self.count)]
        }
    }

    #[test]
    fn provided_methods_work() {
        let s = OneCell {
            domain: Domain::from_corners(0.0, 0.0, 2.0, 2.0).unwrap(),
            count: 8.0,
        };
        assert_eq!(s.total_estimate(), 8.0);
        let qs = [
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            Rect::new(0.0, 0.0, 2.0, 2.0).unwrap(),
        ];
        let answers = s.answer_all(&qs);
        assert_eq!(answers, vec![2.0, 8.0]);
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let s = OneCell {
            domain: Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap(),
            count: 4.0,
        };
        let by_ref: &dyn Synopsis = &s;
        assert_eq!(by_ref.total_estimate(), 4.0);
        let boxed: Box<dyn Synopsis> = Box::new(s);
        assert_eq!(boxed.epsilon(), 1.0);
        assert_eq!(boxed.cells().len(), 1);
    }

    #[test]
    fn threaded_fanout_matches_sequential() {
        let s = OneCell {
            domain: Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap(),
            count: 16.0,
        };
        let queries: Vec<Rect> = (0..1001)
            .map(|i| {
                let x = (i % 16) as f64 * 0.25;
                let y = (i % 13) as f64 * 0.25;
                Rect::new(x, y, x + 0.5, y + 0.5).unwrap()
            })
            .collect();
        let sequential: Vec<f64> = queries.iter().map(|q| s.answer(q)).collect();
        let threaded = answer_all_with_workers(&queries, |q| s.answer(q), 3);
        assert_eq!(threaded, sequential);
    }
}
