//! Dense 2-D histograms over a domain.

use serde::{Deserialize, Serialize};

use crate::{Domain, GeoDataset, GeoError, Rect, Result, SummedAreaTable};

/// Cap on the number of cells a single grid may hold (2²⁴ ≈ 16.7 M cells,
/// 128 MiB of `f64`). The paper's largest grids are ~786² ≈ 0.6 M cells;
/// the cap exists to turn runaway parameter choices into errors instead of
/// out-of-memory aborts.
pub const MAX_GRID_CELLS: usize = 1 << 24;

/// A dense `cols × rows` matrix of `f64` cell values laid over a [`Domain`].
///
/// This is the workhorse histogram of the workspace:
///
/// * counting data points into equi-width cells (a single pass, exactly as
///   the paper describes for UG);
/// * holding noisy counts after a mechanism has been applied;
/// * serving as the frequency matrix consumed by the baselines (KD-trees,
///   hierarchies, wavelets).
///
/// Values are stored row-major (`row * cols + col`). Cell `(0, 0)` is the
/// lower-left corner of the domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseGrid {
    domain: Domain,
    cols: usize,
    rows: usize,
    data: Vec<f64>,
}

impl DenseGrid {
    /// Creates an all-zero grid.
    pub fn zeros(domain: Domain, cols: usize, rows: usize) -> Result<Self> {
        if cols == 0 || rows == 0 {
            return Err(GeoError::ZeroGridSize);
        }
        let cells = cols.checked_mul(rows).ok_or(GeoError::GridTooLarge {
            requested: usize::MAX,
            max: MAX_GRID_CELLS,
        })?;
        if cells > MAX_GRID_CELLS {
            return Err(GeoError::GridTooLarge {
                requested: cells,
                max: MAX_GRID_CELLS,
            });
        }
        Ok(DenseGrid {
            domain,
            cols,
            rows,
            data: vec![0.0; cells],
        })
    }

    /// Counts the dataset's points into a `cols × rows` grid — one pass
    /// over the data, incrementing one cell per point.
    pub fn count(dataset: &GeoDataset, cols: usize, rows: usize) -> Result<Self> {
        let mut g = DenseGrid::zeros(*dataset.domain(), cols, rows)?;
        for p in dataset.points() {
            // Points are validated to lie in the domain at dataset
            // construction, so `cell_of` cannot fail here.
            if let Some((c, r)) = g.domain.cell_of(p, cols, rows) {
                g.data[r * cols + c] += 1.0;
            }
        }
        Ok(g)
    }

    /// Builds a grid by evaluating `f(col, row)` for every cell.
    pub fn from_fn(
        domain: Domain,
        cols: usize,
        rows: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self> {
        let mut g = DenseGrid::zeros(domain, cols, rows)?;
        for r in 0..rows {
            for c in 0..cols {
                g.data[r * cols + c] = f(c, r);
            }
        }
        Ok(g)
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.data.len()
    }

    /// The domain the grid covers.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Value of cell `(col, row)`.
    #[inline]
    pub fn get(&self, col: usize, row: usize) -> f64 {
        debug_assert!(col < self.cols && row < self.rows);
        self.data[row * self.cols + col]
    }

    /// Sets cell `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: usize, row: usize, value: f64) {
        debug_assert!(col < self.cols && row < self.rows);
        self.data[row * self.cols + col] = value;
    }

    /// Adds `delta` to cell `(col, row)`.
    #[inline]
    pub fn add(&mut self, col: usize, row: usize, delta: f64) {
        debug_assert!(col < self.cols && row < self.rows);
        self.data[row * self.cols + col] += delta;
    }

    /// Raw row-major cell values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major cell values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Applies `f` to every cell value in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sum of all cell values.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Rectangle of cell `(col, row)`.
    #[inline]
    pub fn cell_rect(&self, col: usize, row: usize) -> Rect {
        self.domain.cell_rect(self.cols, self.rows, col, row)
    }

    /// Iterates over `(col, row, cell_rect, value)` for every cell.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, Rect, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (0..self.cols).map(move |c| (c, r, self.cell_rect(c, r), self.get(c, r)))
        })
    }

    /// Builds the summed-area table of this grid.
    pub fn sat(&self) -> SummedAreaTable {
        SummedAreaTable::new(self)
    }

    /// Aggregates `bx × by` blocks of cells into a coarser grid
    /// (`cols` must be divisible by `bx` and `rows` by `by`).
    ///
    /// Used to build the upper levels of hierarchical baselines.
    pub fn aggregate(&self, bx: usize, by: usize) -> Result<DenseGrid> {
        if bx == 0 || by == 0 {
            return Err(GeoError::ZeroGridSize);
        }
        if !self.cols.is_multiple_of(bx) || !self.rows.is_multiple_of(by) {
            return Err(GeoError::InvalidGeneratorSpec(format!(
                "grid {}x{} not divisible by block {}x{}",
                self.cols, self.rows, bx, by
            )));
        }
        let mut out = DenseGrid::zeros(self.domain, self.cols / bx, self.rows / by)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.add(c / bx, r / by, self.get(c, r));
            }
        }
        Ok(out)
    }

    /// Answers a rectangle count query from the cell values under the
    /// uniformity assumption, in O(1) via the provided summed-area table.
    ///
    /// Fully covered cells contribute their whole value; partially covered
    /// cells contribute `value × overlap_fraction`. This is exactly the
    /// query semantics of §II-B of the paper. The `sat` must have been
    /// built from this grid (debug-asserted via shape).
    pub fn answer_uniform(&self, sat: &SummedAreaTable, query: &Rect) -> f64 {
        debug_assert_eq!(sat.cols(), self.cols);
        debug_assert_eq!(sat.rows(), self.rows);
        let Some(q) = self.domain.clip(query) else {
            return 0.0;
        };
        let d = self.domain.rect();
        // Continuous cell coordinates of the query edges.
        let u0 = (q.x0() - d.x0()) / d.width() * self.cols as f64;
        let u1 = (q.x1() - d.x0()) / d.width() * self.cols as f64;
        let v0 = (q.y0() - d.y0()) / d.height() * self.rows as f64;
        let v1 = (q.y1() - d.y0()) / d.height() * self.rows as f64;
        let xs = axis_segments(u0, u1, self.cols);
        let ys = axis_segments(v0, v1, self.rows);
        let mut sum = 0.0;
        for &(r0, r1, wy) in ys.iter().flatten() {
            for &(c0, c1, wx) in xs.iter().flatten() {
                let w = wx * wy;
                if w > 0.0 {
                    sum += w * sat.sum(c0, r0, c1, r1);
                }
            }
        }
        sum
    }

    /// Like [`DenseGrid::answer_uniform`] but builds a throwaway SAT; only
    /// suitable for one-off queries.
    pub fn answer_uniform_slow(&self, query: &Rect) -> f64 {
        self.answer_uniform(&self.sat(), query)
    }
}

/// Decomposes the continuous cell interval `[u0, u1]` (cell units, already
/// clipped to `[0, n]`) into at most three aligned segments
/// `(first_cell, one_past_last_cell, weight)`:
/// a partial leading cell, a run of fully covered cells, and a partial
/// trailing cell.
fn axis_segments(u0: f64, u1: f64, n: usize) -> [Option<(usize, usize, f64)>; 3] {
    let mut out = [None, None, None];
    let u0 = u0.clamp(0.0, n as f64);
    let u1 = u1.clamp(0.0, n as f64);
    if u1 <= u0 {
        return out;
    }
    let i0 = (u0.floor() as usize).min(n - 1);
    // Last touched cell: the cell containing u1, or n-1 when u1 == n.
    let i1 = ((u1 - f64::EPSILON).floor() as usize).min(n - 1).max(i0);
    if i0 == i1 {
        // Query spans (part of) a single cell along this axis.
        out[0] = Some((i0, i0 + 1, u1 - u0));
        return out;
    }
    let lead = (i0 + 1) as f64 - u0;
    let trail = u1 - i1 as f64;
    out[0] = Some((i0, i0 + 1, lead.clamp(0.0, 1.0)));
    if i0 + 1 < i1 {
        out[1] = Some((i0 + 1, i1, 1.0));
    }
    out[2] = Some((i1, i1 + 1, trail.clamp(0.0, 1.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn toy_dataset() -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
        let points = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(0.5, 1.5),
            Point::new(3.5, 3.5),
            Point::new(4.0, 4.0), // closed upper corner -> cell (3,3)
        ];
        GeoDataset::from_points(points, domain).unwrap()
    }

    #[test]
    fn count_places_points() {
        let g = DenseGrid::count(&toy_dataset(), 4, 4).unwrap();
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(1, 0), 1.0);
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(3, 3), 2.0);
        assert_eq!(g.total(), 5.0);
    }

    #[test]
    fn zero_size_rejected() {
        let d = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(DenseGrid::zeros(d, 0, 4).is_err());
        assert!(DenseGrid::zeros(d, 4, 0).is_err());
    }

    #[test]
    fn oversize_rejected() {
        let d = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(matches!(
            DenseGrid::zeros(d, 1 << 13, 1 << 13),
            Err(GeoError::GridTooLarge { .. })
        ));
    }

    #[test]
    fn aggregate_sums_blocks() {
        let g = DenseGrid::count(&toy_dataset(), 4, 4).unwrap();
        let a = g.aggregate(2, 2).unwrap();
        assert_eq!(a.cols(), 2);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 2.0);
        assert_eq!(a.total(), g.total());
        assert!(g.aggregate(3, 2).is_err());
    }

    #[test]
    fn answer_uniform_exact_on_aligned_queries() {
        let g = DenseGrid::count(&toy_dataset(), 4, 4).unwrap();
        let sat = g.sat();
        // Whole domain.
        let q = Rect::new(0.0, 0.0, 4.0, 4.0).unwrap();
        assert!((g.answer_uniform(&sat, &q) - 5.0).abs() < 1e-9);
        // Aligned lower-left quadrant.
        let q = Rect::new(0.0, 0.0, 2.0, 2.0).unwrap();
        assert!((g.answer_uniform(&sat, &q) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn answer_uniform_fractional_cells() {
        // One point in each of the 4 cells of a 2x2 grid; a query covering
        // the middle quarter of the domain overlaps a quarter of each cell.
        let domain = Domain::from_corners(0.0, 0.0, 2.0, 2.0).unwrap();
        let points = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(0.5, 1.5),
            Point::new(1.5, 1.5),
        ];
        let ds = GeoDataset::from_points(points, domain).unwrap();
        let g = DenseGrid::count(&ds, 2, 2).unwrap();
        let sat = g.sat();
        let q = Rect::new(0.5, 0.5, 1.5, 1.5).unwrap();
        assert!((g.answer_uniform(&sat, &q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn answer_uniform_subcell_query() {
        // Query inside a single cell gets the area fraction of that cell.
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let ds = GeoDataset::from_points(vec![Point::new(2.0, 2.0)], domain).unwrap();
        let g = DenseGrid::count(&ds, 2, 2).unwrap(); // cell = 5x5, count 1 in (0,0)
        let sat = g.sat();
        let q = Rect::new(0.0, 0.0, 2.5, 5.0).unwrap(); // half of cell (0,0)
        assert!((g.answer_uniform(&sat, &q) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn answer_uniform_clips_to_domain() {
        let g = DenseGrid::count(&toy_dataset(), 4, 4).unwrap();
        let sat = g.sat();
        let q = Rect::new(-100.0, -100.0, 100.0, 100.0).unwrap();
        assert!((g.answer_uniform(&sat, &q) - 5.0).abs() < 1e-9);
        let miss = Rect::new(50.0, 50.0, 60.0, 60.0).unwrap();
        assert_eq!(g.answer_uniform(&sat, &miss), 0.0);
    }

    #[test]
    fn answer_uniform_matches_bruteforce() {
        // Cross-check the 9-block decomposition against a per-cell loop.
        let domain = Domain::from_corners(0.0, 0.0, 7.0, 5.0).unwrap();
        let g = DenseGrid::from_fn(domain, 7, 5, |c, r| ((c * 31 + r * 17) % 11) as f64).unwrap();
        let sat = g.sat();
        let queries = [
            Rect::new(0.3, 0.3, 6.9, 4.7).unwrap(),
            Rect::new(1.0, 1.0, 2.0, 2.0).unwrap(),
            Rect::new(0.1, 0.1, 0.2, 4.9).unwrap(),
            Rect::new(2.5, 0.5, 3.5, 1.5).unwrap(),
            Rect::new(6.5, 4.5, 7.0, 5.0).unwrap(),
        ];
        for q in queries {
            let mut brute = 0.0;
            for (_, _, cell, v) in g.iter_cells() {
                brute += v * cell.overlap_fraction(&q);
            }
            let fast = g.answer_uniform(&sat, &q);
            assert!(
                (fast - brute).abs() < 1e-9,
                "query {q:?}: fast={fast} brute={brute}"
            );
        }
    }

    #[test]
    fn axis_segments_cover_interval() {
        for &(u0, u1, n) in &[
            (0.0, 4.0, 4usize),
            (0.2, 3.7, 4),
            (1.1, 1.9, 4),
            (0.0, 0.5, 4),
            (3.5, 4.0, 4),
            (2.0, 3.0, 4),
        ] {
            let segs = axis_segments(u0, u1, n);
            let covered: f64 = segs
                .iter()
                .flatten()
                .map(|(a, b, w)| (b - a) as f64 * w)
                .sum();
            assert!(
                (covered - (u1 - u0)).abs() < 1e-9,
                "({u0},{u1},{n}): covered {covered}"
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let g = DenseGrid::count(&toy_dataset(), 4, 4).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: DenseGrid = serde_json::from_str(&json).unwrap();
        assert_eq!(back.values(), g.values());
        assert_eq!(back.domain(), g.domain());
    }
}
