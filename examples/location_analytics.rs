//! Location analytics under differential privacy: method shoot-out.
//!
//! A researcher gets *one* ε-DP release of a facilities dataset and asks
//! range-count questions of many sizes. Which release mechanism should
//! the data owner pick? This example runs the paper's evaluation
//! pipeline on a storage-facility-like dataset and prints the mean
//! relative error per query size for every method.
//!
//! ```sh
//! cargo run --release --example location_analytics
//! ```

use dpgrid::eval::{evaluate, truth::TruthTable, EvalConfig, QueryWorkload, WorkloadSpec};
use dpgrid::prelude::*;
use rand::SeedableRng;

fn main() {
    let which = PaperDataset::Storage;
    let dataset = which.generate_n(5, 9_000).expect("generate dataset");
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);

    // The paper's workload: 6 query sizes, doubling extents, 200 random
    // placements each.
    let spec = WorkloadSpec::paper(which);
    let workload = QueryWorkload::generate(dataset.domain(), &spec, &mut rng).expect("workload");
    let index = PointIndex::build(&dataset);
    let truth = TruthTable::compute(&index, &workload);

    let methods = [
        Method::Flat,
        Method::KdStandard,
        Method::KdHybrid,
        Method::ug_suggested(),
        Method::privelet(32),
        Method::ag_suggested(),
    ];
    let cfg = EvalConfig::new(1.0).with_trials(5).with_seed(99);
    let evals = evaluate(&dataset, &workload, &truth, &methods, &cfg).expect("evaluate");

    println!(
        "mean relative error by query size (ε = {}, {} trials, N = {}):\n",
        cfg.epsilon,
        cfg.trials,
        dataset.len()
    );
    print!("{:<10}", "method");
    for i in 1..=workload.num_sizes() {
        print!("{:>9}", format!("q{i}"));
    }
    println!("{:>9}", "mean");
    for e in &evals {
        print!("{:<10}", e.label);
        for v in &e.mean_rel_by_size {
            print!("{:>9.4}", v);
        }
        println!("{:>9.4}", e.rel_profile.mean);
    }

    // The paper's headline claim, checked live on this run:
    let ag = evals.last().expect("ag is last");
    let best_other = evals[..evals.len() - 1]
        .iter()
        .map(|e| e.rel_profile.mean)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nAG mean {:.4} vs best non-AG {:.4} — AG {}",
        ag.rel_profile.mean,
        best_other,
        if ag.rel_profile.mean <= best_other {
            "wins, as the paper reports"
        } else {
            "does not win on this draw (try more trials)"
        }
    );

    // The harness and the publishing pipeline share one construction
    // path (`Method::build_boxed`), so shipping whichever method won
    // this evaluation is the same registry entry it just measured.
    let winner = evals
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.rel_profile
                .mean
                .partial_cmp(&b.1.rel_profile.mean)
                .expect("finite errors")
        })
        .map(|(i, _)| methods[i])
        .expect("at least one method");
    let release = Pipeline::new(&dataset)
        .epsilon(cfg.epsilon)
        .method(winner)
        .publish()
        .expect("publish winner");
    println!(
        "published this run's winner: `{}` with {} cells (metadata: {:?})",
        release.method(),
        release.cell_count(),
        release.metadata().resolved
    );
}
