//! Two-level constrained inference for the adaptive grid (§IV-B).
//!
//! AG observes each first-level cell twice: once directly (noisy count
//! `v` with budget `α·ε`) and once as the sum of its `m₂ × m₂` leaf
//! counts `u` (each with budget `(1−α)·ε`). Constrained inference merges
//! the two observations into a single consistent estimate:
//!
//! 1. the minimum-variance unbiased combination
//!    `v′ = w·v + (1−w)·Σu` with
//!    `w = α²m₂² / ((1−α)² + α²m₂²)` (the paper's closed form — exactly
//!    inverse-variance weighting of `Var(v) = 2/(αε)²` against
//!    `Var(Σu) = 2m₂²/((1−α)ε)²`);
//! 2. the difference `v′ − Σu` is distributed **equally over the m₂²
//!    leaves** so that they sum to `v′`.
//!
//! Note: the paper's equation for step 2 prints `u′ = u + (v′ − Σu)`
//! without the division by `m₂²`; that is a typo (the values would not
//! sum to `v′`). We implement Hay et al.'s correct update
//! `u′ = u + (v′ − Σu)/m₂²`, which `tests::leaf_update_restores_consistency`
//! pins.

/// Result of two-level constrained inference on one first-level cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInference {
    /// The merged first-level estimate `v′`.
    pub adjusted_total: f64,
    /// Weight given to the direct observation `v` (for diagnostics).
    pub weight_on_v: f64,
}

/// Computes the merged estimate `v′` and updates the leaf counts in
/// place so that they are consistent with it.
///
/// * `v` — the first-level noisy count (budget `α·ε`);
/// * `alpha` — the fraction of the budget spent on the first level;
/// * `leaves` — the `m₂²` leaf noisy counts (budget `(1−α)·ε`),
///   overwritten with the consistent values.
///
/// When `m₂ = 1` this degenerates to the weighted average of two
/// independent observations of the same cell, exactly as the paper notes.
pub fn two_level_inference(v: f64, alpha: f64, leaves: &mut [f64]) -> CellInference {
    debug_assert!(!leaves.is_empty(), "a cell always has at least one leaf");
    debug_assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
    let m2_sq = leaves.len() as f64;
    let beta = 1.0 - alpha;
    // Inverse-variance weights: Var(v) ∝ 1/α², Var(Σu) ∝ m₂²/β².
    let w_v = alpha * alpha * m2_sq / (beta * beta + alpha * alpha * m2_sq);
    let leaf_sum: f64 = leaves.iter().sum();
    let adjusted_total = w_v * v + (1.0 - w_v) * leaf_sum;
    let correction = (adjusted_total - leaf_sum) / m2_sq;
    for u in leaves.iter_mut() {
        *u += correction;
    }
    CellInference {
        adjusted_total,
        weight_on_v: w_v,
    }
}

/// Variance of the merged estimate `v′`, in units of `2/ε²` (i.e. for a
/// total budget ε split as `α`/`1−α`). Used by tests and the error model
/// to verify that inference never hurts.
pub fn merged_variance(alpha: f64, m2: usize) -> f64 {
    let m2_sq = (m2 * m2) as f64;
    let beta = 1.0 - alpha;
    let var_v = 1.0 / (alpha * alpha);
    let var_sum = m2_sq / (beta * beta);
    // Inverse-variance combination.
    1.0 / (1.0 / var_v + 1.0 / var_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_closed_form() {
        // The paper: v' = α²m₂²/((1−α)² + α²m₂²)·v + (1−α)²/((1−α)² + α²m₂²)·Σu.
        let alpha = 0.5;
        let m2 = 4usize;
        let v = 100.0;
        let mut leaves = vec![5.0; m2 * m2]; // Σu = 80
        let inf = two_level_inference(v, alpha, &mut leaves);
        let m2sq = (m2 * m2) as f64;
        let denom = (1.0f64 - alpha).powi(2) + alpha * alpha * m2sq;
        let expect = alpha * alpha * m2sq / denom * v + (1.0f64 - alpha).powi(2) / denom * 80.0;
        assert!((inf.adjusted_total - expect).abs() < 1e-9);
    }

    #[test]
    fn leaf_update_restores_consistency() {
        // After inference, Σu′ must equal v′ (this is where the paper's
        // printed equation omits the /m₂² division).
        let mut leaves = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let inf = two_level_inference(50.0, 0.5, &mut leaves);
        let sum: f64 = leaves.iter().sum();
        assert!((sum - inf.adjusted_total).abs() < 1e-9);
        // The correction is spread equally.
        let diffs: Vec<f64> = leaves
            .iter()
            .zip([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0])
            .map(|(after, before)| after - before)
            .collect();
        for w in diffs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn m2_equals_one_is_weighted_average() {
        // Single leaf: v' is the inverse-variance weighted average of two
        // observations and the leaf equals v'.
        let alpha = 0.5;
        let mut leaves = vec![30.0];
        let inf = two_level_inference(10.0, alpha, &mut leaves);
        // Equal budgets, equal variances → plain average.
        assert!((inf.adjusted_total - 20.0).abs() < 1e-12);
        assert!((leaves[0] - 20.0).abs() < 1e-12);
        assert!((inf.weight_on_v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weight_shifts_with_alpha_and_m2() {
        // More budget on the first level → more weight on v.
        let mut l1 = vec![0.0; 16];
        let mut l2 = vec![0.0; 16];
        let w_small = two_level_inference(1.0, 0.25, &mut l1).weight_on_v;
        let w_large = two_level_inference(1.0, 0.75, &mut l2).weight_on_v;
        assert!(w_large > w_small);
        // More leaves → the leaf-sum is noisier → more weight on v.
        let mut few = vec![0.0; 4];
        let mut many = vec![0.0; 64];
        let w_few = two_level_inference(1.0, 0.5, &mut few).weight_on_v;
        let w_many = two_level_inference(1.0, 0.5, &mut many).weight_on_v;
        assert!(w_many > w_few);
    }

    #[test]
    fn merged_variance_never_exceeds_either_observation() {
        for alpha in [0.25, 0.5, 0.75] {
            for m2 in [1usize, 2, 4, 8, 16] {
                let var = merged_variance(alpha, m2);
                let var_v = 1.0 / (alpha * alpha);
                let var_sum = (m2 * m2) as f64 / ((1.0 - alpha) * (1.0 - alpha));
                assert!(var <= var_v + 1e-12, "α={alpha}, m₂={m2}");
                assert!(var <= var_sum + 1e-12, "α={alpha}, m₂={m2}");
            }
        }
    }

    #[test]
    fn inference_is_unbiased_statistically() {
        // Monte-Carlo: with zero-mean noise on both observations of a
        // cell of true count T, v' averages to T.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let lap = dpgrid_mech::Laplace::new(2.0).unwrap();
        let truth = 500.0;
        let m2 = 3usize;
        let leaf_truth = truth / (m2 * m2) as f64;
        let trials = 20_000;
        let mut sum_adjusted = 0.0;
        for _ in 0..trials {
            let v = truth + lap.sample(&mut rng);
            let mut leaves: Vec<f64> = (0..m2 * m2)
                .map(|_| leaf_truth + lap.sample(&mut rng))
                .collect();
            sum_adjusted += two_level_inference(v, 0.5, &mut leaves).adjusted_total;
        }
        let mean = sum_adjusted / trials as f64;
        assert!((mean - truth).abs() < 1.0, "mean {mean}");
    }
}
