//! Evaluation harness: workloads, metrics, and the experiments that
//! regenerate every table and figure of the paper.
//!
//! The methodology follows §V-A exactly:
//!
//! * [`workload`] — six query sizes per dataset (`q1..q6`, Table II),
//!   each subsequent size doubling both extents; 200 uniformly placed
//!   rectangles per size;
//! * [`metrics`] — relative error with the `ρ = 0.001·N` floor, absolute
//!   error, and candlestick summaries (25th/50th/75th/95th percentile
//!   plus arithmetic mean);
//! * [`truth`] — exact query answers via [`dpgrid_geo::PointIndex`];
//! * [`method`] — the canonical [`Method`] registry (re-exported from
//!   `dpgrid_core::method`) over UG, AG, Privelet, KD-standard,
//!   KD-hybrid, hierarchies and the flat baseline, so experiments are
//!   declarative lists of method configurations built through the same
//!   `Method::build_boxed` path the publishing pipeline uses;
//! * [`runner`] — multi-threaded (method × trial) evaluation;
//! * [`experiments`] — one module per paper artifact (`table2`, `fig1`
//!   … `fig6`, `dim`), each writing CSV series and a markdown summary
//!   under a results directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod method;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod truth;
pub mod workload;

pub use method::Method;
pub use metrics::{relative_error, Candlestick};
pub use runner::{evaluate, EvalConfig, MethodEval};
pub use workload::{QueryWorkload, WorkloadSpec};

/// Evaluation reuses the core error type plus I/O wrapping.
pub use dpgrid_core::CoreError as EvalError;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EvalError>;
