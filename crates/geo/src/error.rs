//! Error types for the geometry substrate and the workspace-wide
//! unified build error.

use std::fmt;

use dpgrid_mech::MechError;

/// Errors produced by geometry, dataset and histogram constructors.
///
/// All fallible operations in `dpgrid-geo` validate their inputs at the
/// boundary and return one of these variants instead of panicking, so the
/// numeric code further down can assume well-formed data.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// The offending value.
        value: f64,
        /// Human-readable description of where it appeared.
        context: &'static str,
    },
    /// A rectangle had `x0 > x1` or `y0 > y1`.
    InvertedRect {
        /// Lower corner as supplied.
        lo: (f64, f64),
        /// Upper corner as supplied.
        hi: (f64, f64),
    },
    /// A rectangle with zero width or height where a positive area is required.
    EmptyRect,
    /// A point lies outside the dataset's declared domain.
    PointOutsideDomain {
        /// The offending point.
        point: (f64, f64),
        /// Index of the point in the input, when available.
        index: usize,
    },
    /// A grid was requested with zero rows or columns.
    ZeroGridSize,
    /// A grid was requested with more cells than the configured cap.
    GridTooLarge {
        /// Number of requested cells (`cols * rows`).
        requested: usize,
        /// Maximum number of cells allowed.
        max: usize,
    },
    /// Two structures refer to different domains but were combined.
    DomainMismatch,
    /// Failure parsing an input file (CSV).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure, carried as a string so the error stays `Clone`.
    Io(String),
    /// A synthetic-generator specification was invalid.
    InvalidGeneratorSpec(String),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::NonFiniteCoordinate { value, context } => {
                write!(f, "non-finite coordinate {value} in {context}")
            }
            GeoError::InvertedRect { lo, hi } => write!(
                f,
                "inverted rectangle: lo=({}, {}) hi=({}, {})",
                lo.0, lo.1, hi.0, hi.1
            ),
            GeoError::EmptyRect => write!(f, "rectangle must have positive width and height"),
            GeoError::PointOutsideDomain { point, index } => write!(
                f,
                "point #{index} ({}, {}) lies outside the dataset domain",
                point.0, point.1
            ),
            GeoError::ZeroGridSize => write!(f, "grid must have at least one row and one column"),
            GeoError::GridTooLarge { requested, max } => {
                write!(f, "grid with {requested} cells exceeds the cap of {max}")
            }
            GeoError::DomainMismatch => write!(f, "structures refer to different domains"),
            GeoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            GeoError::Io(msg) => write!(f, "i/o error: {msg}"),
            GeoError::InvalidGeneratorSpec(msg) => {
                write!(f, "invalid synthetic generator specification: {msg}")
            }
        }
    }
}

impl std::error::Error for GeoError {}

impl From<std::io::Error> for GeoError {
    fn from(e: std::io::Error) -> Self {
        GeoError::Io(e.to_string())
    }
}

/// The unified error of every synopsis construction path.
///
/// Building a differentially private synopsis can fail for exactly
/// three reasons — an out-of-range configuration value, a geometry /
/// histogram failure, or a privacy-mechanism failure — regardless of
/// which method is being built. All [`crate::Build`] implementations
/// (and everything layered on top of them: the method registry, the
/// publishing pipeline, the release format) share this one type, so
/// config validation reads identically across the workspace.
///
/// `dpgrid-core` re-exports it as `CoreError` and `dpgrid-baselines`
/// as `BaselineError`; both names refer to this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// Underlying geometry/histogram failure.
    Geo(GeoError),
    /// Underlying privacy-mechanism failure.
    Mech(MechError),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DpError::Geo(e) => write!(f, "geometry error: {e}"),
            DpError::Mech(e) => write!(f, "mechanism error: {e}"),
        }
    }
}

impl std::error::Error for DpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DpError::Geo(e) => Some(e),
            DpError::Mech(e) => Some(e),
            DpError::InvalidConfig(_) => None,
        }
    }
}

impl From<GeoError> for DpError {
    fn from(e: GeoError) -> Self {
        DpError::Geo(e)
    }
}

impl From<MechError> for DpError {
    fn from(e: MechError) -> Self {
        DpError::Mech(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GeoError::PointOutsideDomain {
            point: (3.0, 4.0),
            index: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("#7"));
        assert!(msg.contains("3"));
        assert!(msg.contains("4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GeoError = io.into();
        assert!(matches!(e, GeoError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = GeoError::EmptyRect;
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn unified_error_wraps_substrate_errors() {
        let g: DpError = GeoError::EmptyRect.into();
        assert!(matches!(g, DpError::Geo(_)));
        let m: DpError = MechError::InvalidEpsilon(-1.0).into();
        assert!(matches!(m, DpError::Mech(_)));
        assert!(m.to_string().contains("epsilon"));
    }

    #[test]
    fn unified_error_source_chain() {
        use std::error::Error;
        let e: DpError = GeoError::EmptyRect.into();
        assert!(e.source().is_some());
        assert!(DpError::InvalidConfig("x".into()).source().is_none());
    }
}
