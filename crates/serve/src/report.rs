//! The write path: typed LDP report batches and the [`ReportService`]
//! seam.
//!
//! The `Report` wire kind is the protocol's first **mutating**
//! request: instead of reading a release, a client uploads a batch of
//! locally-perturbed frequency-oracle reports (GRR cell indices or
//! packed OUE bit vectors) for one `(keyspace, epoch)` pair. The
//! transport dispatches the decoded batch through [`ReportService`] —
//! a seam deliberately separate from [`crate::QueryService`]'s read
//! methods, reached via [`crate::QueryService::reports`]: a service
//! without a collector simply returns `None` and the dispatch layer
//! answers `MalformedRequest`, exactly the "feature unsupported"
//! signal a pre-`Report` server would send, so clients cannot tell an
//! old server from a read-only one (and fall back identically).
//!
//! The serve crate defines only the shapes; the aggregation itself —
//! flat-vector accumulators, debiasing, epoch sealing into releases —
//! lives in the `dpgrid-ldp` crate, which implements this trait.

use crate::error::Result;

/// The payload of one report batch: homogeneous reports from one
/// oracle family, already perturbed client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportPayload {
    /// Generalized-randomized-response reports: one perturbed cell
    /// index per report.
    Grr(Vec<u32>),
    /// Optimized-unary-encoding reports: `count` reports of
    /// `⌈cells/64⌉` packed words each, concatenated in report order
    /// (cell `j` is bit `j % 64` of word `j / 64` within a report).
    Oue {
        /// Number of reports packed into `bits`.
        count: u32,
        /// `count × ⌈cells/64⌉` packed words.
        bits: Vec<u64>,
    },
}

/// One decoded, shape-validated batch of perturbed reports for a
/// single `(keyspace, epoch)` accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportBatch {
    /// The keyspace the sealed epoch will publish under.
    pub keyspace: String,
    /// The collection epoch the reports belong to.
    pub epoch: u64,
    /// The per-report ε the clients perturbed at. The collector
    /// verifies it matches the epoch's scheduled share — a mismatched
    /// ε would silently break the debiasing.
    pub epsilon: f64,
    /// The grid domain size `k` the reports cover; must match the
    /// collector's grid exactly.
    pub cells: u32,
    /// The reports themselves.
    pub payload: ReportPayload,
}

impl ReportBatch {
    /// Number of reports in the batch.
    pub fn count(&self) -> u64 {
        match &self.payload {
            ReportPayload::Grr(cells) => cells.len() as u64,
            ReportPayload::Oue { count, .. } => u64::from(*count),
        }
    }
}

/// The server's receipt for an accepted batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportAck {
    /// Echo of the batch's keyspace.
    pub keyspace: String,
    /// Echo of the batch's epoch.
    pub epoch: u64,
    /// Reports folded into the accumulator by this batch.
    pub accepted: u64,
    /// Total reports the `(keyspace, epoch)` accumulator now holds.
    pub epoch_total: u64,
}

/// Anything that can absorb batched LDP reports — the write-path twin
/// of [`crate::QueryService`].
///
/// `Send + Sync` for the same reason as the read path: one service
/// instance is shared across many connections, and batches arrive
/// concurrently. Failures are the ordinary typed [`crate::ServeError`]s
/// so transports map them onto wire errors with the machinery they
/// already have: `InvalidQuery` for batches the collector can never
/// accept (shape/ε/domain mismatch, sealed epoch), `UnknownRelease`
/// for a keyspace the collector does not aggregate, `Overloaded` for
/// a full epoch accumulator (back off and retry).
pub trait ReportService: Send + Sync {
    /// Folds one validated batch into the matching epoch accumulator.
    fn submit_reports(&self, batch: &ReportBatch) -> Result<ReportAck>;
}

/// Shared report services forward transparently, mirroring the
/// blanket [`crate::QueryService`] impl for `Arc`.
impl<R: ReportService + ?Sized> ReportService for std::sync::Arc<R> {
    fn submit_reports(&self, batch: &ReportBatch) -> Result<ReportAck> {
        (**self).submit_reports(batch)
    }
}
