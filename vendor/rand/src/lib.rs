//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact subset of `rand` the workspace uses:
//!
//! * [`Rng`] with `random`, `random_range` and `random_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded through
//!   SplitMix64.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on *determinism per
//! seed*, never on a specific stream, so the substitution is safe. The
//! generator is not cryptographically secure; it is used exclusively for
//! reproducible simulation inputs and DP noise in experiments.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" range
/// (`[0, 1)` for floats, the full value range for integers, fair coin
/// for `bool`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a half-open `lo..hi` range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` is the caller's
    /// responsibility (checked by [`Rng::random_range`]).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from the closed range `[lo, hi]`.
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f64 = StandardSample::standard_sample(rng);
        // Clamp guards the (measure-zero) rounding case u*(hi-lo)+lo == hi.
        let v = lo + u * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }

    #[inline]
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f64 = StandardSample::standard_sample(rng);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f32 = StandardSample::standard_sample(rng);
        let v = lo + u * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            v
        }
    }

    #[inline]
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f32 = StandardSample::standard_sample(rng);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift mapping of a 64-bit word onto [0, span);
                // bias is < 2^-64 * span, irrelevant for simulation use.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + hi128 as $t
            }

            #[inline]
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                if lo == hi {
                    return lo;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 range.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + off as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as i64;
                ((lo as i64) + off) as $t
            }

            #[inline]
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                if lo == hi {
                    return lo;
                }
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as i64;
                ((lo as i64) + off) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "Rng::random_range called with an empty range"
        );
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(
            lo <= hi,
            "Rng::random_range called with an empty inclusive range"
        );
        T::sample_uniform_inclusive(rng, lo, hi)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range` (half-open; panics when empty).
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(-3.0..11.0);
            assert!((-3.0..11.0).contains(&x));
            let i = r.random_range(0..7usize);
            assert!(i < 7);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
