//! Wiring a collector into the serving stack: a [`QueryService`]
//! wrapper whose write path is a live [`ReportCollector`].

use std::sync::{Mutex, MutexGuard, PoisonError};

use dpgrid_core::ReleaseSink;
use dpgrid_serve::{
    EngineStats, QueryRequest, QueryResponse, QueryService, ReportAck, ReportBatch, ReportService,
    ServeError, WindowAnswer, WindowQuery,
};

use crate::collector::{ReportCollector, SealSummary, SealedEpoch};
use crate::error::LdpError;

/// A [`QueryService`] that answers reads through `inner` and absorbs
/// LDP report batches into an interior [`ReportCollector`] — the piece
/// that turns any existing read-side service (a `QueryEngine`, a shard
/// router, a mock) into a write-accepting front door: hand an
/// `Arc<CollectingService<…>>` to a transport and the `Report` wire
/// kind starts working on the same connections that answer queries.
///
/// Locking: the collector sits behind one mutex, taken per batch.
/// Report aggregation is memory-bandwidth work (microseconds per
/// batch), so a single lock is the right trade against the complexity
/// of sharded accumulators; reads never touch it.
pub struct CollectingService<S> {
    inner: S,
    collector: Mutex<ReportCollector>,
}

impl<S> CollectingService<S> {
    /// Wraps `inner` with a write path backed by `collector`.
    pub fn new(inner: S, collector: ReportCollector) -> Self {
        CollectingService {
            inner,
            collector: Mutex::new(collector),
        }
    }

    /// The wrapped read-side service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Runs `f` with exclusive access to the collector — for
    /// inspecting epoch state without sealing.
    pub fn with_collector<T>(&self, f: impl FnOnce(&mut ReportCollector) -> T) -> T {
        f(&mut self.lock())
    }

    /// Seals the collector's open epoch, returning the release for the
    /// caller to publish (e.g. through `QueryEngine::insert`).
    pub fn seal_open_epoch(&self) -> crate::Result<SealedEpoch> {
        self.lock().seal_open_epoch()
    }

    /// Seals the open epoch and publishes it into `sink` in one step.
    pub fn publish_open_epoch(&self, sink: &mut dyn ReleaseSink) -> crate::Result<SealSummary> {
        self.lock().publish_open_epoch(sink)
    }

    /// The collector lock, surviving poisoning: every collector
    /// mutation is all-or-nothing (a failed batch folds no tallies),
    /// so the state stays consistent even if another holder panicked.
    fn lock(&self) -> MutexGuard<'_, ReportCollector> {
        self.collector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Maps collector rejections onto the typed errors the wire layer
/// already carries: permanent shape/placement mistakes are
/// [`ServeError::InvalidQuery`], an unaggregated keyspace is
/// [`ServeError::UnknownRelease`], and a full epoch accumulator is
/// [`ServeError::Overloaded`] ("back off and retry after the seal"),
/// reusing the overload counters as reports-held / capacity.
fn to_serve_error(e: LdpError) -> ServeError {
    match e {
        LdpError::UnknownKeyspace { got, .. } => ServeError::UnknownRelease(got),
        LdpError::BufferOverflow {
            requested,
            capacity,
            ..
        } => ServeError::Overloaded {
            inflight_rects: requested,
            limit: capacity,
        },
        other => ServeError::InvalidQuery(other.to_string()),
    }
}

impl<S: QueryService> QueryService for CollectingService<S> {
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<dpgrid_serve::Result<QueryResponse>> {
        self.inner.answer_batch(requests)
    }

    fn stats(&self) -> EngineStats {
        self.inner.stats()
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn window(&self, query: &WindowQuery) -> dpgrid_serve::Result<WindowAnswer> {
        self.inner.window(query)
    }

    fn reports(&self) -> Option<&dyn ReportService> {
        Some(self)
    }
}

impl<S: QueryService> ReportService for CollectingService<S> {
    fn submit_reports(&self, batch: &ReportBatch) -> dpgrid_serve::Result<ReportAck> {
        self.lock().submit(batch).map_err(to_serve_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorConfig;
    use dpgrid_core::TrustModel;
    use dpgrid_geo::Domain;
    use dpgrid_mech::BudgetSchedule;
    use dpgrid_serve::{Catalog, QueryEngine, ReportPayload};
    use std::sync::Arc;

    fn service() -> CollectingService<QueryEngine> {
        let config = CollectorConfig::new(
            "taxi",
            Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap(),
            8,
            8,
            BudgetSchedule::uniform(1.0, 2).unwrap(),
        )
        .unwrap()
        .capacity(100);
        CollectingService::new(
            QueryEngine::new(Catalog::new()),
            ReportCollector::new(config).unwrap(),
        )
    }

    fn batch(keyspace: &str, epsilon: f64, reports: Vec<u32>) -> ReportBatch {
        ReportBatch {
            keyspace: keyspace.into(),
            epoch: 0,
            epsilon,
            cells: 64,
            payload: ReportPayload::Grr(reports),
        }
    }

    #[test]
    fn reports_flow_through_the_service_seam_into_served_releases() {
        let service = service();
        let eps = service.with_collector(|c| c.open_epsilon().unwrap());

        // The seam is discoverable the way transports find it.
        let dyn_service: Arc<dyn QueryService> = Arc::new(service);
        let sink = dyn_service.reports().expect("write path exists");
        let ack = sink
            .submit_reports(&batch("taxi", eps, vec![3, 3, 7]))
            .unwrap();
        assert_eq!((ack.accepted, ack.epoch_total), (3, 3));

        // Typed error mapping at the seam.
        assert!(matches!(
            sink.submit_reports(&batch("bus", eps, vec![1])),
            Err(ServeError::UnknownRelease(k)) if k == "bus"
        ));
        assert!(matches!(
            sink.submit_reports(&batch("taxi", eps * 3.0, vec![1])),
            Err(ServeError::InvalidQuery(_))
        ));
        assert!(matches!(
            sink.submit_reports(&batch("taxi", eps, vec![0; 200])),
            Err(ServeError::Overloaded {
                inflight_rects: 203,
                limit: 100,
            })
        ));
    }

    #[test]
    fn sealing_publishes_into_the_wrapped_engine() {
        let service = service();
        let eps = service.with_collector(|c| c.open_epsilon().unwrap());
        service
            .reports()
            .unwrap()
            .submit_reports(&batch("taxi", eps, vec![5; 40]))
            .unwrap();
        let sealed = service.seal_open_epoch().unwrap();
        assert_eq!(sealed.summary.key, "taxi@epoch:0");
        assert_eq!(sealed.release.metadata().trust, TrustModel::Local);
        service
            .inner()
            .insert(sealed.summary.key.clone(), sealed.release);
        assert_eq!(service.keys(), vec!["taxi@epoch:0".to_string()]);
    }
}
