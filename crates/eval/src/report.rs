//! CSV and markdown output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

use crate::runner::MethodEval;
use crate::{EvalError, Result};

/// A simple rectangular table with a title, used for both CSV files and
/// markdown summaries.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Rows of stringified values.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Renders as CSV (header + rows, comma separated, quote-free
    /// values assumed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table with the title as a
    /// heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out.push('\n');
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        std::fs::write(path, self.to_csv()).map_err(io_err)?;
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> EvalError {
    EvalError::Geo(dpgrid_geo::GeoError::Io(e.to_string()))
}

/// Formats a float with 4 significant decimals, compact for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Builds the standard "mean relative error by query size" table from a
/// set of method evaluations.
pub fn by_size_table(title: &str, evals: &[MethodEval]) -> Table {
    let num_sizes = evals.first().map_or(0, |e| e.mean_rel_by_size.len());
    let mut header = vec!["method".to_string()];
    for i in 1..=num_sizes {
        header.push(format!("q{i}"));
    }
    let mut t = Table {
        title: title.to_string(),
        header,
        rows: Vec::new(),
    };
    for e in evals {
        let mut row = vec![e.label.clone()];
        row.extend(e.mean_rel_by_size.iter().map(|&v| fmt(v)));
        t.rows.push(row);
    }
    t
}

/// Builds the standard candlestick-profile table (relative error).
pub fn profile_table(title: &str, evals: &[MethodEval]) -> Table {
    let mut t = Table::new(title, &["method", "p25", "median", "p75", "p95", "mean"]);
    for e in evals {
        let c = e.rel_profile;
        t.push_row(vec![
            e.label.clone(),
            fmt(c.p25),
            fmt(c.median),
            fmt(c.p75),
            fmt(c.p95),
            fmt(c.mean),
        ]);
    }
    t
}

/// Builds the absolute-error candlestick table (Figure 6).
pub fn abs_profile_table(title: &str, evals: &[MethodEval]) -> Table {
    let mut t = Table::new(title, &["method", "p25", "median", "p75", "p95", "mean"]);
    for e in evals {
        let c = e.abs_profile;
        t.push_row(vec![
            e.label.clone(),
            fmt(c.p25),
            fmt(c.median),
            fmt(c.p75),
            fmt(c.p95),
            fmt(c.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Candlestick;

    fn fake_eval(label: &str) -> MethodEval {
        MethodEval {
            label: label.to_string(),
            mean_rel_by_size: vec![0.1, 0.2],
            rel_profile: Candlestick {
                p25: 0.01,
                median: 0.05,
                p75: 0.1,
                p95: 0.5,
                mean: 0.12,
            },
            abs_profile: Candlestick {
                p25: 1.0,
                median: 5.0,
                p75: 10.0,
                p95: 50.0,
                mean: 12.0,
            },
            build_seconds: 0.01,
        }
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("test", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("My Table", &["x"]);
        t.push_row(vec!["7".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### My Table"));
        assert!(md.contains("| x |"));
        assert!(md.contains("| 7 |"));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345), "0.1235");
        assert_eq!(fmt(3.456789), "3.457");
        assert_eq!(fmt(1234.5), "1234");
    }

    #[test]
    fn standard_tables() {
        let evals = vec![fake_eval("U64"), fake_eval("A16,5")];
        let bs = by_size_table("t", &evals);
        assert_eq!(bs.header, vec!["method", "q1", "q2"]);
        assert_eq!(bs.rows.len(), 2);
        let pf = profile_table("t", &evals);
        assert_eq!(pf.rows[0][0], "U64");
        assert_eq!(pf.rows[0][5], "0.1200");
        let ab = abs_profile_table("t", &evals);
        assert_eq!(ab.rows[1][2], "5.000");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("dpgrid_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("x", &["c"]);
        t.push_row(vec!["v".into()]);
        let path = dir.join("sub/out.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "c\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
