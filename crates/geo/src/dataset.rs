//! The point-set container used by every synopsis method.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{Domain, GeoError, Point, Rect, Result};

/// A static geospatial dataset: a bag of points together with the public
/// domain they live in.
///
/// The domain is public knowledge in the paper's threat model (it is part
/// of the released synopsis), while the points are the private data. All
/// constructors verify that every point lies inside the domain so the
/// privacy analysis of the grid methods (each tuple falls in exactly one
/// cell) holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoDataset {
    points: Vec<Point>,
    domain: Domain,
}

impl GeoDataset {
    /// Builds a dataset from points and an explicit domain.
    ///
    /// Fails if any point falls outside the (closed) domain.
    pub fn from_points(points: Vec<Point>, domain: Domain) -> Result<Self> {
        for (index, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(GeoError::NonFiniteCoordinate {
                    value: if p.x.is_finite() { p.y } else { p.x },
                    context: "dataset point",
                });
            }
            if !domain.contains(p) {
                return Err(GeoError::PointOutsideDomain {
                    point: (p.x, p.y),
                    index,
                });
            }
        }
        Ok(GeoDataset { points, domain })
    }

    /// Builds a dataset whose domain is the bounding box of the points,
    /// expanded by `margin` on every side (so that boundary points are
    /// strictly interior when `margin > 0`).
    pub fn with_bounding_domain(points: Vec<Point>, margin: f64) -> Result<Self> {
        if !margin.is_finite() || margin < 0.0 {
            return Err(GeoError::NonFiniteCoordinate {
                value: margin,
                context: "bounding margin",
            });
        }
        let b = Rect::bounding(&points).ok_or(GeoError::EmptyRect)?;
        // Guarantee positive area even for collinear or single points by
        // bumping degenerate extents by an absolute-magnitude-aware nudge.
        let bump = |lo: f64, hi: f64| -> f64 {
            if hi - lo > 0.0 {
                hi
            } else {
                hi + (1e-9f64).max(hi.abs() * 1e-9)
            }
        };
        let domain = Domain::from_corners(
            b.x0() - margin,
            b.y0() - margin,
            bump(b.x0() - margin, b.x1() + margin),
            bump(b.y0() - margin, b.y1() + margin),
        )?;
        GeoDataset::from_points(points, domain)
    }

    /// Number of data points (the `N` of Guideline 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The public domain.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Exact number of points in a query rectangle (half-open semantics).
    ///
    /// Linear scan — use [`crate::PointIndex`] for repeated queries.
    pub fn count_in(&self, query: &Rect) -> usize {
        self.points.iter().filter(|p| query.contains(p)).count()
    }

    /// Deterministically subsamples `n` points (without replacement) using
    /// the provided RNG, keeping the domain. Returns a clone when
    /// `n >= len`.
    pub fn sample(&self, n: usize, rng: &mut impl rand::Rng) -> GeoDataset {
        if n >= self.points.len() {
            return self.clone();
        }
        // Partial Fisher-Yates: draw n distinct indices.
        let mut points = self.points.clone();
        for i in 0..n {
            let j = rng.random_range(i..points.len());
            points.swap(i, j);
        }
        points.truncate(n);
        GeoDataset {
            points,
            domain: self.domain,
        }
    }

    /// Writes the dataset as `x,y` CSV lines preceded by a header comment
    /// carrying the domain.
    pub fn write_csv<W: Write>(&self, w: W) -> Result<()> {
        let mut w = BufWriter::new(w);
        let d = self.domain.rect();
        writeln!(w, "# domain {} {} {} {}", d.x0(), d.y0(), d.x1(), d.y1())?;
        for p in &self.points {
            writeln!(w, "{},{}", p.x, p.y)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Saves the dataset to a CSV file (see [`GeoDataset::write_csv`]).
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_csv(f)
    }

    /// Reads a dataset from the CSV format produced by
    /// [`GeoDataset::write_csv`]. When the `# domain` header is missing the
    /// bounding box of the points (with a tiny margin) is used.
    pub fn read_csv<R: Read>(r: R) -> Result<Self> {
        let reader = BufReader::new(r);
        let mut points = Vec::new();
        let mut domain: Option<Domain> = None;
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(spec) = rest.strip_prefix("domain") {
                    let vals: Vec<f64> = spec
                        .split_whitespace()
                        .map(|t| {
                            t.parse::<f64>().map_err(|e| GeoError::Parse {
                                line: i + 1,
                                message: format!("bad domain value `{t}`: {e}"),
                            })
                        })
                        .collect::<Result<_>>()?;
                    if vals.len() != 4 {
                        return Err(GeoError::Parse {
                            line: i + 1,
                            message: format!("domain header needs 4 values, got {}", vals.len()),
                        });
                    }
                    domain = Some(Domain::from_corners(vals[0], vals[1], vals[2], vals[3])?);
                }
                continue;
            }
            let mut it = line.split(',');
            let x = it.next().ok_or_else(|| GeoError::Parse {
                line: i + 1,
                message: "missing x".into(),
            })?;
            let y = it.next().ok_or_else(|| GeoError::Parse {
                line: i + 1,
                message: "missing y".into(),
            })?;
            let x: f64 = x.trim().parse().map_err(|e| GeoError::Parse {
                line: i + 1,
                message: format!("bad x `{x}`: {e}"),
            })?;
            let y: f64 = y.trim().parse().map_err(|e| GeoError::Parse {
                line: i + 1,
                message: format!("bad y `{y}`: {e}"),
            })?;
            points.push(Point::try_new(x, y)?);
        }
        match domain {
            Some(domain) => GeoDataset::from_points(points, domain),
            None => GeoDataset::with_bounding_domain(points, 1e-9),
        }
    }

    /// Loads a dataset from a CSV file (see [`GeoDataset::read_csv`]).
    pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Self> {
        let f = std::fs::File::open(path)?;
        GeoDataset::read_csv(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        GeoDataset::from_points(
            vec![
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
                Point::new(9.0, 9.0),
                Point::new(10.0, 10.0), // on the closed upper corner
            ],
            domain,
        )
        .unwrap()
    }

    #[test]
    fn rejects_point_outside_domain() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let err = GeoDataset::from_points(vec![Point::new(2.0, 0.5)], domain).unwrap_err();
        assert!(matches!(err, GeoError::PointOutsideDomain { index: 0, .. }));
    }

    #[test]
    fn count_in_uses_half_open() {
        let d = toy();
        let q = Rect::new(0.0, 0.0, 2.0, 2.0).unwrap();
        assert_eq!(d.count_in(&q), 1); // (2,2) excluded by half-open edge
        let q2 = Rect::new(0.0, 0.0, 2.0001, 2.0001).unwrap();
        assert_eq!(d.count_in(&q2), 2);
    }

    #[test]
    fn bounding_domain_contains_all() {
        let pts = vec![Point::new(-1.0, 4.0), Point::new(3.0, -2.0)];
        let d = GeoDataset::with_bounding_domain(pts, 0.5).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.domain().contains(&Point::new(-1.0, 4.0)));
        assert!(d.domain().area() > 0.0);
    }

    #[test]
    fn bounding_domain_single_point() {
        let d = GeoDataset::with_bounding_domain(vec![Point::new(5.0, 5.0)], 0.0).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.domain().area() > 0.0);
    }

    #[test]
    fn empty_points_bounding_fails() {
        assert!(GeoDataset::with_bounding_domain(vec![], 1.0).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let d = toy();
        let mut buf = Vec::new();
        d.write_csv(&mut buf).unwrap();
        let back = GeoDataset::read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.domain(), d.domain());
        for (a, b) in back.points().iter().zip(d.points()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        let bad = "1.0,2.0\nnot-a-number,3.0\n";
        let err = GeoDataset::read_csv(bad.as_bytes()).unwrap_err();
        match err {
            GeoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn csv_without_header_uses_bounding_box() {
        let txt = "0.0,0.0\n4.0,2.0\n";
        let d = GeoDataset::read_csv(txt.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.domain().contains(&Point::new(4.0, 2.0)));
    }

    #[test]
    fn sample_is_subset_and_deterministic() {
        let d = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s1 = d.sample(2, &mut rng);
        assert_eq!(s1.len(), 2);
        for p in s1.points() {
            assert!(d.points().iter().any(|q| q == p));
        }
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let s2 = d.sample(2, &mut rng2);
        assert_eq!(s1.points(), s2.points());
        // Oversampling returns everything.
        let mut rng3 = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(d.sample(100, &mut rng3).len(), d.len());
    }
}
