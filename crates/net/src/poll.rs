//! Readiness polling behind one small trait — the *poller* third of
//! the poller / run-loop / dispatch seam (see the crate docs).
//!
//! A [`Poller`] answers exactly one question: *which of these file
//! descriptors can make progress right now?* It knows nothing about
//! connections, codecs, or services — the run loop ([`crate::mux`])
//! owns those. Two implementations ship:
//!
//! * [`EpollPoller`] (Linux): `epoll` — O(ready) wakeups, the reason
//!   ten thousand idle sockets cost nothing per tick;
//! * [`PollPoller`] (any Unix): POSIX `poll(2)` — O(registered) per
//!   wait, the portable fallback, and small enough to serve as the
//!   reference implementation in tests.
//!
//! Both are **level-triggered**: a readiness bit stays set until the
//! condition clears, so the run loop never has to drain a socket to
//! exhaustion in one pass to stay correct. A future async-runtime
//! backend slots in as a third `Poller` (or replaces the run loop
//! wholesale above this seam) without touching connection state.
//!
//! The `sys` module at the bottom holds the only `unsafe` in the
//! crate: `extern "C"` declarations for the readiness syscalls (the
//! workspace vendors no `libc` crate; `std` already links the
//! platform C library, so the symbols are there to bind).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable again.
    pub write: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: usize,
    /// Reading can make progress. Errors and hangups are folded in —
    /// the owner discovers the details from `read()` itself (0 for
    /// EOF, an error otherwise), so there is no separate closed state
    /// to keep consistent.
    pub readable: bool,
    /// Writing can make progress.
    pub writable: bool,
}

/// A readiness multiplexer over raw file descriptors.
///
/// Contract: `register` a fd at most once (under a caller-chosen
/// token), `reregister` to change its interest, `deregister` before
/// closing it. `wait` appends ready events and returns on the first
/// readiness, on `timeout`, or spuriously (callers must tolerate an
/// empty event list — `EINTR` is swallowed, not surfaced).
pub trait Poller: Send {
    /// Backend name, for diagnostics ("epoll", "poll").
    fn name(&self) -> &'static str;

    /// Starts watching `fd` under `token`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Changes what an already-registered `fd` is watched for.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`. Must be called before the fd is closed.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until readiness or `timeout` (`None` = forever),
    /// appending events to `events`.
    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()>;
}

/// The platform's best poller: epoll on Linux, poll(2) elsewhere.
pub fn default_poller() -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(EpollPoller::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(PollPoller::new()))
    }
}

/// Milliseconds for the C APIs: `None` → -1 (forever), sub-millisecond
/// waits round **up** so a 100 µs timeout does not busy-spin as 0.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as i32,
    }
}

// --- epoll (Linux) ---------------------------------------------------

/// `epoll`-backed [`Poller`]: one kernel object holds every
/// registration, and each wait returns only the fds that are actually
/// ready — idle connections cost nothing per tick.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    /// Reused kernel-event buffer (capacity bounds events per wait,
    /// not registrations — level triggering re-reports the rest).
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    const MAX_EVENTS: usize = 1024;

    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        #[allow(unsafe_code)]
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; Self::MAX_EVENTS],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: (if interest.read { sys::EPOLLIN } else { 0 })
                | (if interest.write { sys::EPOLLOUT } else { 0 }),
            data: token as u64,
        };
        #[allow(unsafe_code)]
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_DEL,
            fd,
            0,
            Interest {
                read: false,
                write: false,
            },
        )
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        #[allow(unsafe_code)]
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let token = ev.data as usize;
            events.push(PollEvent {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        #[allow(unsafe_code)]
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// --- poll(2) (any Unix) ----------------------------------------------

/// POSIX `poll(2)`-backed [`Poller`]: registrations live in user
/// space and every wait hands the kernel the whole list. O(registered)
/// per tick, but dependency-free and portable — the fallback where
/// epoll is missing, and the reference backend in tests.
pub struct PollPoller {
    /// Registered fds with their tokens and interest, in registration
    /// order (linear scans: the fallback optimizes for simplicity).
    entries: Vec<(RawFd, usize, Interest)>,
    /// Reused `pollfd` array handed to the kernel.
    fds: Vec<sys::PollFd>,
}

impl PollPoller {
    /// Creates an empty registration table.
    pub fn new() -> Self {
        PollPoller {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> io::Result<usize> {
        self.entries
            .iter()
            .position(|&(f, _, _)| f == fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd is not registered"))
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        PollPoller::new()
    }
}

impl Poller for PollPoller {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd is already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let i = self.position(fd)?;
        self.entries[i] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self.position(fd)?;
        self.entries.remove(i);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.fds.clear();
        for &(fd, _, interest) in &self.entries {
            self.fds.push(sys::PollFd {
                fd,
                events: (if interest.read { sys::POLLIN } else { 0 })
                    | (if interest.write { sys::POLLOUT } else { 0 }),
                revents: 0,
            });
        }
        #[allow(unsafe_code)]
        let n = unsafe {
            sys::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as sys::NfdsT,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for (pfd, &(_, token, _)) in self.fds.iter().zip(&self.entries) {
            let bits = pfd.revents;
            if bits == 0 {
                continue;
            }
            events.push(PollEvent {
                token,
                readable: bits & (sys::POLLIN | sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
                writable: bits & (sys::POLLOUT | sys::POLLERR) != 0,
            });
        }
        Ok(())
    }
}

// --- syscall bindings ------------------------------------------------

/// The crate's only unsafe: FFI declarations for the readiness
/// syscalls, bound against the C library `std` already links (the
/// workspace vendors no `libc` crate). Constants and layouts follow
/// the kernel/POSIX ABIs for the supported targets.
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::{c_int, c_short};
    use std::os::unix::io::RawFd;

    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;

    /// `struct epoll_event`: packed on x86-64 (the kernel ABI packs it
    /// there so 32- and 64-bit layouts agree), naturally aligned on
    /// other architectures — mirroring `__EPOLL_PACKED` in glibc.
    #[cfg(target_os = "linux")]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    /// POSIX `struct pollfd` — identical layout everywhere.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: c_short,
        pub revents: c_short,
    }

    /// `nfds_t`: unsigned long on Linux, unsigned int on the BSDs.
    #[cfg(target_os = "linux")]
    pub type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = std::os::raw::c_uint;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pollers() -> Vec<Box<dyn Poller>> {
        let mut backends: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
        #[cfg(target_os = "linux")]
        backends.push(Box::new(EpollPoller::new().unwrap()));
        backends
    }

    #[test]
    fn readiness_tracks_data_and_interest_changes() {
        for mut poller in pollers() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 7, Interest::READ)
                .unwrap_or_else(|e| panic!("{}: register: {e}", poller.name()));

            // Nothing to read yet: a bounded wait returns no events.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: spurious {events:?}", poller.name());

            // Data arrives: readable under the registered token.
            a.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: expected readable, got {events:?}",
                poller.name()
            );

            // Level-triggered: unread data keeps reporting.
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));

            // Drain, switch to write interest: writable, not readable.
            let mut byte = [0u8; 8];
            let _ = (&b).read(&mut byte).unwrap();
            poller
                .reregister(
                    b.as_raw_fd(),
                    9,
                    Interest {
                        read: false,
                        write: true,
                    },
                )
                .unwrap();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 9 && e.writable),
                "{}: expected writable, got {events:?}",
                poller.name()
            );

            // Deregister: silence, even with data pending.
            a.write_all(b"y").unwrap();
            poller.deregister(b.as_raw_fd()).unwrap();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: {events:?}", poller.name());
        }
    }

    #[test]
    fn hangup_reports_as_readable() {
        for mut poller in pollers() {
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(a);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            // EOF must surface as readability so the owner's read()
            // observes it — that is the whole closed-detection story.
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{}: {events:?}",
                poller.name()
            );
        }
    }
}
