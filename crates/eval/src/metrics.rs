//! Error metrics and summary statistics (§V-A).

use serde::{Deserialize, Serialize};

/// The paper's relative error:
/// `RE(r) = |Q(r) − A(r)| / max(A(r), ρ)` with `ρ = 0.001·|D|`,
/// which avoids division by zero on empty regions.
pub fn relative_error(estimate: f64, truth: f64, rho: f64) -> f64 {
    (estimate - truth).abs() / truth.max(rho)
}

/// The `ρ` smoothing constant for a dataset of `n` points.
pub fn rho_for(n: usize) -> f64 {
    0.001 * n as f64
}

/// Absolute error `|Q(r) − A(r)|`.
pub fn absolute_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs()
}

/// The five numbers of the paper's candlestick plots: 25th percentile
/// (bottom of the stick), median (bottom of the box), 75th percentile
/// (top of the box), 95th percentile (top of the stick), and the
/// arithmetic mean (the black bar the paper pays most attention to).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candlestick {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Candlestick {
    /// Summarises a set of values. Returns `None` for an empty input.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Candlestick {
            p25: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.50),
            p75: percentile(&sorted, 0.75),
            p95: percentile(&sorted, 0.95),
            mean,
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_uses_rho_floor() {
        // Truth below ρ → divide by ρ.
        assert_eq!(relative_error(5.0, 0.0, 10.0), 0.5);
        // Truth above ρ → divide by truth.
        assert_eq!(relative_error(150.0, 100.0, 10.0), 0.5);
        // Exact estimate → zero error.
        assert_eq!(relative_error(7.0, 7.0, 1.0), 0.0);
    }

    #[test]
    fn rho_is_point_permille() {
        assert_eq!(rho_for(1_000_000), 1_000.0);
        assert_eq!(rho_for(9_000), 9.0);
    }

    #[test]
    fn absolute_error_is_symmetric() {
        assert_eq!(absolute_error(3.0, 5.0), 2.0);
        assert_eq!(absolute_error(5.0, 3.0), 2.0);
    }

    #[test]
    fn candlestick_known_values() {
        // 0..=100 → exact percentiles by construction.
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let c = Candlestick::from_values(&v).unwrap();
        assert_eq!(c.p25, 25.0);
        assert_eq!(c.median, 50.0);
        assert_eq!(c.p75, 75.0);
        assert_eq!(c.p95, 95.0);
        assert_eq!(c.mean, 50.0);
    }

    #[test]
    fn candlestick_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let c = Candlestick::from_values(&v).unwrap();
        assert!((c.median - 2.5).abs() < 1e-12);
        assert!((c.p25 - 1.75).abs() < 1e-12);
        assert!((c.p75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn candlestick_edge_cases() {
        assert!(Candlestick::from_values(&[]).is_none());
        let single = Candlestick::from_values(&[4.2]).unwrap();
        assert_eq!(single.median, 4.2);
        assert_eq!(single.p95, 4.2);
        assert_eq!(single.mean, 4.2);
    }

    #[test]
    fn candlestick_unsorted_input() {
        let c = Candlestick::from_values(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(c.median, 2.0);
        assert_eq!(c.mean, 2.0);
    }

    #[test]
    fn candlestick_ordering_invariant() {
        // p25 ≤ median ≤ p75 ≤ p95 for arbitrary inputs.
        let v: Vec<f64> = (0..57).map(|i| ((i * 31) % 13) as f64 * 0.7).collect();
        let c = Candlestick::from_values(&v).unwrap();
        assert!(c.p25 <= c.median);
        assert!(c.median <= c.p75);
        assert!(c.p75 <= c.p95);
    }
}
