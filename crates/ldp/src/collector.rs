//! The server-side report collector: bounded per-epoch accumulators,
//! debiased sealing, and publication as ordinary releases.

use dpgrid_core::{epoch_key, EpochRange, Release, ReleaseMetadata, ReleaseSink};
use dpgrid_geo::{Domain, MAX_GRID_CELLS};
use dpgrid_mech::{BudgetSchedule, FrequencyOracle, Grr, Oue};
use dpgrid_serve::{ReportAck, ReportBatch, ReportPayload};

use crate::accumulate::{fold_grr_checked, fold_oue, oue_words, validate_oue};
use crate::error::LdpError;
use crate::Result;

/// Relative tolerance for matching a batch's claimed per-report ε
/// against the schedule's share: tight enough that a mis-scheduled
/// client cannot slip through, loose enough that an ε that crossed the
/// wire as JSON text still matches the value the schedule computes.
const EPSILON_RTOL: f64 = 1e-9;

/// Default per-epoch report capacity when none is configured.
pub const DEFAULT_EPOCH_CAPACITY: u64 = 1 << 20;

/// How a [`ReportCollector`] is laid out: which keyspace it publishes
/// under, the public grid it tallies over, and the budget schedule
/// that assigns each epoch its per-report ε.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    keyspace: String,
    domain: Domain,
    cols: usize,
    rows: usize,
    schedule: BudgetSchedule,
    capacity: u64,
}

impl CollectorConfig {
    /// A collector publishing under `keyspace`, tallying a
    /// `cols × rows` grid over `domain`, with per-epoch ε drawn from
    /// `schedule`. The grid is public knowledge (clients need it to
    /// perturb), so it is fixed for the collector's lifetime.
    pub fn new(
        keyspace: impl Into<String>,
        domain: Domain,
        cols: usize,
        rows: usize,
        schedule: BudgetSchedule,
    ) -> Result<Self> {
        let keyspace = keyspace.into();
        if keyspace.is_empty() {
            return Err(LdpError::InvalidConfig(
                "collector keyspace must be non-empty".to_string(),
            ));
        }
        let cells = cols
            .checked_mul(rows)
            .filter(|&c| (2..=MAX_GRID_CELLS).contains(&c))
            .ok_or_else(|| {
                LdpError::InvalidConfig(format!(
                    "grid of {cols} × {rows} cells is outside 2..={MAX_GRID_CELLS}"
                ))
            })?;
        if u32::try_from(cells).is_err() {
            return Err(LdpError::InvalidConfig(format!(
                "grid of {cells} cells does not fit the wire's u32 cell count"
            )));
        }
        Ok(CollectorConfig {
            keyspace,
            domain,
            cols,
            rows,
            schedule,
            capacity: DEFAULT_EPOCH_CAPACITY,
        })
    }

    /// Caps how many reports one epoch's accumulator will hold before
    /// batches are shed with [`LdpError::BufferOverflow`].
    pub fn capacity(mut self, reports_per_epoch: u64) -> Self {
        self.capacity = reports_per_epoch;
        self
    }
}

/// A sealed epoch's publication receipt.
#[derive(Debug, Clone, PartialEq)]
pub struct SealSummary {
    /// The release key the epoch published under
    /// (`{keyspace}@epoch:{i}`).
    pub key: String,
    /// The sealed epoch.
    pub epoch: u64,
    /// The per-report ε the epoch was collected at (now spent).
    pub epsilon: f64,
    /// GRR reports folded into the estimate.
    pub grr_reports: u64,
    /// OUE reports folded into the estimate.
    pub oue_reports: u64,
}

/// A sealed epoch before publication: the release plus its key, for
/// callers that publish through something other than a
/// [`ReleaseSink`] (e.g. `QueryEngine::insert`, which takes `&self`).
#[derive(Debug)]
pub struct SealedEpoch {
    /// The publication receipt.
    pub summary: SealSummary,
    /// The debiased release, ready to serve.
    pub release: Release,
}

/// The LDP ingestion accumulator: one open epoch of flat `u64`
/// tallies per oracle family, sealed on demand into an ordinary
/// [`Release`] under the epoch-key grammar.
///
/// Reports are accepted strictly for the open epoch — earlier epochs
/// are sealed ([`LdpError::SealedEpoch`]), later ones not yet open
/// ([`LdpError::FutureEpoch`]) — so memory stays bounded at two
/// `cells`-sized vectors regardless of how long the collector runs.
/// Both oracle families accumulate side by side: a deployment may mix
/// GRR and OUE clients, and the sealed estimate sums the two families'
/// debiased counts (each family's reports are a disjoint user
/// population, so the sums are unbiased for the union).
///
/// Privacy accounting: each user contributes one report per epoch,
/// perturbed client-side at the epoch's scheduled ε — the collector
/// never sees raw points. Sealing charges the epoch through
/// [`BudgetSchedule::spend_epoch`], which refuses to charge twice, so
/// an epoch cannot be re-published with fresh reports under the same
/// budget.
#[derive(Debug)]
pub struct ReportCollector {
    config: CollectorConfig,
    cells: u32,
    open: u64,
    grr_acc: Vec<u64>,
    grr_n: u64,
    oue_acc: Vec<u64>,
    oue_n: u64,
}

impl ReportCollector {
    /// A collector with epoch 0 open and empty accumulators.
    pub fn new(config: CollectorConfig) -> Result<Self> {
        let cells = (config.cols * config.rows) as u32;
        Ok(ReportCollector {
            config,
            cells,
            open: 0,
            grr_acc: vec![0; cells as usize],
            grr_n: 0,
            oue_acc: vec![0; cells as usize],
            oue_n: 0,
        })
    }

    /// The keyspace sealed epochs publish under.
    pub fn keyspace(&self) -> &str {
        &self.config.keyspace
    }

    /// The grid size clients must perturb over.
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// The epoch currently accepting reports.
    pub fn open_epoch(&self) -> u64 {
        self.open
    }

    /// Reports held by the open epoch's accumulators (both families).
    pub fn open_reports(&self) -> u64 {
        self.grr_n + self.oue_n
    }

    /// The per-report ε the schedule assigns the open epoch.
    pub fn open_epsilon(&self) -> Result<f64> {
        Ok(self.config.schedule.epsilon_for(self.open)?)
    }

    /// The budget schedule (for inspecting spend).
    pub fn schedule(&self) -> &BudgetSchedule {
        &self.config.schedule
    }

    /// The kernel backend folding this collector's batches
    /// (`"avx2"` or `"scalar"` — see [`dpgrid_kernels::active_backend`]),
    /// surfaced so an operator can confirm the vectorized data plane
    /// is live on a production box.
    pub fn kernel_backend(&self) -> &'static str {
        dpgrid_kernels::active_backend()
    }

    /// Folds one batch into the open epoch's accumulator.
    ///
    /// All-or-nothing: every rejection — wrong keyspace, wrong epoch,
    /// ε/domain mismatch, malformed reports, capacity — happens before
    /// the first tally is touched, so a failed batch leaves the
    /// accumulator exactly as it was.
    pub fn submit(&mut self, batch: &ReportBatch) -> Result<ReportAck> {
        if batch.keyspace != self.config.keyspace {
            return Err(LdpError::UnknownKeyspace {
                got: batch.keyspace.clone(),
                want: self.config.keyspace.clone(),
            });
        }
        if batch.epoch < self.open {
            return Err(LdpError::SealedEpoch {
                epoch: batch.epoch,
                open: self.open,
            });
        }
        if batch.epoch > self.open {
            return Err(LdpError::FutureEpoch {
                epoch: batch.epoch,
                open: self.open,
            });
        }
        if batch.cells != self.cells {
            return Err(LdpError::DomainMismatch {
                got: batch.cells,
                want: self.cells,
            });
        }
        let want = self.config.schedule.epsilon_for(self.open)?;
        if (batch.epsilon - want).abs() > EPSILON_RTOL * want.max(1.0) {
            return Err(LdpError::EpsilonMismatch {
                epoch: self.open,
                got: batch.epsilon,
                want,
            });
        }
        let count = batch.count();
        let held = self.grr_n + self.oue_n;
        if held + count > self.config.capacity {
            return Err(LdpError::BufferOverflow {
                epoch: self.open,
                requested: held + count,
                capacity: self.config.capacity,
            });
        }
        match &batch.payload {
            ReportPayload::Grr(reports) => {
                fold_grr_checked(&mut self.grr_acc, self.cells, reports)?;
                self.grr_n += count;
            }
            ReportPayload::Oue { count: n, bits } => {
                validate_oue(self.cells, *n, bits)?;
                fold_oue(&mut self.oue_acc, oue_words(self.cells), bits);
                self.oue_n += count;
            }
        }
        Ok(ReportAck {
            keyspace: batch.keyspace.clone(),
            epoch: batch.epoch,
            accepted: count,
            epoch_total: self.grr_n + self.oue_n,
        })
    }

    /// Seals the open epoch: charges its ε through the schedule
    /// (exactly once — a double charge is a hard error), debiases both
    /// families' tallies into per-cell estimates, and returns the
    /// release ready to publish under `{keyspace}@epoch:{i}`. The next
    /// epoch opens with empty accumulators.
    ///
    /// The estimate is raw (negative cells are kept, the paper's
    /// convention — noise cancels when summing over query rectangles),
    /// and the release is labelled [`dpgrid_core::TrustModel::Local`]:
    /// unlike every central release in the catalog, the server never
    /// held the underlying points.
    pub fn seal_open_epoch(&mut self) -> Result<SealedEpoch> {
        let epoch = self.open;
        let epsilon = self.config.schedule.spend_epoch(epoch)?;
        let k = self.cells as usize;
        let grr = Grr::new(k, epsilon)?;
        let oue = Oue::new(k, epsilon)?;
        let grr_est = grr.estimate(&self.grr_acc, self.grr_n);
        let oue_est = oue.estimate(&self.oue_acc, self.oue_n);

        let (cols, rows) = (self.config.cols, self.config.rows);
        let mut cells = Vec::with_capacity(k);
        for row in 0..rows {
            for col in 0..cols {
                let i = row * cols + col;
                let rect = self.config.domain.cell_rect(cols, rows, col, row);
                cells.push((rect, grr_est[i] + oue_est[i]));
            }
        }
        let metadata =
            ReleaseMetadata::legacy(format!("ldp-{cols}x{rows}-grr+oue"), epsilon).local();
        let release =
            Release::from_parts_with_metadata(metadata, epsilon, self.config.domain, cells)?;
        let key = epoch_key(&self.config.keyspace, EpochRange::single(epoch));
        let summary = SealSummary {
            key,
            epoch,
            epsilon,
            grr_reports: self.grr_n,
            oue_reports: self.oue_n,
        };

        self.open += 1;
        self.grr_acc.iter_mut().for_each(|t| *t = 0);
        self.oue_acc.iter_mut().for_each(|t| *t = 0);
        self.grr_n = 0;
        self.oue_n = 0;
        Ok(SealedEpoch { summary, release })
    }

    /// Seals the open epoch and publishes it straight into `sink` —
    /// the same [`ReleaseSink`] seam the central
    /// [`dpgrid_core::Pipeline`] publishes through, so the read side
    /// (catalogs, engines, shard routers, windows) serves LDP releases
    /// without knowing they are different.
    pub fn publish_open_epoch(&mut self, sink: &mut dyn ReleaseSink) -> Result<SealSummary> {
        let sealed = self.seal_open_epoch()?;
        sink.accept_release(sealed.summary.key.clone(), sealed.release);
        Ok(sealed.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::fold_grr;
    use dpgrid_core::{parse_epoch_key, Synopsis, TrustModel};
    use dpgrid_mech::{LocalReport, MechError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn domain() -> Domain {
        Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap()
    }

    fn config() -> CollectorConfig {
        CollectorConfig::new(
            "taxi",
            domain(),
            10,
            10,
            BudgetSchedule::uniform(2.0, 4).unwrap(),
        )
        .unwrap()
    }

    fn grr_batch(epoch: u64, epsilon: f64, reports: Vec<u32>) -> ReportBatch {
        ReportBatch {
            keyspace: "taxi".into(),
            epoch,
            epsilon,
            cells: 100,
            payload: ReportPayload::Grr(reports),
        }
    }

    #[test]
    fn config_validates_grid_and_keyspace() {
        let schedule = BudgetSchedule::uniform(1.0, 2).unwrap();
        assert!(matches!(
            CollectorConfig::new("", domain(), 4, 4, schedule.clone()),
            Err(LdpError::InvalidConfig(_))
        ));
        assert!(matches!(
            CollectorConfig::new("k", domain(), 1, 1, schedule.clone()),
            Err(LdpError::InvalidConfig(_))
        ));
        assert!(matches!(
            CollectorConfig::new("k", domain(), usize::MAX, 2, schedule),
            Err(LdpError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejections_are_typed_and_leave_the_accumulator_untouched() {
        let mut c = ReportCollector::new(config().capacity(10)).unwrap();
        let eps = c.open_epsilon().unwrap();

        let mut wrong_keyspace = grr_batch(0, eps, vec![1]);
        wrong_keyspace.keyspace = "bus".into();
        assert!(matches!(
            c.submit(&wrong_keyspace),
            Err(LdpError::UnknownKeyspace { .. })
        ));
        assert!(matches!(
            c.submit(&grr_batch(1, eps, vec![1])),
            Err(LdpError::FutureEpoch { epoch: 1, open: 0 })
        ));
        assert!(matches!(
            c.submit(&grr_batch(0, eps * 2.0, vec![1])),
            Err(LdpError::EpsilonMismatch { .. })
        ));
        let mut wrong_cells = grr_batch(0, eps, vec![1]);
        wrong_cells.cells = 99;
        assert!(matches!(
            c.submit(&wrong_cells),
            Err(LdpError::DomainMismatch { got: 99, want: 100 })
        ));
        // A malformed report poisons nothing: the whole batch bounces.
        assert!(matches!(
            c.submit(&grr_batch(0, eps, vec![1, 100])),
            Err(LdpError::MalformedBatch(_))
        ));
        assert_eq!(c.open_reports(), 0);

        // Capacity is checked against the whole batch, atomically.
        c.submit(&grr_batch(0, eps, vec![0; 8])).unwrap();
        assert!(matches!(
            c.submit(&grr_batch(0, eps, vec![0; 3])),
            Err(LdpError::BufferOverflow {
                requested: 11,
                capacity: 10,
                ..
            })
        ));
        assert_eq!(c.open_reports(), 8);

        // After sealing, the old epoch is late.
        c.seal_open_epoch().unwrap();
        assert!(matches!(
            c.submit(&grr_batch(0, eps, vec![1])),
            Err(LdpError::SealedEpoch { epoch: 0, open: 1 })
        ));
    }

    #[test]
    fn sealed_epoch_publishes_a_debiased_local_release() {
        let mut c = ReportCollector::new(config()).unwrap();
        let eps = c.open_epsilon().unwrap();
        let grr = Grr::new(100, eps).unwrap();
        let oue = Oue::new(100, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(7);

        // 600 users, half on each oracle, all reporting cell 37.
        let mut grr_reports = Vec::new();
        let mut oue_bits = Vec::new();
        for _ in 0..300 {
            let LocalReport::Cell(cell) = grr.perturb(37, &mut rng).unwrap() else {
                panic!()
            };
            grr_reports.push(cell);
            let LocalReport::Bits(words) = oue.perturb(37, &mut rng).unwrap() else {
                panic!()
            };
            oue_bits.extend_from_slice(&words);
        }
        let ack = c.submit(&grr_batch(0, eps, grr_reports.clone())).unwrap();
        assert_eq!(ack.accepted, 300);
        let ack = c
            .submit(&ReportBatch {
                keyspace: "taxi".into(),
                epoch: 0,
                epsilon: eps,
                cells: 100,
                payload: ReportPayload::Oue {
                    count: 300,
                    bits: oue_bits.clone(),
                },
            })
            .unwrap();
        assert_eq!(ack.epoch_total, 600);

        // Reference estimate straight through the oracles.
        let mut grr_acc = vec![0u64; 100];
        fold_grr(&mut grr_acc, &grr_reports);
        let mut oue_acc = vec![0u64; 100];
        fold_oue(&mut oue_acc, oue_words(100), &oue_bits);
        let expect: Vec<f64> = grr
            .estimate(&grr_acc, 300)
            .iter()
            .zip(oue.estimate(&oue_acc, 300))
            .map(|(a, b)| a + b)
            .collect();

        let mut sink: HashMap<String, Release> = HashMap::new();
        let summary = c.publish_open_epoch(&mut sink).unwrap();
        assert_eq!(summary.key, "taxi@epoch:0");
        assert_eq!(summary.epoch, 0);
        assert_eq!((summary.grr_reports, summary.oue_reports), (300, 300));
        assert_eq!(parse_epoch_key(&summary.key).unwrap().0, "taxi");

        let release = &sink["taxi@epoch:0"];
        assert_eq!(release.metadata().trust, TrustModel::Local);
        assert!((release.epsilon() - eps).abs() < 1e-12);
        // Cell 37 of the released surface is the debiased estimate,
        // bit-for-bit the value the oracles compute in-process.
        for (i, (_, v)) in release.cells().iter().enumerate() {
            assert_eq!(*v, expect[i], "cell {i}");
        }
        // GRR debiasing preserves mass identically (p + (k−1)q = 1),
        // so its half of the estimate sums to exactly its population.
        let grr_total: f64 = grr.estimate(&grr_acc, 300).iter().sum();
        assert!((grr_total - 300.0).abs() < 1e-6, "GRR total {grr_total}");
        // OUE preserves mass only in expectation; the released total
        // is the population up to CLT noise (σ ≈ √(nkq(1−q))/(p−q)).
        let total: f64 = release.cells().iter().map(|(_, v)| v).sum();
        let sigma = (300.0 * 100.0 * oue.q() * (1.0 - oue.q())).sqrt() / (oue.p() - oue.q());
        assert!((total - 600.0).abs() < 5.0 * sigma, "total {total}");

        // The next epoch opens fresh.
        assert_eq!(c.open_epoch(), 1);
        assert_eq!(c.open_reports(), 0);
    }

    #[test]
    fn sealing_charges_each_epoch_exactly_once() {
        let mut c = ReportCollector::new(config()).unwrap();
        c.seal_open_epoch().unwrap();
        assert_eq!(c.schedule().charged_epochs(), &[0]);
        c.seal_open_epoch().unwrap();
        assert_eq!(c.schedule().charged_epochs(), &[0, 1]);
        // The schedule itself refuses a double charge — exercised
        // through a fresh collector sharing the spent schedule.
        let mut replay = ReportCollector::new(
            CollectorConfig::new("taxi", domain(), 10, 10, c.config.schedule.clone()).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            replay.seal_open_epoch(),
            Err(LdpError::Mech(MechError::EpochAlreadyCharged { epoch: 0 }))
        ));
    }
}
