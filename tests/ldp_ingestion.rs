//! End-to-end acceptance of the LDP ingestion front door.
//!
//! Simulated users perturb their grid cell on-device (half GRR, half
//! OUE), ship batched reports over a live negotiated binary-v2 TCP
//! connection into a [`CollectingService`], and the sealed epochs are
//! inserted into the very engine that answered the reports. The test
//! then checks the whole loop three ways:
//!
//! 1. **Wire fidelity** — range queries answered over TCP against the
//!    sealed release match an in-process collector fed the identical
//!    batches to ≤ 1e-9 relative: nothing about TCP framing, codec
//!    negotiation, or epoch publication perturbs the estimate.
//! 2. **Statistical utility** — the normalized per-cell MAE against
//!    the (simulation-known) ground truth shrinks as the population
//!    grows: LDP noise is per-user, so frequencies concentrate at
//!    `O(1/√M)`.
//! 3. **Accounting** — accepted-report counts agree between client
//!    acks, collector state, and the server's transport counters, and
//!    each sealed epoch publishes under the epoch-key grammar.
//!
//! Everything is seeded: reruns are bit-identical.

use std::sync::Arc;

use dpgrid::ldp::{CollectingService, CollectorConfig, ReportCollector};
use dpgrid::mech::oue_words;
use dpgrid::net::{TcpClient, TcpServer};
use dpgrid::prelude::*;
use dpgrid::serve::QueryEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLS: usize = 8;
const ROWS: usize = 8;
const CELLS: u32 = (COLS * ROWS) as u32;
/// Two collection rounds over a total budget of 2.0: ε = 1.0 each.
const EPOCH_EPSILON: f64 = 1.0;
/// Reports per wire batch — small enough that both populations
/// exercise the pipelined multi-batch path.
const BATCH: usize = 128;
/// The two population sizes: a 16× growth should shrink normalized
/// error by ~4× (√16); the assertion only demands ~2× for slack.
const SMALL_M: usize = 400;
const LARGE_M: usize = 6_400;

fn schedule() -> BudgetSchedule {
    BudgetSchedule::uniform(2.0, 2).unwrap()
}

fn domain() -> Domain {
    Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap()
}

fn config() -> CollectorConfig {
    CollectorConfig::new("taxi", domain(), COLS, ROWS, schedule()).unwrap()
}

/// Draws one user's true cell: a skewed city — 70% of users in four
/// hot cells, the rest uniform — so range queries have real signal.
fn draw_cell(rng: &mut StdRng) -> usize {
    const HOT: [usize; 4] = [9, 10, 17, 54];
    if rng.random_range(0..10u32) < 7 {
        HOT[rng.random_range(0..HOT.len())]
    } else {
        rng.random_range(0..CELLS as usize)
    }
}

/// Simulates `users` clients for `epoch`: each draws a true cell
/// (tallied into `truth`), perturbs it on-device — even indices GRR,
/// odd OUE — and the perturbed reports are packed into wire batches of
/// [`BATCH`]. The collector never sees `truth`.
fn perturb_population(users: usize, epoch: u64, seed: u64) -> (Vec<ReportBatch>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let grr = Grr::new(CELLS as usize, EPOCH_EPSILON).unwrap();
    let oue = Oue::new(CELLS as usize, EPOCH_EPSILON).unwrap();
    let mut truth = vec![0.0; CELLS as usize];
    let mut grr_cells: Vec<u32> = Vec::new();
    let mut oue_count = 0u32;
    let mut oue_bits: Vec<u64> = Vec::new();
    for user in 0..users {
        let cell = draw_cell(&mut rng);
        truth[cell] += 1.0;
        let oracle: &dyn FrequencyOracle = if user % 2 == 0 { &grr } else { &oue };
        match oracle.perturb(cell, &mut rng).unwrap() {
            LocalReport::Cell(c) => grr_cells.push(c),
            LocalReport::Bits(words) => {
                assert_eq!(words.len(), oue_words(CELLS as usize));
                oue_count += 1;
                oue_bits.extend_from_slice(&words);
            }
        }
    }

    let mut batches = Vec::new();
    for chunk in grr_cells.chunks(BATCH) {
        batches.push(ReportBatch {
            keyspace: "taxi".to_string(),
            epoch,
            epsilon: EPOCH_EPSILON,
            cells: CELLS,
            payload: ReportPayload::Grr(chunk.to_vec()),
        });
    }
    let words = oue_words(CELLS as usize);
    for (i, chunk) in oue_bits.chunks(BATCH * words).enumerate() {
        let count = (chunk.len() / words) as u32;
        let remaining = oue_count - (i as u32) * BATCH as u32;
        assert_eq!(count, remaining.min(BATCH as u32));
        batches.push(ReportBatch {
            keyspace: "taxi".to_string(),
            epoch,
            epsilon: EPOCH_EPSILON,
            cells: CELLS,
            payload: ReportPayload::Oue {
                count,
                bits: chunk.to_vec(),
            },
        });
    }
    (batches, truth)
}

/// A query workload with real spatial structure: the full domain, the
/// hot quarter, thin slivers, and a diagonal sweep.
fn workload() -> Vec<Rect> {
    let mut rects = vec![
        Rect::new(0.0, 0.0, 8.0, 8.0).unwrap(),
        Rect::new(0.0, 0.0, 4.0, 4.0).unwrap(),
        Rect::new(1.0, 1.0, 3.0, 2.5).unwrap(),
        Rect::new(5.9, 0.0, 6.1, 8.0).unwrap(),
    ];
    for i in 0..8 {
        let t = i as f64 * 0.7;
        rects.push(Rect::new(t * 0.5, t * 0.6, t * 0.5 + 2.0, t * 0.6 + 1.5).unwrap());
    }
    rects
}

/// Mean |estimate − truth| per cell, normalized by population size.
fn normalized_mae(release: &Release, truth: &[f64], users: usize) -> f64 {
    let cells = release.cells();
    assert_eq!(cells.len(), truth.len());
    cells
        .iter()
        .zip(truth)
        .map(|((_, est), t)| (est - t).abs())
        .sum::<f64>()
        / (truth.len() as f64 * users as f64)
}

#[test]
fn populations_ingest_over_binary_tcp_and_sealed_epochs_serve_exactly() {
    let service = Arc::new(CollectingService::new(
        QueryEngine::new(Catalog::new()),
        ReportCollector::new(config()).unwrap(),
    ));
    let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    assert_eq!(
        client.protocol_version(),
        Some(2),
        "the ingestion path must run over negotiated binary v2"
    );

    // The in-process reference: an identical collector fed the
    // identical batches without any wire in between.
    let mut reference = ReportCollector::new(config()).unwrap();

    let rects = workload();
    let mut maes = Vec::new();
    let mut total_reports = 0u64;
    for (epoch, users) in [(0u64, SMALL_M), (1u64, LARGE_M)] {
        let (batches, truth) = perturb_population(users, epoch, 1000 + epoch);
        assert!(
            batches.len() > 2,
            "population must span several wire batches, got {}",
            batches.len()
        );

        // One pipelined frame train per population.
        let acks = client.submit_reports(&batches).unwrap();
        let mut accepted = 0u64;
        for (ack, batch) in acks.into_iter().zip(&batches) {
            let ack = ack.unwrap_or_else(|e| panic!("batch rejected: {e}"));
            assert_eq!(ack.keyspace, "taxi");
            assert_eq!(ack.epoch, epoch);
            accepted += ack.accepted;
            reference.submit(batch).unwrap();
        }
        assert_eq!(accepted, users as u64, "every report must be acked");
        total_reports += accepted;
        assert_eq!(service.with_collector(|c| c.open_reports()), users as u64);

        // Seal on the serving side and publish into the live engine —
        // the same epoch-key the write path routed on.
        let sealed = service.seal_open_epoch().unwrap();
        assert_eq!(sealed.summary.key, format!("taxi@epoch:{epoch}"));
        assert_eq!(sealed.summary.epsilon, EPOCH_EPSILON);
        assert_eq!(
            sealed.summary.grr_reports + sealed.summary.oue_reports,
            users as u64
        );
        service
            .inner()
            .insert(sealed.summary.key.clone(), sealed.release);

        let expected = reference.seal_open_epoch().unwrap();
        let surface = CompiledSurface::from_synopsis(&expected.release);

        // Range queries over TCP match the in-process debiased
        // aggregate to ≤ 1e-9 relative.
        let remote = client.query(&sealed.summary.key, &rects).unwrap();
        assert_eq!(remote.answers.len(), rects.len());
        for (rect, answer) in rects.iter().zip(&remote.answers) {
            let want = surface.answer(rect);
            assert!(
                (answer - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "epoch {epoch}: remote {answer} vs in-process {want} on {rect:?}"
            );
        }

        maes.push(normalized_mae(&expected.release, &truth, users));
    }

    // Utility: 16× the users must shrink normalized error markedly
    // (√16 = 4× in expectation; demand 2× for seed slack), and the
    // large-population estimate must be genuinely informative.
    let (small, large) = (maes[0], maes[1]);
    assert!(
        small > 2.0 * large,
        "normalized MAE must shrink with population: {SMALL_M} users → {small:.4}, \
         {LARGE_M} users → {large:.4}"
    );
    assert!(
        large < 0.1,
        "normalized MAE at {LARGE_M} users should be well under 0.1, got {large:.4}"
    );

    // Accounting: the transport counted exactly the accepted reports,
    // and both epochs are served side by side.
    let stats = client.stats().unwrap();
    assert_eq!(
        stats
            .transport
            .expect("server exports transport counters")
            .reports_accepted,
        total_reports
    );
    let mut keys = client.keys().unwrap();
    keys.sort();
    assert_eq!(keys, vec!["taxi@epoch:0", "taxi@epoch:1"]);
    server.shutdown();
}
