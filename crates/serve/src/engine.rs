//! The batched query frontend over a release catalog.
//!
//! A [`QueryEngine`] wraps a [`Catalog`] behind interior locking so any
//! number of threads can answer queries and insert releases
//! concurrently. The serving discipline:
//!
//! 1. **Resolve under the lock, compile and answer outside it.** A
//!    request (or a whole batch) takes the catalog lock only long
//!    enough to lease warm `Arc<CompiledSurface>` handles or cold
//!    release leases; O(cells·log cells) surface compilations run
//!    *unlocked* (each release's `OnceLock` keeps them exactly-once)
//!    and answering holds no lock either, so neither slow queries nor
//!    cold compiles block inserts or other requests.
//! 2. **Shard over scoped threads.** Batches fan out across
//!    `std::thread::scope` workers, and each request's rectangles run
//!    through the same [`dpgrid_geo::answer_all_batched`] driver the
//!    rest of the workspace uses (or a pinned worker count via
//!    [`QueryEngine::with_workers`]).
//! 3. **Typed responses.** Every [`QueryResponse`] carries the release
//!    version it answered against and whether the surface was warm,
//!    so callers can reason about staleness and cache behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dpgrid_core::{Release, ReleaseSink};
use dpgrid_geo::{answer_all_with_workers, Rect};

use crate::catalog::{CacheState, Catalog, CatalogStats, Lease, SurfaceHandle};
use crate::error::Result;

/// A batch of rectangle count queries addressed to one release.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Catalog key of the release to answer from.
    pub release_key: String,
    /// The query rectangles, answered in order.
    pub rects: Vec<Rect>,
}

impl QueryRequest {
    /// A request for `rects` against the release under `key`.
    pub fn new(key: impl Into<String>, rects: Vec<Rect>) -> Self {
        QueryRequest {
            release_key: key.into(),
            rects,
        }
    }
}

/// The typed answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Key the request was routed to.
    pub release_key: String,
    /// Version of the release that answered (see [`Catalog::version`]).
    pub version: u64,
    /// Whether the compiled surface was resident when the request
    /// arrived.
    pub cache: CacheState,
    /// One answer per requested rectangle, same order.
    pub answers: Vec<f64>,
}

/// Point-in-time engine counters: request traffic on top of the
/// catalog's surface-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests routed (successful or not).
    pub requests: u64,
    /// Individual rectangle queries answered.
    pub answers: u64,
    /// Requests that named an unknown release key.
    pub unknown_keys: u64,
    /// The wrapped catalog's counters.
    pub catalog: CatalogStats,
}

/// A thread-safe, batched, multi-release query frontend.
///
/// ```
/// use dpgrid_core::{Method, Pipeline};
/// use dpgrid_geo::generators::PaperDataset;
/// use dpgrid_geo::Rect;
/// use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
///
/// let dataset = PaperDataset::Storage.generate_n(1, 2_000).unwrap();
/// let mut catalog = Catalog::new();
/// Pipeline::new(&dataset)
///     .method(Method::ug(16))
///     .seed(7)
///     .publish_into(&mut catalog, "storage")
///     .unwrap();
///
/// let engine = QueryEngine::new(catalog);
/// let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
/// let response = engine
///     .answer(&QueryRequest::new("storage", vec![q]))
///     .unwrap();
/// assert_eq!(response.answers.len(), 1);
/// assert_eq!(response.version, 1);
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    catalog: Mutex<Catalog>,
    /// Worker budget for one batch: 0 means adaptive (the
    /// `answer_all_batched` driver decides per batch).
    workers: usize,
    requests: AtomicU64,
    answers: AtomicU64,
    unknown_keys: AtomicU64,
}

impl QueryEngine {
    /// Wraps `catalog` with the adaptive worker policy.
    pub fn new(catalog: Catalog) -> Self {
        QueryEngine {
            catalog: Mutex::new(catalog),
            workers: 0,
            requests: AtomicU64::new(0),
            answers: AtomicU64::new(0),
            unknown_keys: AtomicU64::new(0),
        }
    }

    /// Pins the total worker budget per batch. `1` answers strictly
    /// sequentially (the benchmarking baseline); `0` restores the
    /// adaptive policy.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The configured worker budget (0 = adaptive).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Inserts (or re-versions) a release, returning its version.
    /// Concurrent queries keep answering against the surface they
    /// already leased.
    pub fn insert(&self, key: impl Into<String>, release: Release) -> u64 {
        self.lock().insert(key, release)
    }

    /// Runs `f` with exclusive access to the wrapped catalog — the
    /// escape hatch for maintenance (directory loads, removals,
    /// capacity inspection) without tearing the engine down.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        f(&mut self.lock())
    }

    /// Answers one request: resolves the release's compiled surface
    /// (compiling outside the catalog lock if cold), then answers
    /// every rectangle with no lock held.
    pub fn answer(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let resolved = self.resolve(&request.release_key);
        self.respond(request, resolved, self.workers)
    }

    /// Routes a batch of requests across releases: warm surfaces are
    /// leased under one short catalog lock, then the requests are
    /// sharded over `std::thread::scope` workers — cold compilations
    /// run on the workers with no lock held (concurrently across
    /// distinct releases, exactly once per release whatever the batch
    /// shape) — and each request's rectangles are answered through the
    /// shared batched driver.
    ///
    /// Responses come back in request order; a request for an unknown
    /// key fails alone without poisoning the rest of the batch.
    pub fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        // Phase one under one short lock: warm handles and cold leases.
        let leases: Vec<Result<Lease>> = {
            let mut catalog = self.lock();
            requests
                .iter()
                .map(|r| catalog.lease(&r.release_key))
                .collect()
        };
        // Phase two runs inside the shards: each worker finishes its
        // requests' leases (cold compiles execute on the worker, so a
        // batch over K cold releases compiles them concurrently — the
        // per-release `OnceLock` dedups same-key races) and answers.
        // Other threads keep leasing and inserting meanwhile.
        let mut leases: Vec<Option<Result<Lease>>> = leases.into_iter().map(Some).collect();
        let budget = self.budget();
        let shards = requests.len().min(budget).max(1);
        if shards <= 1 {
            return requests
                .iter()
                .zip(&mut leases)
                .map(|(req, lease)| {
                    let resolved =
                        self.finish_lease(&req.release_key, lease.take().expect("leased once"));
                    self.respond(req, resolved, self.workers)
                })
                .collect();
        }
        // Shard requests across scoped workers. With a pinned budget,
        // divide it so the per-request fan-out keeps the total thread
        // count near the budget instead of multiplying the two levels;
        // the adaptive policy (0) needs no division — the shared
        // driver already counts concurrent fan-outs and sizes itself.
        let per_request = if self.workers == 0 {
            0
        } else {
            (self.workers / shards).max(1)
        };
        let chunk = requests.len().div_ceil(shards);
        let mut out: Vec<Option<Result<QueryResponse>>> = requests.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((req_chunk, lease_chunk), out_chunk) in requests
                .chunks(chunk)
                .zip(leases.chunks_mut(chunk))
                .zip(out.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for ((req, lease), slot) in req_chunk.iter().zip(lease_chunk).zip(out_chunk) {
                        let resolved =
                            self.finish_lease(&req.release_key, lease.take().expect("leased once"));
                        *slot = Some(self.respond(req, resolved, per_request));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every shard fills its slots"))
            .collect()
    }

    /// Point-in-time counters (takes the catalog lock briefly).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            answers: self.answers.load(Ordering::Relaxed),
            unknown_keys: self.unknown_keys.load(Ordering::Relaxed),
            catalog: self.lock().stats(),
        }
    }

    /// Resolves one key to a surface handle: lease under the lock,
    /// compile (if cold) outside it, report back for LRU accounting.
    fn resolve(&self, key: &str) -> Result<SurfaceHandle> {
        let lease = self.lock().lease(key);
        self.finish_lease(key, lease)
    }

    /// Turns a phase-one lease into a handle, running any compilation
    /// with no lock held.
    fn finish_lease(&self, key: &str, lease: Result<Lease>) -> Result<SurfaceHandle> {
        match lease? {
            Lease::Warm(handle) => Ok(handle),
            Lease::Cold(cold) => {
                let handle = cold.compile();
                self.lock().note_compiled(key, handle.version);
                Ok(handle)
            }
        }
    }

    /// Answers `request` against an already-resolved surface handle,
    /// with `workers` = 0 meaning the adaptive driver.
    fn respond(
        &self,
        request: &QueryRequest,
        resolved: Result<SurfaceHandle>,
        workers: usize,
    ) -> Result<QueryResponse> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let handle = match resolved {
            Ok(handle) => handle,
            Err(e) => {
                self.unknown_keys.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let answers = if workers == 0 {
            // Adaptive: the shared driver sizes the fan-out against the
            // machine and the other fan-outs currently in flight.
            handle.surface.answer_all(&request.rects)
        } else {
            answer_all_with_workers(&request.rects, |q| handle.surface.answer(q), workers)
        };
        self.answers
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        Ok(QueryResponse {
            release_key: request.release_key.clone(),
            version: handle.version,
            cache: handle.cache,
            answers,
        })
    }

    /// Total worker budget for one batch.
    fn budget(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The catalog lock, surviving panics in other lock holders: the
    /// catalog's state stays consistent under poisoning because every
    /// mutation (insert, touch, evict) completes or never started.
    fn lock(&self) -> MutexGuard<'_, Catalog> {
        self.catalog
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Zero-copy handoff from [`dpgrid_core::Pipeline::publish_into`].
impl ReleaseSink for QueryEngine {
    fn accept_release(&mut self, key: String, release: Release) {
        self.insert(key, release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use dpgrid_core::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;

    fn engine_with(keys: &[(&str, u64)]) -> QueryEngine {
        let ds = PaperDataset::Storage.generate_n(3, 2_000).unwrap();
        let mut catalog = Catalog::new();
        for (key, seed) in keys {
            Pipeline::new(&ds)
                .method(Method::ug(12))
                .seed(*seed)
                .publish_into(&mut catalog, *key)
                .unwrap();
        }
        QueryEngine::new(catalog)
    }

    fn rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Rect::new(
                    -120.0 + 30.0 * t,
                    15.0 + 20.0 * t,
                    -90.0 + 10.0 * t,
                    40.0 + 5.0 * t,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn answer_routes_and_reports_cache_state() {
        let engine = engine_with(&[("a", 1), ("b", 2)]);
        let req = QueryRequest::new("a", rects(5));
        let cold = engine.answer(&req).unwrap();
        assert_eq!(cold.cache, CacheState::Cold);
        assert_eq!(cold.answers.len(), 5);
        assert_eq!(cold.version, 1);
        let warm = engine.answer(&req).unwrap();
        assert_eq!(warm.cache, CacheState::Warm);
        assert_eq!(warm.answers, cold.answers);
        assert!(matches!(
            engine.answer(&QueryRequest::new("zz", rects(1))),
            Err(ServeError::UnknownRelease(_))
        ));
        let stats = engine.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.answers, 10);
        assert_eq!(stats.unknown_keys, 1);
        assert_eq!(stats.catalog.compilations, 1);
    }

    #[test]
    fn answer_batch_keeps_request_order_and_isolates_failures() {
        let engine = engine_with(&[("a", 1), ("b", 2), ("c", 3)]);
        let requests = vec![
            QueryRequest::new("c", rects(4)),
            QueryRequest::new("missing", rects(2)),
            QueryRequest::new("a", rects(3)),
            QueryRequest::new("c", rects(4)),
        ];
        let responses = engine.answer_batch(&requests);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].as_ref().unwrap().release_key, "c");
        assert!(matches!(
            responses[1],
            Err(ServeError::UnknownRelease(ref k)) if k == "missing"
        ));
        assert_eq!(responses[2].as_ref().unwrap().release_key, "a");
        // Same release twice in one batch: both leases predate the
        // compile so both report cold, but the release's `OnceLock`
        // compiled once and the catalog counted once.
        assert_eq!(responses[0].as_ref().unwrap().cache, CacheState::Cold);
        assert_eq!(responses[3].as_ref().unwrap().cache, CacheState::Cold);
        assert_eq!(
            responses[0].as_ref().unwrap().answers,
            responses[3].as_ref().unwrap().answers
        );
        assert_eq!(engine.stats().catalog.compilations, 2);
        // The next batch runs entirely warm.
        for response in engine.answer_batch(&requests[2..]) {
            assert_eq!(response.unwrap().cache, CacheState::Warm);
        }
        assert_eq!(engine.stats().catalog.compilations, 2);
    }

    #[test]
    fn batch_matches_per_request_answers_across_worker_policies() {
        let requests: Vec<QueryRequest> = [("a", 40), ("b", 7), ("a", 1)]
            .iter()
            .map(|(k, n)| QueryRequest::new(*k, rects(*n)))
            .collect();
        let sequential = engine_with(&[("a", 1), ("b", 2)]).with_workers(1);
        let expected: Vec<Vec<f64>> = requests
            .iter()
            .map(|r| sequential.answer(r).unwrap().answers)
            .collect();
        for workers in [0usize, 1, 2, 4] {
            let engine = engine_with(&[("a", 1), ("b", 2)]).with_workers(workers);
            let responses = engine.answer_batch(&requests);
            for (resp, expect) in responses.iter().zip(&expected) {
                assert_eq!(&resp.as_ref().unwrap().answers, expect, "workers {workers}");
            }
        }
    }

    #[test]
    fn insert_through_engine_reversions_live_keys() {
        let engine = engine_with(&[("a", 1)]);
        let req = QueryRequest::new("a", rects(3));
        let before = engine.answer(&req).unwrap();
        let ds = PaperDataset::Storage.generate_n(3, 2_000).unwrap();
        let v2 = engine.insert(
            "a",
            Pipeline::new(&ds)
                .method(Method::ug(12))
                .seed(99)
                .publish()
                .unwrap(),
        );
        assert_eq!(v2, 2);
        let after = engine.answer(&req).unwrap();
        assert_eq!(after.version, 2);
        assert_eq!(after.cache, CacheState::Cold);
        assert_ne!(before.answers, after.answers);
    }
}
