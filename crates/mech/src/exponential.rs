//! The exponential mechanism via Gumbel-max sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{check_epsilon, check_sensitivity, MechError, Result};

/// The exponential mechanism of McSherry & Talwar: selects candidate `i`
/// with probability proportional to `exp(ε · q_i / (2·Δq))`, where `q_i`
/// is the candidate's utility score and `Δq` its sensitivity.
///
/// The KD-tree baselines use this to choose split points privately: the
/// candidates are the cell boundaries of a node's sub-histogram and the
/// utility of a split is `−|rank(split) − n/2|` (distance of the split
/// from the true median), which has sensitivity 1.
///
/// # Implementation
///
/// Sampling uses the **Gumbel-max trick**: adding independent standard
/// Gumbel noise to each scaled score and taking the argmax is exactly
/// equivalent to softmax sampling, but needs no normalisation and is
/// numerically robust for large `ε · q / (2Δq)` magnitudes where
/// `exp(...)` would overflow or underflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl ExponentialMechanism {
    /// Creates the mechanism with privacy parameter `epsilon` and utility
    /// sensitivity `sensitivity`.
    pub fn new(epsilon: f64, sensitivity: f64) -> Result<Self> {
        Ok(ExponentialMechanism {
            epsilon: check_epsilon(epsilon)?,
            sensitivity: check_sensitivity(sensitivity)?,
        })
    }

    /// The privacy parameter ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The utility sensitivity Δq.
    #[inline]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Selects an index from `scores`, each score being the utility of
    /// the corresponding candidate. Higher scores are exponentially more
    /// likely to be chosen.
    pub fn select(&self, scores: &[f64], rng: &mut impl Rng) -> Result<usize> {
        if scores.is_empty() {
            return Err(MechError::EmptyCandidates);
        }
        for (index, &score) in scores.iter().enumerate() {
            if !score.is_finite() {
                return Err(MechError::NonFiniteScore { index, score });
            }
        }
        let factor = self.epsilon / (2.0 * self.sensitivity);
        let mut best = 0usize;
        let mut best_key = f64::NEG_INFINITY;
        for (i, &score) in scores.iter().enumerate() {
            let key = factor * score + standard_gumbel(rng);
            if key > best_key {
                best_key = key;
                best = i;
            }
        }
        Ok(best)
    }
}

/// Draws a standard Gumbel variate: `−ln(−ln U)` for `U ~ Uniform(0, 1)`.
#[inline]
fn standard_gumbel(rng: &mut impl Rng) -> f64 {
    // Keep U strictly inside (0, 1) to avoid infinities.
    let u: f64 = (1.0 - rng.random::<f64>()).max(f64::MIN_POSITIVE);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn validates_inputs() {
        assert!(ExponentialMechanism::new(0.0, 1.0).is_err());
        assert!(ExponentialMechanism::new(1.0, -1.0).is_err());
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        assert!(matches!(
            m.select(&[], &mut rng(0)),
            Err(MechError::EmptyCandidates)
        ));
        assert!(matches!(
            m.select(&[1.0, f64::NAN], &mut rng(0)),
            Err(MechError::NonFiniteScore { index: 1, .. })
        ));
    }

    #[test]
    fn huge_epsilon_picks_argmax() {
        let m = ExponentialMechanism::new(1e6, 1.0).unwrap();
        let scores = [0.0, 5.0, 3.0, 4.9];
        let mut r = rng(1);
        for _ in 0..100 {
            assert_eq!(m.select(&scores, &mut r).unwrap(), 1);
        }
    }

    #[test]
    fn tiny_epsilon_is_near_uniform() {
        let m = ExponentialMechanism::new(1e-9, 1.0).unwrap();
        let scores = [0.0, 100.0];
        let mut r = rng(2);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| m.select(&scores, &mut r).unwrap() == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn selection_frequencies_match_softmax() {
        let m = ExponentialMechanism::new(2.0, 1.0).unwrap();
        let scores = [0.0, 1.0, 2.0];
        // P(i) ∝ exp(ε·q_i / 2) = exp(q_i) for ε = 2, Δq = 1.
        let weights: Vec<f64> = scores.iter().map(|&s: &f64| s.exp()).collect();
        let z: f64 = weights.iter().sum();
        let mut counts = [0usize; 3];
        let mut r = rng(3);
        let n = 60_000;
        for _ in 0..n {
            counts[m.select(&scores, &mut r).unwrap()] += 1;
        }
        for i in 0..3 {
            let expect = weights[i] / z;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "candidate {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let m = ExponentialMechanism::new(10.0, 1.0).unwrap();
        let scores = [-1e6, 0.0, 1e6];
        let mut r = rng(4);
        // Plain softmax would overflow exp(5e6); Gumbel-max must not.
        assert_eq!(m.select(&scores, &mut r).unwrap(), 2);
    }

    #[test]
    fn single_candidate_always_selected() {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        assert_eq!(m.select(&[-3.0], &mut rng(5)).unwrap(), 0);
    }
}
