//! Error type of the serving layer.

use std::fmt;
use std::path::PathBuf;

use dpgrid_core::CoreError;

/// Everything that can go wrong while serving releases.
///
/// The first four variants are the *typed client errors* of the
/// service API — the wire protocol maps each onto a stable
/// [`crate::wire::ErrorCode`] so remote callers can branch on them
/// exactly as in-process callers match on this enum
/// ([`ServeError::Unavailable`] collapses into `Internal` on the wire:
/// a remote client cannot distinguish a dead shard behind the router
/// from any other server-side failure, and retry is the action for
/// both).
#[derive(Debug)]
pub enum ServeError {
    /// A query named a release key the catalog does not hold.
    UnknownRelease(String),
    /// A query was rejected at the API boundary: NaN / infinite
    /// coordinates, an inverted rectangle, or any other shape the
    /// serving layer refuses to route further down.
    InvalidQuery(String),
    /// Admission control shed the request: admitting its rectangles
    /// would have pushed the engine past its in-flight budget. The
    /// caller should back off and retry; nothing was queued.
    Overloaded {
        /// Rectangles already in flight when the request arrived.
        inflight_rects: u64,
        /// The configured in-flight rectangle budget.
        limit: u64,
    },
    /// A backing shard could not serve the request at all — the
    /// router could not reach it (remote transport failure), or no
    /// shard exists to route to. Unlike [`ServeError::Overloaded`]
    /// this is not the backend saying "later"; it is the routing tier
    /// saying "unreachable". Fails only the requests routed to that
    /// shard; the rest of a batch is unaffected.
    Unavailable {
        /// The shard (router-registered name, or the remote address)
        /// that could not be reached.
        shard: String,
        /// Human-readable transport detail.
        reason: String,
    },
    /// A release file's name cannot serve as a catalog key (e.g. a
    /// non-UTF-8 file stem in a loaded directory).
    InvalidKey(String),
    /// A release file failed to load or validate. Unlike the bare
    /// [`ServeError::Core`] this names the offending path, so a bad
    /// dump in a [`crate::Catalog::load_dir`] directory is
    /// identifiable from the message alone.
    Load {
        /// The release file that failed.
        path: PathBuf,
        /// The underlying parse/validation failure.
        source: CoreError,
    },
    /// Filesystem access failed while loading releases. The original
    /// [`std::io::Error`] is preserved so callers can branch on its
    /// [`std::io::ErrorKind`].
    Io {
        /// The path being read when the error occurred.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Loading or validating a release failed (malformed JSON,
    /// invariant violations — see [`dpgrid_core::CoreError`]).
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownRelease(key) => {
                write!(f, "no release under key `{key}` in the catalog")
            }
            ServeError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            ServeError::Overloaded {
                inflight_rects,
                limit,
            } => write!(
                f,
                "engine overloaded: {inflight_rects} rects in flight against a budget of {limit}"
            ),
            ServeError::Unavailable { shard, reason } => {
                write!(f, "shard `{shard}` unavailable: {reason}")
            }
            ServeError::InvalidKey(why) => write!(f, "invalid release key: {why}"),
            ServeError::Load { path, source } => {
                write!(f, "loading release {}: {source}", path.display())
            }
            ServeError::Io { path, source } => {
                write!(f, "reading {}: {source}", path.display())
            }
            ServeError::Core(e) => write!(f, "release error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::UnknownRelease(_)
            | ServeError::InvalidQuery(_)
            | ServeError::Overloaded { .. }
            | ServeError::Unavailable { .. }
            | ServeError::InvalidKey(_) => None,
            ServeError::Io { source, .. } => Some(source),
            ServeError::Load { source, .. } => Some(source),
            ServeError::Core(e) => Some(e),
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
