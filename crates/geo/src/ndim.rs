//! d-dimensional grids — the substrate for testing §IV-C's prediction.
//!
//! The paper predicts that the (already small) 2-D benefit of
//! hierarchies "would perform even worse with higher dimensions". The
//! 2-D types of this crate are deliberately specialised; this module
//! provides just enough const-generic d-dimensional machinery — points,
//! boxes, equi-width grids with fractional range answering, block
//! aggregation and a Gaussian-mixture generator — for the `dim`
//! experiment to test that prediction at d = 3.
//!
//! The same half-open box conventions as the 2-D types apply.

use rand::Rng;

use crate::generators::standard_normal_pair;
use crate::{GeoError, Result};

/// A point in `D` dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdPoint<const D: usize>(pub [f64; D]);

/// An axis-aligned half-open box in `D` dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdBox<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

impl<const D: usize> NdBox<D> {
    /// Creates a box, validating finiteness and corner ordering.
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Result<Self> {
        for k in 0..D {
            if !lo[k].is_finite() || !hi[k].is_finite() {
                return Err(GeoError::NonFiniteCoordinate {
                    value: if lo[k].is_finite() { hi[k] } else { lo[k] },
                    context: "nd box corner",
                });
            }
            if lo[k] > hi[k] {
                return Err(GeoError::InvertedRect {
                    lo: (lo[k], k as f64),
                    hi: (hi[k], k as f64),
                });
            }
        }
        Ok(NdBox { lo, hi })
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64; D] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64; D] {
        &self.hi
    }

    /// Extent along axis `k`.
    #[inline]
    pub fn extent(&self, k: usize) -> f64 {
        self.hi[k] - self.lo[k]
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        (0..D).map(|k| self.extent(k)).product()
    }

    /// Half-open containment (closed on the upper face, mirroring the
    /// 2-D domain convention, when `closed_upper` is set).
    pub fn contains(&self, p: &NdPoint<D>, closed_upper: bool) -> bool {
        (0..D).all(|k| {
            p.0[k] >= self.lo[k] && (p.0[k] < self.hi[k] || (closed_upper && p.0[k] <= self.hi[k]))
        })
    }

    /// Intersection with another box, `None` when the overlap has zero
    /// volume.
    pub fn intersection(&self, other: &NdBox<D>) -> Option<NdBox<D>> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for k in 0..D {
            lo[k] = self.lo[k].max(other.lo[k]);
            hi[k] = self.hi[k].min(other.hi[k]);
            if lo[k] >= hi[k] {
                return None;
            }
        }
        Some(NdBox { lo, hi })
    }

    /// Fraction of this box's volume covered by `query`.
    pub fn overlap_fraction(&self, query: &NdBox<D>) -> f64 {
        let v = self.volume();
        if v <= 0.0 {
            return 0.0;
        }
        match self.intersection(query) {
            Some(i) => (i.volume() / v).clamp(0.0, 1.0),
            None => 0.0,
        }
    }
}

/// A dense equi-width grid over a `D`-dimensional box: `m` cells per
/// axis, `m^D` cells total, row-major with axis 0 fastest.
#[derive(Debug, Clone)]
pub struct NdGrid<const D: usize> {
    domain: NdBox<D>,
    m: usize,
    data: Vec<f64>,
}

impl<const D: usize> NdGrid<D> {
    /// Creates an all-zero grid with `m` cells per axis.
    pub fn zeros(domain: NdBox<D>, m: usize) -> Result<Self> {
        if m == 0 {
            return Err(GeoError::ZeroGridSize);
        }
        let cells = m
            .checked_pow(D as u32)
            .filter(|&c| c <= crate::MAX_GRID_CELLS)
            .ok_or(GeoError::GridTooLarge {
                requested: usize::MAX,
                max: crate::MAX_GRID_CELLS,
            })?;
        if domain.volume() <= 0.0 {
            return Err(GeoError::EmptyRect);
        }
        Ok(NdGrid {
            domain,
            m,
            data: vec![0.0; cells],
        })
    }

    /// Counts points into the grid (points outside the closed domain are
    /// rejected as an error — callers generate in-domain data).
    pub fn count(domain: NdBox<D>, m: usize, points: &[NdPoint<D>]) -> Result<Self> {
        let mut g = NdGrid::zeros(domain, m)?;
        for (index, p) in points.iter().enumerate() {
            let Some(idx) = g.cell_of(p) else {
                return Err(GeoError::PointOutsideDomain {
                    point: (p.0[0], p.0.get(1).copied().unwrap_or(0.0)),
                    index,
                });
            };
            g.data[idx] += 1.0;
        }
        Ok(g)
    }

    /// Cells per axis.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total cell count `m^D`.
    pub fn cell_count(&self) -> usize {
        self.data.len()
    }

    /// The domain box.
    pub fn domain(&self) -> &NdBox<D> {
        &self.domain
    }

    /// Raw cell values.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw cell values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Linear index of the cell containing `p` (closed upper faces).
    pub fn cell_of(&self, p: &NdPoint<D>) -> Option<usize> {
        if !self.domain.contains(p, true) {
            return None;
        }
        let mut idx = 0usize;
        let mut stride = 1usize;
        for k in 0..D {
            let f = (p.0[k] - self.domain.lo[k]) / self.domain.extent(k);
            let c = ((f * self.m as f64) as usize).min(self.m - 1);
            idx += c * stride;
            stride *= self.m;
        }
        Some(idx)
    }

    /// The box of the cell with linear index `idx`.
    pub fn cell_box(&self, idx: usize) -> NdBox<D> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        let mut rest = idx;
        for k in 0..D {
            let c = rest % self.m;
            rest /= self.m;
            lo[k] = self.domain.lo[k] + self.domain.extent(k) * (c as f64) / (self.m as f64);
            hi[k] = self.domain.lo[k] + self.domain.extent(k) * ((c + 1) as f64) / (self.m as f64);
        }
        NdBox { lo, hi }
    }

    /// Aggregates `b^D` blocks into a coarser grid (`m` must be
    /// divisible by `b`).
    pub fn aggregate(&self, b: usize) -> Result<NdGrid<D>> {
        if b == 0 {
            return Err(GeoError::ZeroGridSize);
        }
        if !self.m.is_multiple_of(b) {
            return Err(GeoError::InvalidGeneratorSpec(format!(
                "nd grid m={} not divisible by b={b}",
                self.m
            )));
        }
        let coarse_m = self.m / b;
        let mut out = NdGrid::zeros(self.domain, coarse_m)?;
        for (idx, &v) in self.data.iter().enumerate() {
            // Map the fine multi-index to the coarse one.
            let mut rest = idx;
            let mut coarse_idx = 0usize;
            let mut stride = 1usize;
            for _ in 0..D {
                let c = rest % self.m;
                rest /= self.m;
                coarse_idx += (c / b) * stride;
                stride *= coarse_m;
            }
            out.data[coarse_idx] += v;
        }
        Ok(out)
    }

    /// Parent (coarse) linear index of fine cell `idx` under `b`-fold
    /// aggregation.
    pub fn parent_index(&self, idx: usize, b: usize) -> usize {
        let coarse_m = self.m / b;
        let mut rest = idx;
        let mut coarse_idx = 0usize;
        let mut stride = 1usize;
        for _ in 0..D {
            let c = rest % self.m;
            rest /= self.m;
            coarse_idx += (c / b) * stride;
            stride *= coarse_m;
        }
        coarse_idx
    }

    /// Answers a box count query under the uniformity assumption by
    /// iterating the touched cells with per-axis fractional weights.
    ///
    /// Complexity is the number of touched cells; fine for the modest
    /// grids the dimensionality experiment uses (m ≤ 32).
    pub fn answer_uniform(&self, query: &NdBox<D>) -> f64 {
        let Some(q) = self.domain.intersection(query) else {
            return 0.0;
        };
        // Per-axis touched index ranges and weights.
        let mut ranges: [(usize, usize); D] = [(0, 0); D];
        let mut weights: Vec<Vec<f64>> = Vec::with_capacity(D);
        #[allow(clippy::needless_range_loop)] // k indexes three parallel arrays
        for k in 0..D {
            let mf = self.m as f64;
            let u0 = ((q.lo[k] - self.domain.lo[k]) / self.domain.extent(k) * mf).clamp(0.0, mf);
            let u1 = ((q.hi[k] - self.domain.lo[k]) / self.domain.extent(k) * mf).clamp(0.0, mf);
            let i0 = (u0.floor() as usize).min(self.m - 1);
            let i1 = ((u1 - f64::EPSILON).floor() as usize).clamp(i0, self.m - 1);
            let mut w = Vec::with_capacity(i1 - i0 + 1);
            for i in i0..=i1 {
                let lo = (i as f64).max(u0);
                let hi = ((i + 1) as f64).min(u1);
                w.push((hi - lo).max(0.0));
            }
            ranges[k] = (i0, i1);
            weights.push(w);
        }
        // Iterate the cartesian product of touched indices.
        let mut sum = 0.0;
        let mut cursor = [0usize; D];
        'outer: loop {
            let mut idx = 0usize;
            let mut stride = 1usize;
            let mut w = 1.0;
            for k in 0..D {
                let i = ranges[k].0 + cursor[k];
                idx += i * stride;
                stride *= self.m;
                w *= weights[k][cursor[k]];
            }
            sum += w * self.data[idx];
            // Advance the odometer.
            for k in 0..D {
                cursor[k] += 1;
                if ranges[k].0 + cursor[k] <= ranges[k].1 {
                    continue 'outer;
                }
                cursor[k] = 0;
            }
            break;
        }
        sum
    }
}

/// Samples `n` points from a mixture of `clusters` spherical Gaussians
/// (uniform-weighted, centers drawn uniformly, σ a fraction of the
/// domain extent) plus a 20 % uniform background — the d-dimensional
/// analogue of the 2-D cluster generators.
pub fn gaussian_mixture<const D: usize>(
    domain: NdBox<D>,
    clusters: usize,
    sigma_frac: f64,
    n: usize,
    rng: &mut impl Rng,
) -> Result<Vec<NdPoint<D>>> {
    if clusters == 0 || !(sigma_frac > 0.0 && sigma_frac.is_finite()) {
        return Err(GeoError::InvalidGeneratorSpec(
            "need ≥ 1 cluster and positive sigma".into(),
        ));
    }
    let centers: Vec<[f64; D]> = (0..clusters)
        .map(|_| {
            let mut c = [0.0; D];
            for (k, v) in c.iter_mut().enumerate() {
                *v = rng.random_range(domain.lo[k]..domain.hi[k]);
            }
            c
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = if rng.random::<f64>() < 0.2 {
            // Uniform background.
            let mut c = [0.0; D];
            for (k, v) in c.iter_mut().enumerate() {
                *v = rng.random_range(domain.lo[k]..domain.hi[k]);
            }
            NdPoint(c)
        } else {
            let center = centers[rng.random_range(0..clusters)];
            let mut c = [0.0; D];
            for (k, (v, ctr)) in c.iter_mut().zip(center).enumerate() {
                let (z, _) = standard_normal_pair(rng);
                *v = ctr + z * sigma_frac * domain.extent(k);
            }
            NdPoint(c)
        };
        if domain.contains(&p, false) {
            out.push(p);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn unit_box<const D: usize>() -> NdBox<D> {
        NdBox::new([0.0; D], [1.0; D]).unwrap()
    }

    #[test]
    fn box_validation() {
        assert!(NdBox::<3>::new([0.0, 0.0, 1.0], [1.0, 1.0, 0.0]).is_err());
        assert!(NdBox::<2>::new([f64::NAN, 0.0], [1.0, 1.0]).is_err());
        let b = unit_box::<3>();
        assert_eq!(b.volume(), 1.0);
    }

    #[test]
    fn containment_and_intersection() {
        let b = unit_box::<3>();
        assert!(b.contains(&NdPoint([0.5, 0.5, 0.5]), false));
        assert!(!b.contains(&NdPoint([1.0, 0.5, 0.5]), false));
        assert!(b.contains(&NdPoint([1.0, 1.0, 1.0]), true));
        let other = NdBox::new([0.5, 0.5, 0.5], [2.0, 2.0, 2.0]).unwrap();
        let i = b.intersection(&other).unwrap();
        assert!((i.volume() - 0.125).abs() < 1e-12);
        assert!((b.overlap_fraction(&other) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn counting_and_cells() {
        let b = unit_box::<3>();
        let points = vec![
            NdPoint([0.1, 0.1, 0.1]),
            NdPoint([0.9, 0.9, 0.9]),
            NdPoint([1.0, 1.0, 1.0]), // closed upper corner
        ];
        let g = NdGrid::count(b, 2, &points).unwrap();
        assert_eq!(g.cell_count(), 8);
        assert_eq!(g.total(), 3.0);
        assert_eq!(g.values()[0], 1.0); // (0,0,0)
        assert_eq!(g.values()[7], 2.0); // (1,1,1)
                                        // Out-of-domain point errors.
        assert!(NdGrid::count(b, 2, &[NdPoint([2.0, 0.0, 0.0])]).is_err());
    }

    #[test]
    fn cell_box_roundtrip() {
        let b = NdBox::new([0.0, 10.0, -5.0], [4.0, 14.0, -1.0]).unwrap();
        let g = NdGrid::<3>::zeros(b, 4).unwrap();
        for idx in [0usize, 17, 35, 63] {
            let cb = g.cell_box(idx);
            // The cell's center maps back to the same index.
            let mut center = [0.0; 3];
            for (k, c) in center.iter_mut().enumerate() {
                *c = (cb.lo()[k] + cb.hi()[k]) / 2.0;
            }
            assert_eq!(g.cell_of(&NdPoint(center)), Some(idx), "idx {idx}");
        }
    }

    #[test]
    fn aggregate_preserves_total() {
        let b = unit_box::<3>();
        let mut r = rng(1);
        let pts = gaussian_mixture(b, 3, 0.1, 500, &mut r).unwrap();
        let fine = NdGrid::count(b, 4, &pts).unwrap();
        let coarse = fine.aggregate(2).unwrap();
        assert_eq!(coarse.m(), 2);
        assert!((coarse.total() - fine.total()).abs() < 1e-9);
        assert!(fine.aggregate(3).is_err());
        // Parent index mapping is consistent with aggregation.
        for idx in 0..fine.cell_count() {
            let p = fine.parent_index(idx, 2);
            assert!(p < coarse.cell_count());
        }
    }

    #[test]
    fn answer_matches_bruteforce() {
        let b = unit_box::<3>();
        let mut r = rng(2);
        let pts = gaussian_mixture(b, 2, 0.15, 400, &mut r).unwrap();
        let g = NdGrid::count(b, 5, &pts).unwrap();
        for _ in 0..30 {
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for k in 0..3 {
                let a: f64 = r.random_range(-0.2..1.0);
                let bb: f64 = r.random_range(a..1.2);
                lo[k] = a;
                hi[k] = bb;
            }
            let q = NdBox::new(lo, hi).unwrap();
            let fast = g.answer_uniform(&q);
            let brute: f64 = (0..g.cell_count())
                .map(|i| g.values()[i] * g.cell_box(i).overlap_fraction(&q))
                .sum();
            assert!(
                (fast - brute).abs() < 1e-9,
                "query {q:?}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn answer_whole_domain_is_total() {
        let b = unit_box::<4>();
        let mut r = rng(3);
        let pts = gaussian_mixture(b, 2, 0.2, 200, &mut r).unwrap();
        let g = NdGrid::count(b, 3, &pts).unwrap();
        assert!((g.answer_uniform(&b) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn generator_stays_in_domain_and_clusters() {
        let b = NdBox::new([0.0, 0.0, 0.0], [10.0, 10.0, 10.0]).unwrap();
        let mut r = rng(4);
        let pts = gaussian_mixture(b, 1, 0.02, 2_000, &mut r).unwrap();
        assert_eq!(pts.len(), 2_000);
        for p in &pts {
            assert!(b.contains(p, false));
        }
        // Clustered: 80 % of the mass sits in a small fraction of cells
        // (the 20 % uniform background touches many cells, so we measure
        // concentration rather than occupancy).
        let g = NdGrid::count(b, 5, &pts).unwrap();
        let mut v: Vec<f64> = g.values().to_vec();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let (mut acc, mut cells80) = (0.0, 0usize);
        for x in &v {
            acc += x;
            cells80 += 1;
            if acc >= 0.8 * 2_000.0 {
                break;
            }
        }
        assert!(
            cells80 < g.cell_count() / 5,
            "{cells80} of {} cells hold 80% of mass",
            g.cell_count()
        );
    }

    #[test]
    fn works_in_one_and_two_dims_too() {
        // The const-generic code must not assume D = 3.
        let b1 = unit_box::<1>();
        let g1 = NdGrid::count(b1, 4, &[NdPoint([0.6])]).unwrap();
        let q1 = NdBox::new([0.5], [1.0]).unwrap();
        assert!((g1.answer_uniform(&q1) - 1.0).abs() < 1e-9);
        let b2 = unit_box::<2>();
        let g2 = NdGrid::count(b2, 4, &[NdPoint([0.1, 0.9])]).unwrap();
        assert_eq!(g2.total(), 1.0);
    }
}
