//! # Kernel layer — vectorized data-plane primitives with runtime CPU dispatch
//!
//! The batch arithmetic the data plane actually runs, factored out of
//! the crates that call it (`dpgrid-ldp`'s report folds, `dpgrid-mech`'s
//! debiasing transform, `dpgrid-core`'s release compaction) so each
//! primitive can ship **two implementations behind one function**:
//!
//! * a **scalar reference** that builds and runs on any target, and
//! * an **x86_64 AVX2** implementation written directly against
//!   `core::arch` intrinsics (no external SIMD crates — the workspace
//!   vendors all dependencies, so the kernel layer stays `std`-only).
//!
//! ## Dispatch policy
//!
//! The backend is selected **once per process**, on first kernel call,
//! by [`backend`]:
//!
//! 1. If `DPGRID_FORCE_SCALAR` is set to anything but `0`/empty, the
//!    scalar reference runs everywhere — this is how the fallback path
//!    stays testable on machines that *do* have AVX2, and it is wired
//!    into CI as a dedicated forced-scalar leg.
//! 2. Otherwise, if the CPU reports AVX2
//!    (`is_x86_feature_detected!("avx2")`), the AVX2 kernels run.
//! 3. Otherwise (older x86_64, non-x86 targets) the scalar reference
//!    runs.
//!
//! The choice is logged once to stderr and observable three ways: in
//! process via [`active_backend`], over the wire in
//! `dpgrid_serve::EngineStats::kernel_backend`, and per collector via
//! `dpgrid_ldp::ReportCollector::kernel_backend` — so an operator can
//! confirm AVX2 is live on a production box without attaching a
//! debugger. [`Backend::select`] is the pure decision function, unit
//! tested without touching the environment.
//!
//! ## Determinism contract
//!
//! Every kernel is **bit-exact against its scalar reference**, so the
//! releases a deployment publishes are byte-identical no matter which
//! backend folded the reports:
//!
//! * Integer kernels ([`fold_oue`], [`fold_grr_checked`]) produce `u64`
//!   tallies; addition is associative and commutative, so any
//!   summation order gives the same bits.
//! * Floating-point kernels ([`affine_u64`], [`add_assign`]) perform
//!   **element-wise** IEEE operations in the same order and rounding
//!   as the scalar loop — no FMA contraction, no reassociated
//!   reductions. The AVX2 `u64 → f64` conversion uses the 2^52
//!   exponent-bias trick, exact for values below 2^52; lanes holding
//!   larger values fall back to the scalar conversion so the two
//!   backends agree even on hostile inputs.
//!
//! Differential proptests (`tests/differential.rs`) pin this contract
//! across hostile shapes: tail-bit domains (`cells % 64 ≠ 0`), word
//! remainders, empty and single-report batches, and accumulators
//! pre-filled near capacity.
//!
//! ## Adding a kernel
//!
//! 1. Write the scalar reference in the matching module and route the
//!    public entry point through a `*_with(Backend, …)` twin so tests
//!    and benches can pin a backend explicitly.
//! 2. Add the AVX2 implementation as an `unsafe fn` annotated
//!    `#[target_feature(enable = "avx2")]`, reachable only through the
//!    dispatcher (which has already proven the feature exists).
//! 3. Extend `tests/differential.rs` with a scalar-vs-SIMD equivalence
//!    property over the kernel's hostile shapes. Integer kernels must
//!    match bit-for-bit; f64 kernels must match `to_bits()`.
//! 4. If the kernel changes a fold that feeds published releases, run
//!    the workspace `tests/kernel_backends.rs` byte-identity test under
//!    both `DPGRID_FORCE_SCALAR=1` and default dispatch.

#![warn(missing_docs)]

use std::sync::OnceLock;

mod f64ops;
mod pospop;
mod tally;

/// Which implementation family the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The portable scalar reference implementations.
    Scalar,
    /// The x86_64 AVX2 implementations (`core::arch` intrinsics).
    Avx2,
}

impl Backend {
    /// The backend's stable lowercase name, as carried in stats and
    /// bench records.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// The pure dispatch decision: a forced-scalar override always
    /// wins, otherwise AVX2 runs exactly when the hardware has it.
    pub fn select(force_scalar: bool, avx2: bool) -> Backend {
        if force_scalar || !avx2 {
            Backend::Scalar
        } else {
            Backend::Avx2
        }
    }
}

/// Whether this process can run the AVX2 kernels (always `false` off
/// x86_64).
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Whether this process can run the AVX2 kernels (always `false` off
/// x86_64).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// Whether `DPGRID_FORCE_SCALAR` requests the scalar fallback: set to
/// any value except empty or `0`.
fn force_scalar_requested() -> bool {
    std::env::var_os("DPGRID_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// The process-wide kernel backend, selected once on first call (see
/// the crate docs for the policy). The choice is logged to stderr so
/// deployments record which data plane served an epoch.
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| {
        let forced = force_scalar_requested();
        let avx2 = avx2_available();
        let selected = Backend::select(forced, avx2);
        eprintln!(
            "dpgrid-kernels: backend={} (avx2 {}, DPGRID_FORCE_SCALAR {})",
            selected.name(),
            if avx2 { "detected" } else { "absent" },
            if forced { "set" } else { "unset" },
        );
        selected
    })
}

/// The selected backend's name — the string `EngineStats` and the
/// bench records carry.
pub fn active_backend() -> &'static str {
    backend().name()
}

/// Runs `backend`'s implementation or panics if the machine cannot.
/// Centralizes the safety argument: every `unsafe` AVX2 call below is
/// guarded by this check.
#[inline]
fn check_backend(backend: Backend) {
    if backend == Backend::Avx2 {
        assert!(
            avx2_available(),
            "Backend::Avx2 requested on a machine without AVX2"
        );
    }
}

// --- OUE positional popcount -----------------------------------------

/// Folds a batch of packed OUE reports into per-cell tallies: for
/// every report (a run of `words` little-endian `u64`s) and every set
/// bit `j`, `acc[64·word + bit]` is incremented — a **positional
/// popcount** over the batch, the data plane's hottest loop.
///
/// Contract: `words > 0`, `bits.len()` is a multiple of `words`, and
/// every set bit's cell index is `< acc.len()` (callers validate tail
/// bits first; a violation panics on the bounds check rather than
/// corrupting memory). Tallies are `u64` adds, so the result is
/// bit-exact regardless of backend or fold order.
pub fn fold_oue(acc: &mut [u64], words: usize, bits: &[u64]) {
    fold_oue_with(backend(), acc, words, bits)
}

/// [`fold_oue`] with an explicitly pinned backend (differential tests,
/// benches).
pub fn fold_oue_with(backend: Backend, acc: &mut [u64], words: usize, bits: &[u64]) {
    assert!(words > 0, "OUE reports need at least one word");
    assert_eq!(
        bits.len() % words,
        0,
        "bit buffer of {} words is not a whole number of {}-word reports",
        bits.len(),
        words
    );
    check_backend(backend);
    match backend {
        Backend::Scalar => pospop::fold_oue_scalar(acc, words, bits),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_backend proved AVX2 is available.
        Backend::Avx2 => unsafe { pospop::fold_oue_avx2(acc, words, bits) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("check_backend rejects AVX2 off x86_64"),
    }
}

// --- GRR tally scatter ------------------------------------------------

/// Fused validate + fold for a GRR batch: one vectorized max-sweep
/// proves every report lands inside the `cells`-cell domain, then one
/// scatter pass bumps `acc[report]` for each report. All-or-nothing:
/// on `Err` (carrying the first out-of-range report, for the caller's
/// error message) the accumulator is untouched.
///
/// Contract: `acc.len() >= cells as usize`.
pub fn fold_grr_checked(acc: &mut [u64], cells: u32, reports: &[u32]) -> Result<(), u32> {
    fold_grr_checked_with(backend(), acc, cells, reports)
}

/// [`fold_grr_checked`] with an explicitly pinned backend.
pub fn fold_grr_checked_with(
    backend: Backend,
    acc: &mut [u64],
    cells: u32,
    reports: &[u32],
) -> Result<(), u32> {
    assert!(
        acc.len() >= cells as usize,
        "accumulator has {} slots for a {cells}-cell domain",
        acc.len()
    );
    check_backend(backend);
    let max = match backend {
        Backend::Scalar => tally::max_u32_scalar(reports),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_backend proved AVX2 is available.
        Backend::Avx2 => unsafe { tally::max_u32_avx2(reports) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("check_backend rejects AVX2 off x86_64"),
    };
    if let Some(max) = max {
        if max >= cells {
            // Cold path: name the *first* offender, matching the
            // one-report-at-a-time validation the scalar seed did.
            let first = reports
                .iter()
                .copied()
                .find(|&c| c >= cells)
                .expect("max >= cells implies an offender exists");
            return Err(first);
        }
    }
    tally::scatter(acc, reports);
    Ok(())
}

// --- f64 batch arithmetic --------------------------------------------

/// The affine debias transform: `out[i] = (acc[i] as f64 − sub) ×
/// scale`, element-wise — the `(tally − n·q) / (p − q)` inversion both
/// frequency oracles apply at seal time.
///
/// Deterministic across backends: the conversion and both IEEE
/// operations are element-wise in scalar order with no FMA, so the
/// published f64 cells are byte-identical whichever backend sealed the
/// epoch. Contract: `out.len() == acc.len()`.
pub fn affine_u64(out: &mut [f64], acc: &[u64], sub: f64, scale: f64) {
    affine_u64_with(backend(), out, acc, sub, scale)
}

/// [`affine_u64`] with an explicitly pinned backend.
pub fn affine_u64_with(backend: Backend, out: &mut [f64], acc: &[u64], sub: f64, scale: f64) {
    assert_eq!(
        out.len(),
        acc.len(),
        "affine transform needs out and acc the same length"
    );
    check_backend(backend);
    match backend {
        Backend::Scalar => f64ops::affine_u64_scalar(out, acc, sub, scale),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_backend proved AVX2 is available.
        Backend::Avx2 => unsafe { f64ops::affine_u64_avx2(out, acc, sub, scale) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("check_backend rejects AVX2 off x86_64"),
    }
}

/// Element-wise `dst[i] += src[i]` — the aligned cell-wise fast path
/// of release compaction. Element-wise IEEE adds in scalar order, so
/// merged releases are byte-identical across backends. Contract:
/// `dst.len() == src.len()`.
pub fn add_assign(dst: &mut [f64], src: &[f64]) {
    add_assign_with(backend(), dst, src)
}

/// [`add_assign`] with an explicitly pinned backend.
pub fn add_assign_with(backend: Backend, dst: &mut [f64], src: &[f64]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "add_assign needs dst and src the same length"
    );
    check_backend(backend);
    match backend {
        Backend::Scalar => f64ops::add_assign_scalar(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_backend proved AVX2 is available.
        Backend::Avx2 => unsafe { f64ops::add_assign_avx2(dst, src) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("check_backend rejects AVX2 off x86_64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_is_forced_scalar_first() {
        assert_eq!(Backend::select(false, true), Backend::Avx2);
        assert_eq!(Backend::select(true, true), Backend::Scalar);
        assert_eq!(Backend::select(false, false), Backend::Scalar);
        assert_eq!(Backend::select(true, false), Backend::Scalar);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
        // The process-wide choice agrees with the pure decision
        // function applied to this process's environment.
        let expect = Backend::select(force_scalar_requested(), avx2_available());
        assert_eq!(backend(), expect);
        assert_eq!(active_backend(), expect.name());
    }

    #[test]
    fn shape_contracts_panic() {
        let r = std::panic::catch_unwind(|| {
            let mut acc = [0u64; 4];
            fold_oue_with(Backend::Scalar, &mut acc, 2, &[1, 2, 3]);
        });
        assert!(r.is_err(), "ragged batch must panic");
        let r = std::panic::catch_unwind(|| {
            let mut acc = [0u64; 4];
            let _ = fold_grr_checked_with(Backend::Scalar, &mut acc, 8, &[]);
        });
        assert!(r.is_err(), "short accumulator must panic");
    }
}
