//! Private heatmap: publish a density map of sensitive check-in data.
//!
//! Motivating scenario from the paper's introduction: a location-based
//! service wants to share where its users congregate — without exposing
//! any individual check-in. This example releases an adaptive-grid
//! synopsis and renders the *released* density next to the true one so
//! you can eyeball what survives the noise.
//!
//! ```sh
//! cargo run --release --example private_heatmap
//! ```

use dpgrid::core::synthetic;
use dpgrid::prelude::*;
use rand::SeedableRng;

const RAMP: &[u8] = b" .:-=+*#%@";

/// Log-scaled ASCII rendering of a cell decomposition rasterised onto a
/// character grid.
fn render(cells: &[(Rect, f64)], domain: &Domain, cols: usize, rows: usize) -> String {
    let mut raster = vec![0.0f64; cols * rows];
    for (rect, v) in cells {
        if *v <= 0.0 {
            continue;
        }
        let density = v / rect.area();
        // Paint every raster pixel whose center falls in the cell.
        let d = domain.rect();
        for r in 0..rows {
            let y = d.y0() + d.height() * (r as f64 + 0.5) / rows as f64;
            if y < rect.y0() || y >= rect.y1() {
                continue;
            }
            for c in 0..cols {
                let x = d.x0() + d.width() * (c as f64 + 0.5) / cols as f64;
                if x >= rect.x0() && x < rect.x1() {
                    raster[r * cols + c] += density;
                }
            }
        }
    }
    let max = raster.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    for r in (0..rows).rev() {
        for c in 0..cols {
            let t = (1.0 + raster[r * cols + c]).ln() / (1.0 + max).ln();
            let i = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[i] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let dataset = PaperDataset::Checkin
        .generate_n(11, 200_000)
        .expect("generate dataset");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // True density (never leaves the data owner).
    let true_grid = DenseGrid::count(&dataset, 72, 30).expect("count");
    let true_cells: Vec<(Rect, f64)> = true_grid
        .iter_cells()
        .map(|(_, _, rect, v)| (rect, v))
        .collect();

    // Released density: ε = 0.5 adaptive grid.
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(0.5), &mut rng)
        .expect("build AG");

    println!("true density ({} check-ins):", dataset.len());
    println!("{}", render(&true_cells, dataset.domain(), 72, 24));
    println!("released density (ε = 0.5, m1 = {}):", ag.m1());
    println!("{}", render(&ag.cells(), dataset.domain(), 72, 24));

    // Bonus: the release supports DP synthetic data for downstream
    // tooling that wants points, not grids.
    let synth = synthetic::synthesize(&ag, 10_000, &mut rng).expect("synthesize");
    println!(
        "generated {} synthetic points from the release (privacy-free post-processing)",
        synth.len()
    );
}
