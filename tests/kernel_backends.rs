//! Cross-backend guarantees of the kernel layer, observed from the
//! workspace surface:
//!
//! 1. the dispatcher's choice is observable (in-process, per
//!    collector, and in `EngineStats` JSON) and matches the
//!    environment — the CI forced-scalar leg runs this same test with
//!    `DPGRID_FORCE_SCALAR=1` and asserts the fallback is really live;
//! 2. a same-seed LDP epoch publishes a **byte-identical** release
//!    whichever backend folds and seals it: the full collector
//!    pipeline's JSON equals a replica computed with each backend
//!    pinned explicitly.

use dpgrid::kernels::{self, Backend};
use dpgrid::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn forced_scalar() -> bool {
    std::env::var("DPGRID_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn dispatcher_choice_is_observable_everywhere() {
    let expect = Backend::select(forced_scalar(), kernels::avx2_available()).name();
    // In-process.
    assert_eq!(kernels::active_backend(), expect);
    // Per collector.
    let collector = ReportCollector::new(
        CollectorConfig::new(
            "obsv",
            Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap(),
            4,
            4,
            BudgetSchedule::uniform(1.0, 2).unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(collector.kernel_backend(), expect);
    // In the engine's stats, and through their JSON encoding — the
    // form an operator actually reads over the wire.
    let stats = QueryEngine::new(Catalog::new()).stats();
    assert_eq!(stats.kernel_backend.map(|b| b.name()), Some(expect));
    let json = serde_json::to_string(&stats).unwrap();
    assert!(json.contains("kernel_backend"), "{json}");
}

/// One epoch of deterministic GRR + OUE traffic over a 10×10 grid
/// (100 cells → a tail-bit domain, 2 words with 28 dead bits).
fn epoch_traffic(epsilon: f64) -> (Vec<u32>, u32, Vec<u64>) {
    let grr = Grr::new(100, epsilon).unwrap();
    let oue = Oue::new(100, epsilon).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut grr_reports = Vec::new();
    let mut oue_bits = Vec::new();
    let mut oue_count = 0u32;
    for i in 0..400usize {
        let truth = (i * 7) % 100;
        match grr.perturb(truth, &mut rng).unwrap() {
            LocalReport::Cell(c) => grr_reports.push(c),
            other => panic!("GRR perturbs to a cell, got {other:?}"),
        }
        match oue.perturb(truth, &mut rng).unwrap() {
            LocalReport::Bits(words) => {
                oue_count += 1;
                oue_bits.extend_from_slice(&words);
            }
            other => panic!("OUE perturbs to bits, got {other:?}"),
        }
    }
    (grr_reports, oue_count, oue_bits)
}

/// Replays the collector's fold + seal arithmetic with every kernel
/// call pinned to `backend`, returning the release JSON.
fn seal_with_backend(
    backend: Backend,
    domain: Domain,
    epsilon: f64,
    grr_reports: &[u32],
    oue_count: u32,
    oue_bits: &[u64],
) -> Vec<u8> {
    let grr = Grr::new(100, epsilon).unwrap();
    let oue = Oue::new(100, epsilon).unwrap();

    let mut grr_acc = vec![0u64; 100];
    kernels::fold_grr_checked_with(backend, &mut grr_acc, 100, grr_reports).unwrap();
    let mut oue_acc = vec![0u64; 100];
    kernels::fold_oue_with(backend, &mut oue_acc, 2, oue_bits);

    // The oracles' debias: (tally − n·q) / (p − q), element-wise.
    let mut grr_est = vec![0.0; 100];
    let n = grr_reports.len() as f64;
    kernels::affine_u64_with(
        backend,
        &mut grr_est,
        &grr_acc,
        n * grr.q(),
        1.0 / (grr.p() - grr.q()),
    );
    let mut oue_est = vec![0.0; 100];
    let n = oue_count as f64;
    kernels::affine_u64_with(
        backend,
        &mut oue_est,
        &oue_acc,
        n * oue.q(),
        1.0 / (oue.p() - oue.q()),
    );

    let mut cells = Vec::with_capacity(100);
    for row in 0..10 {
        for col in 0..10 {
            let i = row * 10 + col;
            let rect = domain.cell_rect(10, 10, col, row);
            cells.push((rect, grr_est[i] + oue_est[i]));
        }
    }
    let metadata = ReleaseMetadata::legacy("ldp-10x10-grr+oue", epsilon).local();
    let release = Release::from_parts_with_metadata(metadata, epsilon, domain, cells).unwrap();
    let mut json = Vec::new();
    release.write_json(&mut json).unwrap();
    json
}

#[test]
fn same_seed_releases_are_byte_identical_across_backends() {
    let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
    let schedule = BudgetSchedule::uniform(2.0, 2).unwrap();
    let mut collector =
        ReportCollector::new(CollectorConfig::new("taxi", domain, 10, 10, schedule).unwrap())
            .unwrap();
    let epsilon = collector.open_epsilon().unwrap();
    let (grr_reports, oue_count, oue_bits) = epoch_traffic(epsilon);

    collector
        .submit(&ReportBatch {
            keyspace: "taxi".into(),
            epoch: 0,
            epsilon,
            cells: 100,
            payload: ReportPayload::Grr(grr_reports.clone()),
        })
        .unwrap();
    collector
        .submit(&ReportBatch {
            keyspace: "taxi".into(),
            epoch: 0,
            epsilon,
            cells: 100,
            payload: ReportPayload::Oue {
                count: oue_count,
                bits: oue_bits.clone(),
            },
        })
        .unwrap();
    let sealed = collector.seal_open_epoch().unwrap();
    let mut published = Vec::new();
    sealed.release.write_json(&mut published).unwrap();

    // The collector ran whatever backend this process dispatched;
    // both pinned backends must reproduce its bytes exactly.
    let scalar = seal_with_backend(
        Backend::Scalar,
        domain,
        epsilon,
        &grr_reports,
        oue_count,
        &oue_bits,
    );
    assert_eq!(
        published, scalar,
        "scalar-sealed release differs from the published bytes"
    );
    if kernels::avx2_available() {
        let avx2 = seal_with_backend(
            Backend::Avx2,
            domain,
            epsilon,
            &grr_reports,
            oue_count,
            &oue_bits,
        );
        assert_eq!(
            published, avx2,
            "avx2-sealed release differs from the published bytes"
        );
    }
}

#[test]
fn aligned_release_merges_are_byte_identical_across_backends() {
    // merge_releases' aligned fast path runs the add_assign kernel;
    // the merged bytes must not depend on the backend. The dispatched
    // merge is compared against a scalar reference computed by hand in
    // the same order.
    let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
    let make = |seed: f64| {
        let cells: Vec<_> = (0..16)
            .map(|i| {
                let (col, row) = (i % 4, i / 4);
                let rect = domain.cell_rect(4, 4, col, row);
                (rect, seed * (i as f64 + 0.25) - 3.0)
            })
            .collect();
        Release::from_parts_with_metadata(ReleaseMetadata::legacy("m", 0.5), 0.5, domain, cells)
            .unwrap()
    };
    let (a, b, c) = (make(1.5), make(2.5), make(0.125));
    let merged = merge_releases("tier", &[&a, &b, &c]).unwrap();
    for (i, (_, v)) in merged.cells().iter().enumerate() {
        let want = a.cells()[i].1 + b.cells()[i].1 + c.cells()[i].1;
        assert_eq!(v.to_bits(), want.to_bits(), "cell {i}");
    }
}
