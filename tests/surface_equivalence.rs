//! Cross-method equivalence of the compiled query surface.
//!
//! A `Release` answers through a compiled index (lattice or row-band);
//! those answers must match the naive linear scan over the released
//! cells — the semantics the index replaces — to within 1e-9, for every
//! producing method, over a mixed workload of domain-spanning, sliver,
//! cell-aligned and miss queries.

use dpgrid::baselines::{HierarchicalGrid, HierarchyConfig, KdConfig, KdHybrid, KdStandard};
use dpgrid::core::{Release, SurfaceKind};
use dpgrid::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn dataset(seed: u64) -> GeoDataset {
    PaperDataset::Storage.generate_n(seed, 4_000).unwrap()
}

/// Mixed workload over `domain`: spanning, slivers, cell-aligned (for a
/// grid of size `m`), interior boxes and misses.
fn query_mix(domain: &Rect, m: usize) -> Vec<Rect> {
    let (x0, y0) = (domain.x0(), domain.y0());
    let (w, h) = (domain.width(), domain.height());
    let mut queries = vec![
        // Domain-spanning (clipped and unclipped).
        *domain,
        Rect::new(x0 - w, y0 - h, x0 + 2.0 * w, y0 + 2.0 * h).unwrap(),
        // Slivers: thin vertical and horizontal strips.
        Rect::new(x0 + 0.37 * w, y0, x0 + 0.3701 * w, y0 + h).unwrap(),
        Rect::new(x0, y0 + 0.61 * h, x0 + w, y0 + 0.6101 * h).unwrap(),
        // Interior boxes at various scales.
        Rect::new(x0 + 0.1 * w, y0 + 0.1 * h, x0 + 0.9 * w, y0 + 0.4 * h).unwrap(),
        Rect::new(x0 + 0.42 * w, y0 + 0.42 * h, x0 + 0.58 * w, y0 + 0.58 * h).unwrap(),
        Rect::new(
            x0 + 0.013 * w,
            y0 + 0.77 * h,
            x0 + 0.031 * w,
            y0 + 0.792 * h,
        )
        .unwrap(),
        // Misses.
        Rect::new(x0 + 2.0 * w, y0, x0 + 3.0 * w, y0 + h).unwrap(),
        Rect::new(x0 - w, y0 - h, x0 - 0.5 * w, y0 - 0.5 * h).unwrap(),
    ];
    // Cell-aligned queries for an m × m grid over the domain.
    if m > 1 {
        queries.push(domain.grid_cell(m, m, m / 3, m / 2));
        let c0 = domain.grid_cell(m, m, 1, 1);
        let c1 = domain.grid_cell(m, m, m - 2, m - 2);
        queries.push(Rect::new(c0.x0(), c0.y0(), c1.x1(), c1.y1()).unwrap());
    }
    queries
}

/// The compiled answer must match the linear scan to 1e-9 (relative to
/// the answer's magnitude for large counts).
fn assert_equivalent(release: &Release, queries: &[Rect]) {
    for q in queries {
        let scan = release.answer_linear_scan(q);
        let compiled = release.answer(q);
        assert!(
            (compiled - scan).abs() <= 1e-9 * (1.0 + scan.abs()),
            "method {} query {q:?}: compiled {compiled} vs scan {scan}",
            release.method()
        );
    }
    // The batched path must agree with the per-query path bit-for-bit.
    let batch = release.answer_all(queries);
    let sequential: Vec<f64> = queries.iter().map(|q| release.answer(q)).collect();
    assert_eq!(batch, sequential);
}

#[test]
fn uniform_grid_equivalence() {
    for seed in [1u64, 2, 3] {
        let ds = dataset(seed);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 24), &mut rng(seed)).unwrap();
        let release = Release::from_synopsis("UG", &ug);
        assert!(matches!(
            release.surface().kind(),
            SurfaceKind::Lattice { cols: 24, rows: 24 }
        ));
        assert_equivalent(&release, &query_mix(ds.domain().rect(), 24));
    }
}

#[test]
fn adaptive_grid_equivalence() {
    for seed in [1u64, 2, 3] {
        let ds = dataset(seed);
        let ag = AdaptiveGrid::build(&ds, &AgConfig::guideline(0.5), &mut rng(seed ^ 0xA)).unwrap();
        let release = Release::from_synopsis("AG", &ag);
        assert_equivalent(&release, &query_mix(ds.domain().rect(), ag.m1()));
    }
}

#[test]
fn hierarchy_equivalence() {
    for seed in [1u64, 2, 3] {
        let ds = dataset(seed);
        let h = HierarchicalGrid::build(&ds, &HierarchyConfig::new(1.0, 32, 2, 3), &mut rng(seed))
            .unwrap();
        let release = Release::from_synopsis("H2,3", &h);
        // Hierarchy leaves are a uniform grid: must take the fast path.
        assert!(matches!(
            release.surface().kind(),
            SurfaceKind::Lattice { .. }
        ));
        assert_equivalent(&release, &query_mix(ds.domain().rect(), 32));
    }
}

#[test]
fn kd_tree_equivalence() {
    for seed in [1u64, 2, 3] {
        let ds = dataset(seed);
        let mut cfg = KdConfig::new(1.0);
        cfg.base_resolution = 64;
        cfg.height = Some(8);
        for (name, release) in [
            (
                "Kst",
                Release::from_synopsis(
                    "Kst",
                    &KdStandard::build(&ds, &cfg, &mut rng(seed ^ 0xB)).unwrap(),
                ),
            ),
            (
                "Khy",
                Release::from_synopsis(
                    "Khy",
                    &KdHybrid::build(&ds, &cfg, &mut rng(seed ^ 0xC)).unwrap(),
                ),
            ),
        ] {
            let _ = name;
            assert_equivalent(&release, &query_mix(ds.domain().rect(), 64));
        }
    }
}

/// Wide queries over band-path releases: the y-skip-list absorbs whole
/// fully-covered band runs through aggregated tree nodes, and must do
/// so without drifting from the linear-scan semantics.
#[test]
fn band_skip_list_wide_query_equivalence() {
    for seed in [1u64, 2, 3] {
        let ds = dataset(seed);
        let mut cfg = KdConfig::new(1.0);
        cfg.base_resolution = 64;
        cfg.height = Some(8);
        let kd = KdStandard::build(&ds, &cfg, &mut rng(seed ^ 0xD)).unwrap();
        let release = Release::from_synopsis("Kst", &kd);
        // KD leaves are irregular: the surface must be on the band path
        // for this test to exercise the skip list at all.
        assert!(matches!(
            release.surface().kind(),
            SurfaceKind::Bands { .. }
        ));
        let domain = ds.domain().rect();
        let (x0, y0) = (domain.x0(), domain.y0());
        let (w, h) = (domain.width(), domain.height());
        let wide = vec![
            // Full domain and beyond (absorbs at or near the root).
            *domain,
            Rect::new(x0 - w, y0 - h, x0 + 2.0 * w, y0 + 2.0 * h).unwrap(),
            // Full-x strips: interior bands fully covered, rim partial.
            Rect::new(x0 - 1.0, y0 + 0.05 * h, x0 + w + 1.0, y0 + 0.95 * h).unwrap(),
            Rect::new(x0 - 1.0, y0 + 0.3 * h, x0 + w + 1.0, y0 + 0.7 * h).unwrap(),
            // Full-y strips: every band partially covered in x.
            Rect::new(x0 + 0.1 * w, y0 - 1.0, x0 + 0.9 * w, y0 + h + 1.0).unwrap(),
            // Large interior boxes (mixed absorb + stab).
            Rect::new(x0 + 0.05 * w, y0 + 0.05 * h, x0 + 0.95 * w, y0 + 0.95 * h).unwrap(),
            Rect::new(x0 + 0.2 * w, y0 + 0.1 * h, x0 + 0.8 * w, y0 + 0.9 * h).unwrap(),
        ];
        assert_equivalent(&release, &wide);
    }
}

#[test]
fn untrusted_irregular_release_equivalence() {
    // A hand-built irregular partition (no common lattice): vertical
    // strips of unequal widths, each split at its own heights — the
    // shape that forces the band index.
    let domain = Domain::from_corners(0.0, 0.0, 12.0, 10.0).unwrap();
    let splits = [0.0, 1.7, 2.9, 5.3, 8.0, 12.0];
    let mut cells = Vec::new();
    for (i, pair) in splits.windows(2).enumerate() {
        let k = 1 + (i * 7) % 5;
        for j in 0..k {
            let y0 = 10.0 * j as f64 / k as f64;
            let y1 = 10.0 * (j + 1) as f64 / k as f64;
            cells.push((
                Rect::new(pair[0], y0, pair[1], y1).unwrap(),
                (i * 31 + j * 17) as f64 % 23.0 - 8.0,
            ));
        }
    }
    let release = Release::from_parts("irregular", 1.0, domain, cells).unwrap();
    assert_equivalent(&release, &query_mix(domain.rect(), 6));
}

#[test]
fn equivalence_survives_serialization() {
    // Compile, serialise, reload: the recompiled surface must agree
    // with the scan on the reloaded cells too.
    let ds = dataset(9);
    let ag = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(10)).unwrap();
    let release = Release::from_synopsis("AG", &ag);
    let mut buf = Vec::new();
    release.write_json(&mut buf).unwrap();
    let reloaded = Release::read_json(&buf[..]).unwrap();
    let queries = query_mix(ds.domain().rect(), ag.m1());
    assert_equivalent(&reloaded, &queries);
    for q in &queries {
        assert_eq!(release.answer(q), reloaded.answer(q));
    }
}
