//! Sharded serving throughput — the acceptance benchmark of the
//! `serve::shard` tier.
//!
//! Builds eight UG releases over the 100k-point landmark dataset and
//! measures mixed-key batched answering under four configurations:
//!
//! * `direct` — one `QueryEngine` holding all releases (the unsharded
//!   baseline);
//! * `router_local_s1` — a `ShardRouter` over one `LocalShard`
//!   (isolates pure routing overhead: hashing, scatter bookkeeping);
//! * `router_local_sN` — a router over N local shards, releases
//!   placed by the same rendezvous hash (the in-process scaling axis);
//! * `router_tcp_s2` — a router over two `RemoteShard`s behind real
//!   loopback `TcpServer`s, pinned to JSON protocol v1 (routed-over-
//!   TCP vs direct: the price of the wire on the scatter path);
//! * `router_tcp_s2_binary` — the same two remote shards on default
//!   connections, which negotiate binary v2 and pipeline each
//!   sub-batch as id-correlated frames in one burst (the codec's
//!   contribution to closing that gap).
//!
//! Medians are recorded to `BENCH_shard_throughput.json` at the
//! workspace root. Honest-parallelism note: on a 1-hardware-thread
//! container every configuration is ultimately serialised by the CPU,
//! so local shard counts cannot show speedups — the `parallelism`
//! field records what the measuring machine had, and the local-shard
//! rows are expected flat (or slightly below `direct`, the routing
//! overhead) unless it is > 1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{rendezvous_route, Release, UgConfig, UniformGrid};
use dpgrid_geo::Rect;
use dpgrid_net::{RemoteShard, TcpClientPool, TcpServer};
use dpgrid_serve::shard::{LocalShard, ShardRouter};
use dpgrid_serve::{Catalog, QueryEngine, QueryRequest, QueryService};
use rand::Rng;

const N: usize = 100_000;
const EPS: f64 = 1.0;
const RELEASES: usize = 8;
/// Rectangles per request.
const RECTS_PER_REQUEST: usize = 256;
/// Requests per measured batch (mixed over all release keys).
const REQUESTS_PER_BATCH: usize = 16;

fn releases() -> Vec<(String, Release)> {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    (0..RELEASES)
        .map(|i| {
            let m = 64 + 64 * (i % 4);
            let ug = UniformGrid::build(&dataset, &UgConfig::fixed(EPS, m), &mut rng).unwrap();
            (
                format!("release-{i}"),
                Release::from_synopsis(format!("UG m={m}"), &ug),
            )
        })
        .collect()
}

/// A mixed query load over the landmark domain `[-130, -70] × [10, 50]`.
fn request_rects() -> Vec<Rect> {
    let mut rng = bench_rng();
    (0..RECTS_PER_REQUEST)
        .map(|i| {
            if i % 16 == 0 {
                Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap()
            } else {
                let x = rng.random_range(-130.0..-75.0);
                let y = rng.random_range(10.0..46.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.5..5.0),
                    y + rng.random_range(0.5..4.0),
                )
                .unwrap()
            }
        })
        .collect()
}

fn batch(keys: &[String], rects: &[Rect]) -> Vec<QueryRequest> {
    (0..REQUESTS_PER_BATCH)
        .map(|i| QueryRequest::new(keys[i % keys.len()].clone(), rects.to_vec()))
        .collect()
}

/// Shard engines by rendezvous over `names`, matching the router's
/// placement, and return one engine per name.
fn sharded_engines(names: &[String]) -> Vec<Arc<QueryEngine>> {
    let engines: Vec<Arc<QueryEngine>> = names
        .iter()
        .map(|_| Arc::new(QueryEngine::new(Catalog::new())))
        .collect();
    for (key, release) in releases() {
        let owner = rendezvous_route(names, &key).unwrap();
        engines[owner].insert(key, release);
    }
    engines
}

/// One measured pass: answer the whole mixed batch once; every
/// response is asserted answered. Returns elapsed nanoseconds.
fn pass_ns<S: QueryService + ?Sized>(service: &S, requests: &[QueryRequest]) -> f64 {
    let t = Instant::now();
    for result in service.answer_batch(requests) {
        let response = result.expect("answered");
        assert_eq!(response.answers.len(), RECTS_PER_REQUEST);
    }
    t.elapsed().as_nanos() as f64
}

fn measure_ns<S: QueryService + ?Sized>(service: &S, requests: &[QueryRequest]) -> f64 {
    // Warm every surface first so all rows measure steady state.
    pass_ns(service, requests);
    let mut samples = Vec::new();
    let budget = std::time::Duration::from_millis(1_500);
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        samples.push(pass_ns(service, requests));
        if samples.len() >= 40 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    label: String,
    shards: usize,
    transport: &'static str,
    qps: f64,
    elapsed_ms: f64,
}

fn bench_shard_throughput(c: &mut Criterion) {
    let parallelism = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let rects = request_rects();
    let keys: Vec<String> = (0..RELEASES).map(|i| format!("release-{i}")).collect();
    let requests = batch(&keys, &rects);
    let rects_per_batch = (REQUESTS_PER_BATCH * RECTS_PER_REQUEST) as f64;
    let mut rows: Vec<Row> = Vec::new();
    let mut group = c.benchmark_group("shard_throughput");

    // Baseline: one engine holding everything.
    let direct = {
        let mut catalog = Catalog::new();
        for (key, release) in releases() {
            catalog.insert(key, release);
        }
        QueryEngine::new(catalog)
    };
    let ns = measure_ns(&direct, &requests);
    group.bench_function("direct", |b| b.iter(|| pass_ns(&direct, &requests)));
    rows.push(Row {
        label: "direct".into(),
        shards: 1,
        transport: "in_process",
        qps: rects_per_batch / (ns / 1e9),
        elapsed_ms: ns / 1e6,
    });

    // Routed over 1 and N local shards.
    let local_counts = if parallelism > 2 {
        vec![1usize, parallelism.min(RELEASES)]
    } else {
        vec![1usize, 2]
    };
    for shards in local_counts {
        let names: Vec<String> = (0..shards).map(|i| format!("s{i}")).collect();
        let engines = sharded_engines(&names);
        let router = ShardRouter::with_shards(
            names
                .iter()
                .zip(&engines)
                .map(|(name, engine)| (name.clone(), LocalShard::new(Arc::clone(engine)))),
        )
        .unwrap();
        let label = format!("router_local_s{shards}");
        let ns = measure_ns(&router, &requests);
        group.bench_function(&label, |b| b.iter(|| pass_ns(&router, &requests)));
        rows.push(Row {
            label,
            shards,
            transport: "in_process",
            qps: rects_per_batch / (ns / 1e9),
            elapsed_ms: ns / 1e6,
        });
    }

    // Routed over TCP: two remote shards behind loopback servers, once
    // pinned to JSON v1 (the historical row) and once on default
    // connections that negotiate binary v2 and pipeline each
    // sub-batch. The transport string records what was negotiated.
    {
        let names = vec!["s0".to_string(), "s1".to_string()];
        let engines = sharded_engines(&names);
        let servers: Vec<TcpServer> = engines
            .iter()
            .map(|engine| TcpServer::bind(Arc::clone(engine), "127.0.0.1:0").unwrap())
            .collect();
        for (label, max_protocol) in [("router_tcp_s2", 1u32), ("router_tcp_s2_binary", 2)] {
            let router = ShardRouter::new();
            for (name, server) in names.iter().zip(&servers) {
                let pool = TcpClientPool::connect(server.local_addr())
                    .unwrap()
                    .with_max_protocol(max_protocol);
                let shard = RemoteShard::with_pool(pool);
                let negotiated = shard
                    .pool()
                    .with_client(|c| {
                        c.ping()?;
                        Ok(c.protocol_version().unwrap_or(1))
                    })
                    .unwrap();
                assert_eq!(negotiated, max_protocol, "{label}: unexpected negotiation");
                router.add_shard(name.clone(), shard).unwrap();
            }
            let transport = if max_protocol >= 2 {
                "tcp_loopback_v2_binary_pipelined"
            } else {
                "tcp_loopback_v1_json"
            };
            let ns = measure_ns(&router, &requests);
            group.bench_function(label, |b| b.iter(|| pass_ns(&router, &requests)));
            rows.push(Row {
                label: label.into(),
                shards: 2,
                transport,
                qps: rects_per_batch / (ns / 1e9),
                elapsed_ms: ns / 1e6,
            });
        }
        for server in servers {
            server.shutdown();
        }
    }
    group.finish();

    let direct_qps = rows.first().map(|r| r.qps).unwrap_or(f64::NAN);
    for r in &rows {
        println!(
            "shard_throughput/{}: {} shards ({}), {:.1} ms/batch, {:.0} q/s ({:.2}x vs direct)",
            r.label,
            r.shards,
            r.transport,
            r.elapsed_ms,
            r.qps,
            r.qps / direct_qps
        );
    }
    write_json(&rows, parallelism, direct_qps);
}

/// Records the measurements to `BENCH_shard_throughput.json` at the
/// workspace root (perf-trajectory files live in-repo).
fn write_json(rows: &[Row], parallelism: usize, direct_qps: f64) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_shard_throughput.json"
    );
    let mut out = format!(
        "{{\n  \"bench\": \"shard_throughput\",\n  \"unit\": \"queries_per_sec\",\n  \
         \"releases\": {RELEASES},\n  \"requests_per_batch\": {REQUESTS_PER_BATCH},\n  \
         \"rects_per_request\": {RECTS_PER_REQUEST},\n  \"parallelism\": {parallelism},\n  \
         \"note\": \"local shard counts can only show speedups when parallelism > 1; \
         router_tcp vs direct is the price of the wire on the scatter path\",\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"shards\": {}, \"transport\": \"{}\", \
             \"elapsed_ms\": {:.2}, \"qps\": {:.0}, \"speedup_vs_direct\": {:.2}}}{}\n",
            r.label,
            r.shards,
            r.transport,
            r.elapsed_ms,
            r.qps,
            r.qps / direct_qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("shard_throughput: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_shard_throughput);
criterion_main!(benches);
