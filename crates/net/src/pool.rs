//! A small reconnecting pool of [`TcpClient`] connections to one
//! server.
//!
//! [`TcpClient`] is deliberately not `Sync` (one in-flight frame per
//! connection), but a sharded router fans sub-batches out from many
//! threads at once. [`TcpClientPool`] bridges the two: callers borrow
//! a connection for one call ([`TcpClientPool::with_client`]), idle
//! connections are parked for reuse up to a cap, and a connection
//! that surfaces a transport error is simply dropped — the next
//! checkout dials a fresh one, on top of each client's own one-shot
//! reconnect. No health-check thread, no handshake state: the pool's
//! only invariant is "parked connections answered their last call".

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use dpgrid_serve::wire::binary;

use crate::client::{TcpClient, DEFAULT_IO_TIMEOUT};
use crate::error::{NetError, Result};

/// Default cap on parked idle connections per pool.
pub const DEFAULT_MAX_IDLE: usize = 4;

/// A checkout/checkin pool of blocking connections to one address.
#[derive(Debug)]
pub struct TcpClientPool {
    addr: SocketAddr,
    idle: Mutex<Vec<TcpClient>>,
    max_idle: usize,
    io_timeout: Option<Duration>,
    max_protocol: u32,
}

impl TcpClientPool {
    /// Creates a pool dialing `addr`, verifying reachability with one
    /// pinged connection (parked for reuse). When `addr` resolves to
    /// several addresses the first that connects wins. Every pooled
    /// connection offers the binary codec on dial (negotiating down
    /// to JSON v1 against old servers); cap it with
    /// [`TcpClientPool::with_max_protocol`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let mut client = TcpClient::connect(addr)?;
        client.ping()?;
        let pool = TcpClientPool {
            addr: client.peer_addr(),
            idle: Mutex::new(Vec::new()),
            max_idle: DEFAULT_MAX_IDLE,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            max_protocol: binary::PROTOCOL_VERSION,
        };
        pool.check_in(client);
        Ok(pool)
    }

    /// Caps the protocol version pooled connections offer on dial —
    /// `with_max_protocol(1)` pins pure JSON v1 connections (no
    /// `Hello` sent at all). Parked connections are dropped so every
    /// future checkout negotiates under the new cap.
    #[must_use]
    pub fn with_max_protocol(mut self, max_protocol: u32) -> Self {
        self.max_protocol = max_protocol.max(1);
        self.lock().clear();
        self
    }

    /// Caps the number of parked idle connections (≥ 1). Excess
    /// connections returned at checkin are closed instead of parked;
    /// checkout never blocks on the cap — it dials a new connection
    /// whenever the pool is empty.
    #[must_use]
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle.max(1);
        self
    }

    /// Bounds each pooled connection's blocking reads/writes (`None`
    /// waits forever) — the pool-level handle on
    /// [`TcpClient::with_io_timeout`], reachable from `RemoteShard`
    /// via `RemoteShard::with_pool`. Raise it when a backend's slowest
    /// legitimate response (a cold compile of a huge surface behind a
    /// big scattered batch) exceeds the 30 s default. Parked
    /// connections are dropped so every future checkout carries the
    /// new bound.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self.lock().clear();
        self
    }

    /// The concrete address this pool dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connections currently parked.
    pub fn idle_connections(&self) -> usize {
        self.lock().len()
    }

    /// Runs `f` with a pooled connection: checks one out (dialing if
    /// none is parked), and returns it to the pool only when `f`
    /// succeeds — a connection that surfaced an error is dropped, so
    /// the pool never parks a stream in an unknown state.
    pub fn with_client<T>(&self, f: impl FnOnce(&mut TcpClient) -> Result<T>) -> Result<T> {
        let mut client = match self.lock().pop() {
            Some(client) => client,
            None => TcpClient::connect_with_protocol(self.addr, self.max_protocol)?
                .with_io_timeout(self.io_timeout)?,
        };
        match f(&mut client) {
            Ok(value) => {
                self.check_in(client);
                Ok(value)
            }
            Err(e) => {
                // Typed server errors leave the connection healthy —
                // the framing completed — so keep it; everything else
                // drops the connection with the error.
                if matches!(e, NetError::Server(_)) {
                    self.check_in(client);
                }
                Err(e)
            }
        }
    }

    fn check_in(&self, client: TcpClient) {
        let mut idle = self.lock();
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TcpClient>> {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
