//! Private heatmap: publish a density map of sensitive check-in data.
//!
//! Motivating scenario from the paper's introduction: a location-based
//! service wants to share where its users congregate — without exposing
//! any individual check-in. This example releases an adaptive-grid
//! synopsis and renders the *released* density next to the true one so
//! you can eyeball what survives the noise.
//!
//! ```sh
//! cargo run --release --example private_heatmap
//! ```

use dpgrid::core::synthetic;
use dpgrid::core::CompiledSurface;
use dpgrid::prelude::*;
use rand::SeedableRng;

const RAMP: &[u8] = b" .:-=+*#%@";

/// Log-scaled ASCII rendering of a cell decomposition rasterised onto a
/// character grid.
///
/// The cells are compiled into a query surface once, and the whole
/// raster is answered as a single `answer_all` batch — exactly the
/// serving path a tile server would use, instead of the O(cells ×
/// pixels) paint loop this example shipped with originally.
fn render(cells: &[(Rect, f64)], domain: &Domain, cols: usize, rows: usize) -> String {
    let surface = CompiledSurface::compile(*domain, cells);
    let d = domain.rect();
    let tiles: Vec<Rect> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| d.grid_cell(cols, rows, c, r)))
        .collect();
    let estimates = surface.answer_all(&tiles);
    let raster: Vec<f64> = estimates
        .iter()
        .zip(&tiles)
        .map(|(est, tile)| (est / tile.area()).max(0.0))
        .collect();
    let max = raster.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    for r in (0..rows).rev() {
        for c in 0..cols {
            let t = (1.0 + raster[r * cols + c]).ln() / (1.0 + max).ln();
            let i = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[i] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let dataset = PaperDataset::Checkin
        .generate_n(11, 200_000)
        .expect("generate dataset");

    // True density (never leaves the data owner).
    let true_grid = DenseGrid::count(&dataset, 72, 30).expect("count");
    let true_cells: Vec<(Rect, f64)> = true_grid
        .iter_cells()
        .map(|(_, _, rect, v)| (rect, v))
        .collect();

    // Released density: ε = 0.5 adaptive grid, published through the
    // pipeline (seeded so the rendered heatmap is reproducible).
    let release = Pipeline::new(&dataset)
        .epsilon(0.5)
        .method(Method::ag_suggested())
        .seed(3)
        .publish()
        .expect("publish AG");

    println!("true density ({} check-ins):", dataset.len());
    println!("{}", render(&true_cells, dataset.domain(), 72, 24));
    println!("released density (ε = 0.5, {}):", release.method());
    println!("{}", render(&release.cells(), dataset.domain(), 72, 24));

    // Bonus: the release supports DP synthetic data for downstream
    // tooling that wants points, not grids.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let synth = synthetic::synthesize(&release, 10_000, &mut rng).expect("synthesize");
    println!(
        "generated {} synthetic points from the release (privacy-free post-processing)",
        synth.len()
    );
}
