//! Differential tests: every kernel's AVX2 implementation must be
//! bit-exact against the scalar reference across hostile shapes —
//! word-count remainders, tail-bit domains (`cells % 64 ≠ 0`), empty
//! batches, single-report batches, and accumulators pre-filled near
//! capacity. On machines without AVX2 the comparisons degenerate to
//! scalar-vs-scalar (still exercising shape handling); CI's
//! x86_64 runners take the real branch.

use dpgrid_kernels::{
    add_assign_with, affine_u64_with, avx2_available, fold_grr_checked_with, fold_oue_with, Backend,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The backend pair under test: AVX2 when the machine has it.
fn backends() -> (Backend, Backend) {
    (
        Backend::Scalar,
        if avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        },
    )
}

/// A packed OUE batch over `cells` with every report's tail bits
/// clear, plus a deliberately over-dense bit pattern so the CSA
/// planes see carries at every level.
fn oue_batch(rng: &mut StdRng, cells: usize, reports: usize) -> (usize, Vec<u64>) {
    let words = cells.div_ceil(64);
    let tail = words * 64 - cells;
    let mut bits = Vec::with_capacity(reports * words);
    for _ in 0..reports {
        for w in 0..words {
            let mut word: u64 = match rng.random_range(0..3u8) {
                0 => rng.random(),
                1 => u64::MAX,
                _ => 1u64 << rng.random_range(0..64u32),
            };
            if w == words - 1 && tail > 0 {
                word &= u64::MAX >> tail;
            }
            bits.push(word);
        }
    }
    (words, bits)
}

proptest! {
    /// OUE positional popcount: scalar and dispatched backends agree
    /// bit-for-bit on every domain width and batch size, including
    /// pre-filled accumulators near `u64` capacity.
    #[test]
    fn fold_oue_backends_agree(
        seed in 0u64..1_000_000,
        cells in 1usize..600,
        reports in 0usize..70,
        prefill in 0u64..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (words, bits) = oue_batch(&mut rng, cells, reports);
        // Max-capacity accumulator: each cell can absorb at most
        // `reports` more increments without wrapping.
        let base = if prefill == 1 { u64::MAX - reports as u64 } else { 0 };
        let (scalar, simd) = backends();
        let mut a = vec![base; cells];
        fold_oue_with(scalar, &mut a, words, &bits);
        let mut b = vec![base; cells];
        fold_oue_with(simd, &mut b, words, &bits);
        prop_assert_eq!(a, b);
    }

    /// The wide-domain regimes the `cells` range above cannot reach:
    /// 1024 and 4096 cells (the bench shapes) and the word counts
    /// around the AVX2 grouped path's column remainder.
    #[test]
    fn fold_oue_backends_agree_on_wide_domains(
        seed in 0u64..1_000_000,
        words_sel in 0usize..6,
        tail_bits in 0usize..64,
        reports in 0usize..40,
    ) {
        let words = [4usize, 5, 7, 8, 16, 64][words_sel];
        let cells = words * 64 - tail_bits.min(63);
        let mut rng = StdRng::seed_from_u64(seed);
        let (words, bits) = oue_batch(&mut rng, cells, reports);
        let (scalar, simd) = backends();
        let mut a = vec![0u64; cells];
        fold_oue_with(scalar, &mut a, words, &bits);
        let mut b = vec![0u64; cells];
        fold_oue_with(simd, &mut b, words, &bits);
        prop_assert_eq!(a, b);
    }

    /// GRR fused validate+fold: identical tallies, identical
    /// first-offender errors, and an untouched accumulator on
    /// rejection — on both backends.
    #[test]
    fn fold_grr_backends_agree(
        seed in 0u64..1_000_000,
        cells in 1u32..5_000,
        reports in 0usize..600,
        hostile in 0u64..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<u32> = (0..reports)
            .map(|_| {
                // Hostile batches sprinkle out-of-domain values.
                let bound = if hostile == 1 { cells.saturating_mul(2) } else { cells };
                rng.random_range(0..bound.max(1))
            })
            .collect();
        let (scalar, simd) = backends();
        let mut a = vec![0u64; cells as usize];
        let ra = fold_grr_checked_with(scalar, &mut a, cells, &reports);
        let mut b = vec![0u64; cells as usize];
        let rb = fold_grr_checked_with(simd, &mut b, cells, &reports);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(&a, &b);
        if ra.is_err() {
            prop_assert!(a.iter().all(|&v| v == 0), "rejected batch must not fold");
        }
    }

    /// Affine debias: byte-identical f64 outputs, including tallies at
    /// and past 2^52 where the AVX2 conversion trick must fall back.
    #[test]
    fn affine_backends_agree(
        seed in 0u64..1_000_000,
        n in 0usize..200,
        sub in -1e9f64..1e9,
        scale in -1e3f64..1e3,
        huge in 0u64..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let acc: Vec<u64> = (0..n)
            .map(|_| {
                if huge == 1 && rng.random_range(0..4u8) == 0 {
                    rng.random::<u64>() | (1 << 52)
                } else {
                    rng.random::<u64>() >> rng.random_range(12..60u32)
                }
            })
            .collect();
        let (scalar, simd) = backends();
        let mut a = vec![0.0; n];
        affine_u64_with(scalar, &mut a, &acc, sub, scale);
        let mut b = vec![0.0; n];
        affine_u64_with(simd, &mut b, &acc, sub, scale);
        let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Elementwise f64 add: byte-identical sums across vector-width
    /// remainders.
    #[test]
    fn add_assign_backends_agree(
        seed in 0u64..1_000_000,
        n in 0usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src: Vec<f64> = (0..n).map(|_| rng.random_range(-1e12f64..1e12)).collect();
        let dst: Vec<f64> = (0..n).map(|_| rng.random_range(-1e-12f64..1e-12)).collect();
        let (scalar, simd) = backends();
        let mut a = dst.clone();
        add_assign_with(scalar, &mut a, &src);
        let mut b = dst;
        add_assign_with(simd, &mut b, &src);
        let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }
}

/// The fixed hostile shapes worth pinning outside randomized sweeps:
/// empty batch, single report, single-cell domain, one-past-a-word
/// domains, and the exact bench widths.
#[test]
fn fold_oue_backends_agree_on_edge_shapes() {
    let (scalar, simd) = backends();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for cells in [1usize, 63, 64, 65, 127, 128, 129, 1024, 4096] {
        for reports in [0usize, 1, 15, 16, 17] {
            let (words, bits) = oue_batch(&mut rng, cells, reports);
            let mut a = vec![0u64; cells];
            fold_oue_with(scalar, &mut a, words, &bits);
            let mut b = vec![0u64; cells];
            fold_oue_with(simd, &mut b, words, &bits);
            assert_eq!(a, b, "cells = {cells}, reports = {reports}");
        }
    }
}
