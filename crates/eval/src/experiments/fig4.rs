//! Figure 4 — AG parameter sensitivity.
//!
//! Paper panels (checkin and landmark, ε ∈ {0.1, 1}):
//!
//! * column 1: the best AG variants vs UG and Privelet across query
//!   sizes;
//! * column 2: sweeping the first-level size `m₁`;
//! * columns 3–4: sweeping `α ∈ {0.25, 0.5, 0.75}` × `c₂ ∈ {5, 10, 15}`
//!   at a fixed `m₁`.
//!
//! Shape criteria: AG beats UG/Privelet across sizes; performance is
//! flat for `α ∈ [0.25, 0.5]` and degrades at 0.75; `c₂ = 5` beats 10
//! and 15; the `m₁` curve is shallow around the suggested value.

use dpgrid_core::guidelines;
use dpgrid_geo::generators::PaperDataset;

use super::{size_ladder, DataBundle, ExpContext};
use crate::method::Method;
use crate::report::{by_size_table, profile_table};
use crate::Result;

/// Runs the experiment; writes per-panel CSVs and returns the markdown.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("fig4");
    let mut md = String::from("## Figure 4 — AG parameter sensitivity\n\n");
    for which in [PaperDataset::Checkin, PaperDataset::Landmark] {
        let bundle = DataBundle::prepare(which, ctx)?;
        let n = bundle.dataset.len();
        for &eps in &ctx.epsilons {
            let ug_suggested = guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
            let m1_suggested = guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C);

            // Column 1: AG (suggested and neighbours) vs UG vs Privelet,
            // by query size.
            let methods = vec![
                Method::ug(ug_suggested),
                Method::privelet(ug_suggested),
                Method::ag((m1_suggested / 2).max(2)),
                Method::ag(m1_suggested),
                Method::ag(m1_suggested * 2),
            ];
            let stem = format!("{}_eps{eps}_vs", which.name());
            let evals = bundle.run_panel(&dir, &stem, &methods, eps, ctx)?;
            let title = format!("fig4: {} ε={eps} — AG vs UG/Privelet", which.name());
            md.push_str(&by_size_table(&title, &evals).to_markdown());

            // Column 2: m₁ sweep.
            let m1_methods: Vec<Method> = size_ladder(m1_suggested)
                .into_iter()
                .map(Method::ag)
                .collect();
            let stem = format!("{}_eps{eps}_m1", which.name());
            let evals = bundle.run_panel(&dir, &stem, &m1_methods, eps, ctx)?;
            let title = format!(
                "fig4: {} ε={eps} — m1 sweep (suggested {m1_suggested})",
                which.name()
            );
            md.push_str(&profile_table(&title, &evals).to_markdown());

            // Columns 3-4: α × c₂ grid at the suggested m₁.
            let mut grid_methods = Vec::new();
            for alpha in [0.25, 0.5, 0.75] {
                for c2 in [5.0, 10.0, 15.0] {
                    grid_methods.push(Method::ag_with(m1_suggested, alpha, c2));
                }
            }
            let stem = format!("{}_eps{eps}_alpha_c2", which.name());
            let evals = bundle.run_panel(&dir, &stem, &grid_methods, eps, ctx)?;
            let title = format!("fig4: {} ε={eps} — α × c₂ grid", which.name());
            md.push_str(&profile_table(&title, &evals).to_markdown());
        }
    }
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_fig4_test"));
        ctx.scale = 1024;
        ctx.queries_per_size = 5;
        let md = run(&ctx).unwrap();
        assert!(md.contains("α × c₂"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
