//! The paper's parameter-selection guidelines.
//!
//! The key insight of the paper (§II-B, §IV-A) is that partition-based
//! synopses trade off two error sources as the grid gets finer:
//!
//! * **noise error** grows — a query of area-ratio `r` over an `m × m`
//!   grid touches `≈ r·m²` cells, so summed Laplace noise has standard
//!   deviation `√(2·r)·m / ε`;
//! * **non-uniformity error** shrinks — the query border crosses `≈ √r·m`
//!   cells holding `≈ √r·N/m` points, giving error `≈ √r·N/(c₀·m)`.
//!
//! Minimising the sum over `m` yields **Guideline 1**; applying the same
//! analysis inside one first-level cell (with constrained inference
//! halving the effective cell count on the border) yields **Guideline 2**.

use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// The paper's default constant `c` of Guideline 1 ("setting `c = 10`
/// works well for datasets of different sizes and different choices of
/// ε").
pub const DEFAULT_C: f64 = 10.0;

/// The paper's default constant of Guideline 2: `c₂ = c / 2 = 5`.
pub const DEFAULT_C2: f64 = DEFAULT_C / 2.0;

/// The paper's default budget split for AG: `α = 0.5` (any value in
/// `[0.2, 0.6]` performs similarly per §V-C).
pub const DEFAULT_ALPHA: f64 = 0.5;

/// **Guideline 1**: grid size for UG, `m = √(N·ε / c)` rounded to the
/// nearest integer and clamped to at least 1.
///
/// Reproduces the paper's suggested sizes of Table II: e.g.
/// `guideline1(1.6e6 as usize, 1.0, 10.0) == 400` for the road dataset.
pub fn guideline1(n: usize, epsilon: f64, c: f64) -> usize {
    let m = (n as f64 * epsilon / c).max(0.0).sqrt();
    (m.round() as usize).max(1)
}

/// First-level grid size for AG (§IV-B):
/// `m₁ = max(10, ¼·√(N·ε / c))`, rounded.
///
/// Reproduces the paper's suggested `m₁` values: 100 (road, ε=1),
/// 25 (checkin, ε=0.1), 79 (checkin, ε=1), 10 (storage, both ε).
pub fn suggested_m1(n: usize, epsilon: f64, c: f64) -> usize {
    let m = (n as f64 * epsilon / c).max(0.0).sqrt() / 4.0;
    (m.round() as usize).max(10)
}

/// **Guideline 2**: second-level grid size for a first-level cell with
/// noisy count `n_prime`, given the remaining budget `(1−α)·ε`:
/// `m₂ = ⌈√(N′·(1−α)·ε / c₂)⌉`, at least 1.
///
/// Negative noisy counts are treated as 0 (no further partitioning).
pub fn guideline2(n_prime: f64, remaining_epsilon: f64, c2: f64) -> usize {
    let n = n_prime.max(0.0);
    let m = (n * remaining_epsilon / c2).sqrt().ceil();
    (m as usize).max(1)
}

/// How a grid method obtains the dataset cardinality `N` that the
/// guidelines need.
///
/// The paper notes: *"Obtaining a noisy estimate of N using a very small
/// portion of the total privacy budget suffices."* Its experiments use
/// the exact `N`; [`NEstimate::Exact`] mirrors that. For a strict
/// end-to-end ε accounting use [`NEstimate::Noisy`], which spends
/// `fraction · ε` on a Laplace count of `N` and leaves the rest for the
/// cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum NEstimate {
    /// Use the exact number of points (the paper's experimental setting;
    /// strictly speaking this leaks `N`, which the paper accepts).
    #[default]
    Exact,
    /// Spend `fraction` of the total budget on a noisy count of `N`.
    Noisy {
        /// Fraction of ε used for the estimate, in `(0, 1)`.
        fraction: f64,
    },
}

impl NEstimate {
    /// Validates the variant's parameters.
    pub fn validate(&self) -> Result<()> {
        match self {
            NEstimate::Exact => Ok(()),
            NEstimate::Noisy { fraction } => {
                if fraction.is_finite() && *fraction > 0.0 && *fraction < 1.0 {
                    Ok(())
                } else {
                    Err(CoreError::InvalidConfig(format!(
                        "NEstimate::Noisy fraction must be in (0, 1), got {fraction}"
                    )))
                }
            }
        }
    }
}

/// How the UG grid size is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GridSize {
    /// Use Guideline 1 with the given constant `c`.
    Suggested {
        /// The dataset-dependent constant (default [`DEFAULT_C`]).
        c: f64,
    },
    /// Use a fixed `m × m` grid (the paper's `U_m` notation).
    Fixed(usize),
}

impl Default for GridSize {
    fn default() -> Self {
        GridSize::Suggested { c: DEFAULT_C }
    }
}

impl GridSize {
    /// Resolves the grid size for a dataset of `n` points under budget
    /// `epsilon`.
    pub fn resolve(&self, n: usize, epsilon: f64) -> Result<usize> {
        match self {
            GridSize::Suggested { c } => {
                if !c.is_finite() || *c <= 0.0 {
                    return Err(CoreError::InvalidConfig(format!(
                        "Guideline-1 constant c must be positive, got {c}"
                    )));
                }
                Ok(guideline1(n, epsilon, *c))
            }
            GridSize::Fixed(m) => {
                if *m == 0 {
                    return Err(CoreError::InvalidConfig("grid size must be ≥ 1".into()));
                }
                Ok(*m)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins Guideline 1 against every suggested UG size printed in
    /// Table II of the paper.
    #[test]
    fn guideline1_reproduces_table2() {
        // (N, ε, expected m)
        let cases = [
            (1_600_000, 1.0, 400), // road
            (1_600_000, 0.1, 126), // road    (√16000 ≈ 126.49)
            (1_000_000, 1.0, 316), // checkin (√100000 ≈ 316.23)
            (1_000_000, 0.1, 100), // checkin
            (900_000, 1.0, 300),   // landmark
            (900_000, 0.1, 95),    // landmark (√9000 ≈ 94.87)
            (9_000, 1.0, 30),      // storage
        ];
        for (n, eps, expect) in cases {
            assert_eq!(guideline1(n, eps, DEFAULT_C), expect, "N={n}, ε={eps}");
        }
        // storage at ε = 0.1: √90 ≈ 9.49; the paper prints 10 (it rounds
        // up at the small end). We document the off-by-one: our rounding
        // gives 9, within the observed optimal range 10–32 ± 1.
        assert_eq!(guideline1(9_000, 0.1, DEFAULT_C), 9);
    }

    /// Pins the m₁ formula against the suggested values the paper prints
    /// in Figure 4/5 captions.
    #[test]
    fn m1_reproduces_paper_values() {
        let cases = [
            (1_600_000, 1.0, 100), // road: A100,5
            (1_600_000, 0.1, 32),  // road: A32,5
            (1_000_000, 1.0, 79),  // checkin: A79,5
            (1_000_000, 0.1, 25),  // checkin: A25,5
            (900_000, 1.0, 75),    // landmark: A75,5
            (900_000, 0.1, 24),    // landmark: A24,5
            (9_000, 1.0, 10),      // storage: A10,5 (floor of 10)
            (9_000, 0.1, 10),      // storage: A10,5
        ];
        for (n, eps, expect) in cases {
            assert_eq!(suggested_m1(n, eps, DEFAULT_C), expect, "N={n}, ε={eps}");
        }
    }

    #[test]
    fn guideline2_basics() {
        // N' = 0 or negative → no further partitioning.
        assert_eq!(guideline2(0.0, 0.5, DEFAULT_C2), 1);
        assert_eq!(guideline2(-50.0, 0.5, DEFAULT_C2), 1);
        // N' = 1000, (1-α)ε = 0.5: ⌈√100⌉ = 10.
        assert_eq!(guideline2(1000.0, 0.5, DEFAULT_C2), 10);
        // Ceiling applies: N' = 1010 → √101 ≈ 10.05 → 11.
        assert_eq!(guideline2(1010.0, 0.5, DEFAULT_C2), 11);
    }

    #[test]
    fn guideline2_monotone_in_count_and_budget() {
        let mut last = 0;
        for n in [0.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
            let m = guideline2(n, 0.5, DEFAULT_C2);
            assert!(m >= last);
            last = m;
        }
        assert!(guideline2(1000.0, 1.0, DEFAULT_C2) >= guideline2(1000.0, 0.1, DEFAULT_C2));
    }

    #[test]
    fn grid_size_resolution() {
        assert_eq!(GridSize::default().resolve(1_000_000, 1.0).unwrap(), 316);
        assert_eq!(GridSize::Fixed(64).resolve(1, 1.0).unwrap(), 64);
        assert!(GridSize::Fixed(0).resolve(1, 1.0).is_err());
        assert!(GridSize::Suggested { c: 0.0 }.resolve(1, 1.0).is_err());
        assert!(GridSize::Suggested { c: f64::NAN }.resolve(1, 1.0).is_err());
    }

    #[test]
    fn guideline1_minimum_is_one() {
        assert_eq!(guideline1(0, 1.0, 10.0), 1);
        assert_eq!(guideline1(1, 0.001, 10.0), 1);
    }

    #[test]
    fn n_estimate_validation() {
        assert!(NEstimate::Exact.validate().is_ok());
        assert!(NEstimate::Noisy { fraction: 0.05 }.validate().is_ok());
        assert!(NEstimate::Noisy { fraction: 0.0 }.validate().is_err());
        assert!(NEstimate::Noisy { fraction: 1.0 }.validate().is_err());
        assert!(NEstimate::Noisy { fraction: f64::NAN }.validate().is_err());
    }
}
