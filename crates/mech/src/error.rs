//! Error type for the mechanism substrate.

use std::fmt;

/// Errors produced by privacy mechanism constructors and budget
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum MechError {
    /// ε was non-finite or not strictly positive.
    InvalidEpsilon(f64),
    /// Sensitivity was non-finite or not strictly positive.
    InvalidSensitivity(f64),
    /// A budget fraction was outside `(0, 1]` or a split did not sum to ≤ 1.
    InvalidFraction(f64),
    /// More budget was requested than remains.
    BudgetExhausted {
        /// Amount requested.
        requested: f64,
        /// Amount still available.
        remaining: f64,
    },
    /// The exponential mechanism was invoked with no candidates.
    EmptyCandidates,
    /// A per-level allocation was requested for zero levels.
    ZeroLevels,
    /// A budget schedule was asked to charge an epoch it already
    /// charged (re-publishing an epoch would double-spend its share).
    EpochAlreadyCharged {
        /// The epoch index that was already charged.
        epoch: u64,
    },
    /// A non-finite score was passed to the exponential mechanism.
    NonFiniteScore {
        /// Index of the offending candidate.
        index: usize,
        /// The score value.
        score: f64,
    },
    /// A frequency oracle was built over a degenerate domain (fewer
    /// than two cells, or more than `u32::MAX`).
    InvalidDomainSize(usize),
    /// A local-DP report did not fit the oracle it was folded into
    /// (wrong kind, out-of-range cell, wrong bit-vector shape).
    InvalidReport(String),
}

impl fmt::Display for MechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be finite and positive, got {e}")
            }
            MechError::InvalidSensitivity(s) => {
                write!(f, "sensitivity must be finite and positive, got {s}")
            }
            MechError::InvalidFraction(x) => {
                write!(f, "budget fraction must lie in (0, 1], got {x}")
            }
            MechError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
            MechError::EmptyCandidates => {
                write!(f, "exponential mechanism needs at least one candidate")
            }
            MechError::ZeroLevels => write!(f, "allocation needs at least one level"),
            MechError::EpochAlreadyCharged { epoch } => {
                write!(f, "epoch {epoch} was already charged against the schedule")
            }
            MechError::NonFiniteScore { index, score } => {
                write!(f, "candidate #{index} has non-finite score {score}")
            }
            MechError::InvalidDomainSize(cells) => {
                write!(f, "frequency oracle needs 2..=u32::MAX cells, got {cells}")
            }
            MechError::InvalidReport(msg) => write!(f, "malformed LDP report: {msg}"),
        }
    }
}

impl std::error::Error for MechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(MechError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(MechError::BudgetExhausted {
            requested: 2.0,
            remaining: 0.5
        }
        .to_string()
        .contains("exhausted"));
    }
}
