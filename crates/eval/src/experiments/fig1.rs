//! Figure 1 — illustration of the four datasets.
//!
//! The paper plots the raw points; we emit (a) a density-matrix CSV per
//! dataset for external plotting, and (b) an ASCII density rendering in
//! the markdown summary so the spatial character (two dense states,
//! world map, east-heavy country, sparse country) is visible at a
//! glance.

use dpgrid_geo::generators::PaperDataset;
use dpgrid_geo::DenseGrid;

use super::ExpContext;
use crate::report::Table;
use crate::Result;

/// ASCII grey ramp from empty to dense.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a density grid as ASCII art (log-scaled so heavy-tailed
/// datasets stay legible), lowest row = southern edge.
pub fn ascii_density(grid: &DenseGrid) -> String {
    let max = grid.values().iter().fold(0.0f64, |m, &v| m.max(v)).max(1.0);
    let log_max = (1.0 + max).ln();
    let mut out = String::with_capacity((grid.cols() + 1) * grid.rows());
    for r in (0..grid.rows()).rev() {
        for c in 0..grid.cols() {
            let v = grid.get(c, r).max(0.0);
            let t = (1.0 + v).ln() / log_max;
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Runs the experiment: writes `fig1/<name>_density.csv` per dataset and
/// returns the markdown with ASCII renderings.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("fig1");
    let mut md = String::from("## Figure 1 — dataset illustrations\n\n");
    for which in PaperDataset::ALL {
        let dataset = which.generate_n(ctx.seed, ctx.n_for(which))?;
        // Aspect-ratio-aware render grid, ~72 columns.
        let cols = 72usize;
        let aspect = dataset.domain().height() / dataset.domain().width();
        // Terminal characters are roughly twice as tall as wide.
        let rows = ((cols as f64 * aspect) / 2.0).round().max(4.0) as usize;
        let grid = DenseGrid::count(&dataset, cols, rows)?;

        let mut table = Table::new(
            format!("{} density ({} points)", which.name(), dataset.len()),
            &["col", "row", "count"],
        );
        for (c, r, _, v) in grid.iter_cells() {
            if v > 0.0 {
                table.push_row(vec![c.to_string(), r.to_string(), format!("{v}")]);
            }
        }
        table.write_csv(&dir.join(format!("{}_density.csv", which.name())))?;

        md.push_str(&format!(
            "### {} — {} points, domain {:.0} × {:.0}\n\n```text\n{}```\n\n",
            which.name(),
            dataset.len(),
            dataset.domain().width(),
            dataset.domain().height(),
            ascii_density(&grid)
        ));
    }
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::Domain;

    #[test]
    fn ascii_density_shape() {
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 2.0).unwrap();
        let mut g = DenseGrid::zeros(domain, 4, 2).unwrap();
        g.set(0, 0, 100.0);
        let art = ascii_density(&g);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 4);
        // Dense cell is the darkest character, and it is on the bottom
        // row (row 0 renders last).
        assert_eq!(lines[1].as_bytes()[0], b'@');
        assert_eq!(lines[0].as_bytes()[0], b' ');
    }

    #[test]
    fn empty_grid_renders_blank() {
        let domain = Domain::from_corners(0.0, 0.0, 2.0, 2.0).unwrap();
        let g = DenseGrid::zeros(domain, 2, 2).unwrap();
        let art = ascii_density(&g);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }
}
