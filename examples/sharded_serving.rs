//! Sharded serving: one keyspace routed over many engines — local and
//! remote — behind a single front door.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```
//!
//! Demonstrates the whole horizontal-scaling story:
//!
//! 1. `Pipeline` publishes six DP releases through a `ShardedSink`,
//!    which places each release on one of three named shards by
//!    deterministic rendezvous hashing;
//! 2. a `ShardRouter` serves the same names — two shards in-process
//!    (`LocalShard`), one on the far side of a real TCP server
//!    (`RemoteShard`) — so routing finds every release exactly where
//!    publishing put it;
//! 3. the router is itself a `QueryService`, so an unchanged
//!    `TcpServer` bound to it becomes a front-door node proxying the
//!    fleet; a `TcpClient` queries mixed-key batches through it and
//!    every answer is checked against a single engine holding all six
//!    releases;
//! 4. topology changes: adding a fourth shard steals only the keys it
//!    now wins — everything else keeps its placement (and its warm
//!    caches).

use std::sync::Arc;

use dpgrid::prelude::*;

const SHARDS: [&str; 3] = ["shard-a", "shard-b", "shard-c"];

fn main() {
    // 1. Publish six releases twice: into one reference engine, and
    //    across three shard engines via the rendezvous-placed sink.
    let dataset = PaperDataset::Storage
        .generate_n(7, 20_000)
        .expect("generate dataset");
    let mut reference = Catalog::with_memory_budget(64 << 20);
    let engines: Vec<Arc<QueryEngine>> = SHARDS
        .iter()
        .map(|_| Arc::new(QueryEngine::new(Catalog::with_memory_budget(32 << 20))))
        .collect();
    let mut sink = ShardedSink::new(
        SHARDS
            .iter()
            .zip(&engines)
            .map(|(name, engine)| (name.to_string(), LocalShard::new(Arc::clone(engine))))
            .collect(),
    );
    let keys: Vec<String> = (0..6).map(|i| format!("city-{i}")).collect();
    for (i, key) in keys.iter().enumerate() {
        let pipeline = Pipeline::new(&dataset)
            .epsilon(1.0)
            .method(if i % 2 == 0 {
                Method::ag_suggested()
            } else {
                Method::ug(32)
            })
            .seed(40 + i as u64);
        pipeline
            .publish_into(&mut reference, key.clone())
            .expect("publish reference");
        pipeline
            .publish_into(&mut sink, key.clone())
            .expect("publish sharded");
        println!("published {key} -> {}", sink.route(key).unwrap());
    }
    let reference = QueryEngine::new(reference);

    // 2. shard-c moves to its own "host": a TCP server over its
    //    engine, dialed back through a RemoteShard. The router mixes
    //    the transports; placement only ever sees the *names*.
    let backend = TcpServer::bind(Arc::clone(&engines[2]), "127.0.0.1:0").expect("bind backend");
    println!("shard-c serving remotely on {}", backend.local_addr());
    let router = Arc::new(ShardRouter::new());
    router
        .add_shard(SHARDS[0], LocalShard::new(Arc::clone(&engines[0])))
        .expect("add shard-a");
    router
        .add_shard(SHARDS[1], LocalShard::new(Arc::clone(&engines[1])))
        .expect("add shard-b");
    router
        .add_shard(
            SHARDS[2],
            RemoteShard::connect(backend.local_addr()).expect("dial shard-c"),
        )
        .expect("add shard-c");
    for key in &keys {
        assert!(
            router.contains_key(key),
            "{key} must be where routing looks"
        );
    }

    // 3. Front door: the unchanged TcpServer serves the whole fleet
    //    because the router is a QueryService.
    let front_door = TcpServer::bind(Arc::clone(&router), "127.0.0.1:0").expect("bind front door");
    println!("front door on {}\n", front_door.local_addr());
    let mut client = TcpClient::connect(front_door.local_addr()).expect("connect front door");
    assert_eq!(client.keys().expect("keys"), reference.keys());
    let queries = [
        Rect::new(-130.0, 10.0, -70.0, 50.0).expect("valid rect"),
        Rect::new(-105.0, 28.0, -88.0, 42.0).expect("valid rect"),
        Rect::new(-98.0, 33.0, -97.0, 36.0).expect("valid rect"),
    ];
    let batch: Vec<QueryRequest> = keys
        .iter()
        .map(|k| QueryRequest::new(k.clone(), queries.to_vec()))
        .collect();
    for (key, outcome) in keys.iter().zip(client.query_batch(&batch).expect("batch")) {
        let remote = outcome.expect("answered");
        let local = reference
            .answer(&QueryRequest::new(key.clone(), queries.to_vec()))
            .expect("reference answer");
        assert_eq!(
            remote.answers, local.answers,
            "routed answers must equal the single-engine reference"
        );
        println!(
            "{key} via {}: total ~ {:>9.1} (routed == reference)",
            router.route(key).unwrap(),
            remote.answers[0]
        );
    }

    // 4. Topology: a fourth shard steals only the keys it now wins.
    let before: Vec<(String, String)> = keys
        .iter()
        .map(|k| (k.clone(), router.route(k).unwrap()))
        .collect();
    router
        .add_shard(
            "shard-d",
            LocalShard::new(Arc::new(QueryEngine::new(Catalog::new()))),
        )
        .expect("add shard-d");
    let moved: Vec<&str> = before
        .iter()
        .filter(|(k, owner)| router.route(k).unwrap() != *owner)
        .map(|(k, _)| k.as_str())
        .collect();
    println!(
        "\nadded shard-d: {} of {} keys remapped ({:?}); the rest kept their placement",
        moved.len(),
        keys.len(),
        moved
    );
    for (key, owner) in &before {
        let now = router.route(key).unwrap();
        assert!(
            now == *owner || now == "shard-d",
            "{key} may only move to the new shard"
        );
    }

    // Operator view: per-shard routing counters + exact merged stats.
    let stats = router.router_stats();
    for shard in &stats.shards {
        println!(
            "{:>8}: routed {:>2} requests ({} failed), engine answered {} rects",
            shard.name, shard.routed, shard.failed, shard.engine.answers
        );
    }
    println!(
        "fleet total: {} requests, {} answers",
        stats.merged.requests, stats.merged.answers
    );

    front_door.shutdown();
    backend.shutdown();
    println!("fleet shut down cleanly");
}
