//! Performance ablations of the design choices DESIGN.md calls out:
//! constrained inference cost, SAT-based vs brute-force answering,
//! adaptive vs fixed second-level grids, and noise-source cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{AdaptiveGrid, AgConfig, NoiseKind, Synopsis, UgConfig, UniformGrid};
use dpgrid_geo::Rect;

const N: usize = 100_000;
const EPS: f64 = 1.0;

fn ag_inference_cost(c: &mut Criterion) {
    let dataset = bench_dataset(N);
    let mut group = c.benchmark_group("ablate/ag_build");
    group.sample_size(10);
    group.bench_function("with_ci", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("without_ci", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| {
                AdaptiveGrid::build(
                    &dataset,
                    &AgConfig::guideline(EPS).without_inference(),
                    &mut rng,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("fixed_m2_4", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| {
                AdaptiveGrid::build(
                    &dataset,
                    &AgConfig::guideline(EPS).with_fixed_m2(4),
                    &mut rng,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn answering_paths(c: &mut Criterion) {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    let ug = UniformGrid::build(&dataset, &UgConfig::fixed(EPS, 128), &mut rng).unwrap();
    let q = Rect::new(-110.0, 25.0, -90.0, 40.0).unwrap();
    let mut group = c.benchmark_group("ablate/answer");
    // SAT-backed O(1) interior answering.
    group.bench_function("sat_path", |b| {
        b.iter(|| black_box(ug.answer(black_box(&q))))
    });
    // The naive per-cell loop the SAT decomposition replaces.
    group.bench_function("bruteforce_cells", |b| {
        let cells = ug.cells();
        b.iter(|| {
            let sum: f64 = cells
                .iter()
                .map(|(rect, v)| v * rect.overlap_fraction(black_box(&q)))
                .sum();
            black_box(sum)
        })
    });
    group.finish();
}

fn noise_sources(c: &mut Criterion) {
    let dataset = bench_dataset(N);
    let mut group = c.benchmark_group("ablate/noise");
    group.sample_size(10);
    group.bench_function("ug_laplace", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| UniformGrid::build(&dataset, &UgConfig::fixed(EPS, 128), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ug_geometric", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| {
                UniformGrid::build(
                    &dataset,
                    &UgConfig::fixed(EPS, 128).with_noise(NoiseKind::Geometric),
                    &mut rng,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, ag_inference_cost, answering_paths, noise_sources);
criterion_main!(benches);
