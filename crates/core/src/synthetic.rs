//! Regenerating a synthetic dataset from a released synopsis.
//!
//! §II-B: *"This synopsis can then be used either for generating a
//! synthetic dataset, or for answering queries directly."* This module
//! implements the first use: sample points cell-proportionally (negative
//! noisy counts are treated as empty) and uniformly within each cell.
//! Because the input is already ε-differentially private, the synthetic
//! dataset is too (post-processing).

use rand::Rng;

use dpgrid_geo::{Domain, GeoDataset, Point, Rect};

use crate::{CoreError, Result, Synopsis};

/// Samples `n` synthetic points from a synopsis.
///
/// Cells are selected with probability proportional to
/// `max(noisy_count, 0)`; the point is then placed uniformly inside the
/// chosen cell. Fails when every cell is non-positive (nothing to sample
/// from).
pub fn synthesize(synopsis: &impl Synopsis, n: usize, rng: &mut impl Rng) -> Result<GeoDataset> {
    synthesize_from_cells(&synopsis.cells(), *synopsis.domain(), n, rng)
}

/// Samples `n` synthetic points given an explicit cell decomposition.
pub fn synthesize_from_cells(
    cells: &[(Rect, f64)],
    domain: Domain,
    n: usize,
    rng: &mut impl Rng,
) -> Result<GeoDataset> {
    // Cumulative positive mass over cells.
    let mut cumulative = Vec::with_capacity(cells.len());
    let mut acc = 0.0f64;
    for (_, v) in cells {
        acc += v.max(0.0);
        cumulative.push(acc);
    }
    if acc <= 0.0 {
        return Err(CoreError::InvalidConfig(
            "synopsis has no positive mass to sample from".into(),
        ));
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.random::<f64>() * acc;
        let k = cumulative.partition_point(|&c| c <= u).min(cells.len() - 1);
        let rect = &cells[k].0;
        // Uniform inside the cell; `random_range` needs a non-empty
        // range, and cells always have positive extent.
        let x = rng.random_range(rect.x0()..rect.x1());
        let y = rng.random_range(rect.y0()..rect.y1());
        // Clamp into the domain for numerical safety at shared edges.
        let d = domain.rect();
        points.push(Point::new(x.clamp(d.x0(), d.x1()), y.clamp(d.y0(), d.y1())));
    }
    Ok(GeoDataset::from_points(points, domain)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{UgConfig, UniformGrid};
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn synthetic_data_matches_density() {
        // Build an exact (huge-ε) UG over a corner-heavy dataset, then
        // check the synthetic sample reproduces the corner density.
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 4.0).unwrap();
        let mut points = Vec::new();
        let mut r = rng(1);
        for _ in 0..9_000 {
            points.push(Point::new(
                rand::Rng::random_range(&mut r, 0.0..1.0),
                rand::Rng::random_range(&mut r, 0.0..1.0),
            ));
        }
        for _ in 0..1_000 {
            points.push(Point::new(
                rand::Rng::random_range(&mut r, 1.0..4.0),
                rand::Rng::random_range(&mut r, 1.0..4.0),
            ));
        }
        let ds = GeoDataset::from_points(points, domain).unwrap();
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1e9, 4), &mut rng(2)).unwrap();
        let synth = synthesize(&ug, 10_000, &mut rng(3)).unwrap();
        let corner = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        let frac = synth.count_in(&corner) as f64 / synth.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "corner fraction {frac}");
    }

    #[test]
    fn negative_cells_are_ignored() {
        let domain = Domain::from_corners(0.0, 0.0, 2.0, 1.0).unwrap();
        let cells = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), -50.0),
            (Rect::new(1.0, 0.0, 2.0, 1.0).unwrap(), 10.0),
        ];
        let ds = synthesize_from_cells(&cells, domain, 500, &mut rng(4)).unwrap();
        assert!(ds.points().iter().all(|p| p.x >= 1.0));
    }

    #[test]
    fn all_nonpositive_mass_fails() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let cells = vec![(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), -3.0)];
        assert!(synthesize_from_cells(&cells, domain, 10, &mut rng(5)).is_err());
    }

    #[test]
    fn synthetic_points_stay_in_domain() {
        let domain = Domain::from_corners(-5.0, -5.0, 5.0, 5.0).unwrap();
        let data = generators::uniform(domain, 1_000, &mut rng(6));
        let ug = UniformGrid::build(&data, &UgConfig::fixed(1.0, 8), &mut rng(7)).unwrap();
        let synth = synthesize(&ug, 2_000, &mut rng(8)).unwrap();
        assert_eq!(synth.len(), 2_000);
        for p in synth.points() {
            assert!(domain.contains(p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let data = generators::uniform(domain, 200, &mut rng(9));
        let ug = UniformGrid::build(&data, &UgConfig::fixed(1.0, 4), &mut rng(10)).unwrap();
        let a = synthesize(&ug, 100, &mut rng(11)).unwrap();
        let b = synthesize(&ug, 100, &mut rng(11)).unwrap();
        assert_eq!(a.points(), b.points());
    }
}
