//! Statistical verification of the privacy accounting: released noise
//! levels must match what the claimed ε implies.

use dpgrid::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn empty_dataset(domain: Domain) -> GeoDataset {
    GeoDataset::from_points(vec![], domain).unwrap()
}

/// Empirical standard deviation of a sample.
fn std_dev(xs: &[f64]) -> f64 {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[test]
fn ug_cell_noise_matches_epsilon() {
    // On an empty dataset every UG cell is a pure Lap(1/ε) draw:
    // std = √2/ε.
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    for eps in [0.1, 1.0] {
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(eps, 32), &mut rng(1)).unwrap();
        let std = std_dev(ug.grid().values());
        let expect = std::f64::consts::SQRT_2 / eps;
        assert!(
            (std - expect).abs() < expect * 0.1,
            "ε={eps}: cell noise std {std}, expected {expect}"
        );
    }
}

#[test]
fn ag_level_budgets_split_by_alpha() {
    // AG's first-level observations carry Lap(1/(αε)) noise. With the
    // leaves' (1−α)ε and constrained inference, the adjusted totals are
    // *less* noisy than either observation alone — we check both the
    // direction and the rough magnitude.
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    let eps = 1.0;
    let alpha = 0.5;
    let mut totals = Vec::new();
    let mut cfg = AgConfig::guideline(eps).with_alpha(alpha).with_m1(4);
    cfg.m2_cap = 4;
    for seed in 0..200 {
        let ag = AdaptiveGrid::build(&ds, &cfg, &mut rng(seed)).unwrap();
        for info in ag.cells_info() {
            totals.push(info.adjusted_total);
        }
    }
    let std = std_dev(&totals);
    // Upper bound: the raw level-1 noise std √2/(αε) = 2.83.
    let raw_l1 = std::f64::consts::SQRT_2 / (alpha * eps);
    assert!(
        std < raw_l1,
        "CI-adjusted totals (std {std}) should beat raw level-1 noise ({raw_l1})"
    );
    // And the totals are unbiased around 0.
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    assert!(mean.abs() < 0.2, "mean {mean}");
}

#[test]
fn noisy_n_consumes_budget() {
    // With NEstimate::Noisy the cells must get strictly less than ε:
    // their noise is larger than the exact-N variant's.
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    let eps = 1.0;
    let mut exact_noise = Vec::new();
    let mut noisy_noise = Vec::new();
    for seed in 0..100 {
        let e = UniformGrid::build(&ds, &UgConfig::fixed(eps, 8), &mut rng(seed)).unwrap();
        exact_noise.extend_from_slice(e.grid().values());
        let cfg = UgConfig::fixed(eps, 8).with_noisy_n(0.5);
        let n = UniformGrid::build(&ds, &cfg, &mut rng(seed + 1_000)).unwrap();
        noisy_noise.extend_from_slice(n.grid().values());
    }
    let s_exact = std_dev(&exact_noise);
    let s_noisy = std_dev(&noisy_noise);
    // Half the budget went to N → cell noise doubles.
    assert!(
        s_noisy > s_exact * 1.5,
        "exact-N noise {s_exact}, noisy-N noise {s_noisy}"
    );
}

#[test]
fn composition_rejects_overdraft() {
    use dpgrid::mech::PrivacyBudget;
    let mut b = PrivacyBudget::new(1.0).unwrap();
    b.spend(0.5).unwrap();
    b.spend(0.5).unwrap();
    assert!(b.spend(0.1).is_err());
    assert!(b.is_exhausted());
}

#[test]
fn epsilon_scales_error_inversely() {
    // Build UG at ε and 10ε over the same data; the bigger budget's
    // answers must be roughly 10× closer on average (pure noise regime).
    let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
    let ds = empty_dataset(domain);
    let q = Rect::new(0.1, 0.1, 0.6, 0.6).unwrap();
    let mut errs_small = Vec::new();
    let mut errs_large = Vec::new();
    for seed in 0..300 {
        let a = UniformGrid::build(&ds, &UgConfig::fixed(0.1, 16), &mut rng(seed)).unwrap();
        errs_small.push(a.answer(&q).abs());
        let b = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 16), &mut rng(seed)).unwrap();
        errs_large.push(b.answer(&q).abs());
    }
    let mean_small = errs_small.iter().sum::<f64>() / errs_small.len() as f64;
    let mean_large = errs_large.iter().sum::<f64>() / errs_large.len() as f64;
    let ratio = mean_small / mean_large;
    assert!(
        (ratio - 10.0).abs() < 3.0,
        "error ratio {ratio}, expected ≈ 10"
    );
}
