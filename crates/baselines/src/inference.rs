//! Generic minimum-variance constrained inference for count trees.
//!
//! Hay et al. ("Boosting the accuracy of differentially private
//! histograms through consistency", VLDB 2010) observed that when a DP
//! release contains a noisy count for a node *and* noisy counts for the
//! partition of that node into children, the redundancy can be exploited:
//! the consistent estimate minimising variance is computable in two
//! linear passes.
//!
//! This module implements the engine for **arbitrary branching factors
//! and per-node noise variances** (Hay et al. present the uniform binary
//! case):
//!
//! 1. **Upward pass** — for each node compute the best subtree-total
//!    estimate `z[v]` by inverse-variance averaging of the node's own
//!    noisy count with the sum of its children's `z` values;
//! 2. **Downward pass** — fix `u[root] = z[root]` and push each node's
//!    surplus `u[v] − Σ z[children]` down, distributing it across
//!    children **proportionally to their variances** (equal distribution
//!    when variances are equal, recovering Hay's formula and the paper's
//!    AG update).
//!
//! The engine is shared by the hierarchy baseline, the KD-tree baselines
//! and — conceptually — AG, whose closed-form two-level inference is the
//! `depth = 2` special case (pinned by a test below).

use crate::{BaselineError, Result};

/// A node of a [`CiTree`]: a noisy observation plus its noise variance.
#[derive(Debug, Clone)]
struct CiNode {
    noisy: f64,
    variance: f64,
    children: Vec<usize>,
    /// Upward-pass estimate of the subtree total.
    z: f64,
    /// Variance of `z`.
    z_var: f64,
    /// Final consistent estimate.
    u: f64,
}

/// An arena-allocated tree of noisy counts supporting constrained
/// inference.
///
/// Build with [`CiTree::add_node`] / [`CiTree::set_children`], then call
/// [`CiTree::run`]. Multiple roots are allowed (a forest) — the
/// hierarchy baseline's coarsest level is exactly that.
#[derive(Debug, Clone, Default)]
pub struct CiTree {
    nodes: Vec<CiNode>,
}

impl CiTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        CiTree::default()
    }

    /// Creates an empty tree with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        CiTree {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node with its noisy count and noise variance, returning its
    /// id. Variance must be positive and finite.
    pub fn add_node(&mut self, noisy: f64, variance: f64) -> Result<usize> {
        if !variance.is_finite() || variance <= 0.0 {
            return Err(BaselineError::InvalidConfig(format!(
                "node variance must be positive and finite, got {variance}"
            )));
        }
        if !noisy.is_finite() {
            return Err(BaselineError::InvalidConfig(format!(
                "node count must be finite, got {noisy}"
            )));
        }
        self.nodes.push(CiNode {
            noisy,
            variance,
            children: Vec::new(),
            z: 0.0,
            z_var: 0.0,
            u: 0.0,
        });
        Ok(self.nodes.len() - 1)
    }

    /// Declares `children` as the partition of `parent`. Child ids must
    /// already exist and be distinct from the parent.
    pub fn set_children(&mut self, parent: usize, children: Vec<usize>) -> Result<()> {
        if parent >= self.nodes.len() {
            return Err(BaselineError::InvalidConfig(format!(
                "parent id {parent} out of range"
            )));
        }
        for &c in &children {
            if c >= self.nodes.len() || c == parent {
                return Err(BaselineError::InvalidConfig(format!(
                    "child id {c} invalid for parent {parent}"
                )));
            }
        }
        self.nodes[parent].children = children;
        Ok(())
    }

    /// Runs both passes from the given roots and returns the consistent
    /// estimate for every node (indexed by node id).
    ///
    /// After the run, for every internal node: `u[v] = Σ u[children]`.
    pub fn run(&mut self, roots: &[usize]) -> Result<Vec<f64>> {
        for &r in roots {
            if r >= self.nodes.len() {
                return Err(BaselineError::InvalidConfig(format!(
                    "root id {r} out of range"
                )));
            }
        }
        // Iterative post-order (upward pass).
        for &root in roots {
            self.upward(root);
        }
        // Iterative pre-order (downward pass).
        for &root in roots {
            self.nodes[root].u = self.nodes[root].z;
            self.downward(root);
        }
        Ok(self.nodes.iter().map(|n| n.u).collect())
    }

    /// Consistent estimate of a node after [`CiTree::run`].
    pub fn estimate(&self, id: usize) -> f64 {
        self.nodes[id].u
    }

    fn upward(&mut self, root: usize) {
        // Explicit stack post-order: (node, children_processed).
        let mut stack = vec![(root, false)];
        while let Some((v, processed)) = stack.pop() {
            if processed || self.nodes[v].children.is_empty() {
                if self.nodes[v].children.is_empty() {
                    self.nodes[v].z = self.nodes[v].noisy;
                    self.nodes[v].z_var = self.nodes[v].variance;
                } else {
                    let (mut sum_z, mut sum_var) = (0.0, 0.0);
                    for i in 0..self.nodes[v].children.len() {
                        let c = self.nodes[v].children[i];
                        sum_z += self.nodes[c].z;
                        sum_var += self.nodes[c].z_var;
                    }
                    // Inverse-variance combination of own count vs child sum.
                    let own_var = self.nodes[v].variance;
                    let w = (1.0 / own_var) / (1.0 / own_var + 1.0 / sum_var);
                    self.nodes[v].z = w * self.nodes[v].noisy + (1.0 - w) * sum_z;
                    self.nodes[v].z_var = 1.0 / (1.0 / own_var + 1.0 / sum_var);
                }
            } else {
                stack.push((v, true));
                for i in 0..self.nodes[v].children.len() {
                    let c = self.nodes[v].children[i];
                    stack.push((c, false));
                }
            }
        }
    }

    fn downward(&mut self, root: usize) {
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            if self.nodes[v].children.is_empty() {
                continue;
            }
            let (mut sum_z, mut sum_var) = (0.0, 0.0);
            for i in 0..self.nodes[v].children.len() {
                let c = self.nodes[v].children[i];
                sum_z += self.nodes[c].z;
                sum_var += self.nodes[c].z_var;
            }
            let surplus = self.nodes[v].u - sum_z;
            for i in 0..self.nodes[v].children.len() {
                let c = self.nodes[v].children[i];
                // Share proportional to the child's variance: noisier
                // children absorb more of the correction.
                let share = self.nodes[c].z_var / sum_var;
                self.nodes[c].u = self.nodes[c].z + surplus * share;
                stack.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a uniform b-ary tree of the given depth with all-equal
    /// noisy counts and variances; returns (tree, root, leaf ids).
    fn uniform_tree(
        branching: usize,
        depth: usize,
        noisy: f64,
        var: f64,
    ) -> (CiTree, usize, Vec<usize>) {
        let mut t = CiTree::new();
        fn build(
            t: &mut CiTree,
            branching: usize,
            depth: usize,
            noisy: f64,
            var: f64,
            leaves: &mut Vec<usize>,
        ) -> usize {
            let id = t.add_node(noisy, var).unwrap();
            if depth > 0 {
                let children: Vec<usize> = (0..branching)
                    .map(|_| {
                        build(
                            t,
                            branching,
                            depth - 1,
                            noisy / branching as f64,
                            var,
                            leaves,
                        )
                    })
                    .collect();
                t.set_children(id, children).unwrap();
            } else {
                leaves.push(id);
            }
            id
        }
        let mut leaves = Vec::new();
        let root = build(&mut t, branching, depth, noisy, var, &mut leaves);
        (t, root, leaves)
    }

    #[test]
    fn validates_inputs() {
        let mut t = CiTree::new();
        assert!(t.add_node(1.0, 0.0).is_err());
        assert!(t.add_node(f64::NAN, 1.0).is_err());
        let a = t.add_node(1.0, 1.0).unwrap();
        assert!(t.set_children(a, vec![a]).is_err());
        assert!(t.set_children(99, vec![]).is_err());
        assert!(t.set_children(a, vec![99]).is_err());
        assert!(t.run(&[99]).is_err());
    }

    #[test]
    fn consistency_after_run() {
        let (mut t, root, _) = uniform_tree(3, 3, 27.0, 2.0);
        let u = t.run(&[root]).unwrap();
        // Every internal node equals the sum of its children.
        for v in 0..t.len() {
            let children = t.nodes[v].children.clone();
            if !children.is_empty() {
                let child_sum: f64 = children.iter().map(|&c| u[c]).sum();
                assert!(
                    (u[v] - child_sum).abs() < 1e-9,
                    "node {v}: {} vs {child_sum}",
                    u[v]
                );
            }
        }
    }

    #[test]
    fn perfect_observations_are_untouched() {
        // When child sums already equal parents, CI changes nothing.
        let mut t = CiTree::new();
        let root = t.add_node(10.0, 1.0).unwrap();
        let a = t.add_node(4.0, 1.0).unwrap();
        let b = t.add_node(6.0, 1.0).unwrap();
        t.set_children(root, vec![a, b]).unwrap();
        let u = t.run(&[root]).unwrap();
        assert!((u[root] - 10.0).abs() < 1e-12);
        assert!((u[a] - 4.0).abs() < 1e-12);
        assert!((u[b] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn matches_ag_two_level_closed_form() {
        // depth-2 CI with one parent and m2² children must equal the
        // paper's AG formula (implemented independently in dpgrid-core).
        let alpha = 0.5f64;
        let eps = 1.0f64;
        let m2 = 3usize;
        let v = 40.0;
        let leaf_counts = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];

        // Closed form from dpgrid-core.
        let mut leaves_core = leaf_counts.to_vec();
        let inf = dpgrid_core::inference::two_level_inference(v, alpha, &mut leaves_core);

        // Generic engine.
        let var_v = 2.0 / (alpha * eps).powi(2);
        let var_u = 2.0 / ((1.0 - alpha) * eps).powi(2);
        let mut t = CiTree::new();
        let root = t.add_node(v, var_v).unwrap();
        let children: Vec<usize> = leaf_counts
            .iter()
            .map(|&u| t.add_node(u, var_u).unwrap())
            .collect();
        t.set_children(root, children.clone()).unwrap();
        let u = t.run(&[root]).unwrap();

        assert!(
            (u[root] - inf.adjusted_total).abs() < 1e-9,
            "root {} vs closed form {}",
            u[root],
            inf.adjusted_total
        );
        for (i, &c) in children.iter().enumerate() {
            assert!(
                (u[c] - leaves_core[i]).abs() < 1e-9,
                "leaf {i}: {} vs {}",
                u[c],
                leaves_core[i]
            );
        }
        let _ = m2;
    }

    #[test]
    fn variance_weighting_prefers_reliable_observations() {
        // Parent observed precisely (tiny variance), children noisily:
        // the root estimate must stay near the parent's observation.
        let mut t = CiTree::new();
        let root = t.add_node(100.0, 1e-6).unwrap();
        let a = t.add_node(10.0, 100.0).unwrap();
        let b = t.add_node(10.0, 100.0).unwrap();
        t.set_children(root, vec![a, b]).unwrap();
        let u = t.run(&[root]).unwrap();
        assert!((u[root] - 100.0).abs() < 0.01, "root {}", u[root]);
        // The huge surplus is split equally (equal child variances).
        assert!((u[a] - u[b]).abs() < 1e-9);
        assert!((u[a] + u[b] - u[root]).abs() < 1e-9);
    }

    #[test]
    fn unequal_child_variances_share_surplus_proportionally() {
        let mut t = CiTree::new();
        let root = t.add_node(90.0, 1e-9).unwrap(); // pin the total
        let precise = t.add_node(10.0, 1.0).unwrap();
        let noisy = t.add_node(10.0, 9.0).unwrap();
        t.set_children(root, vec![precise, noisy]).unwrap();
        let u = t.run(&[root]).unwrap();
        // Surplus 70 split 1:9.
        assert!((u[precise] - 17.0).abs() < 1e-3, "{}", u[precise]);
        assert!((u[noisy] - 73.0).abs() < 1e-3, "{}", u[noisy]);
    }

    #[test]
    fn forest_roots_run_independently() {
        let mut t = CiTree::new();
        let r1 = t.add_node(10.0, 1.0).unwrap();
        let a = t.add_node(3.0, 1.0).unwrap();
        let b = t.add_node(5.0, 1.0).unwrap();
        t.set_children(r1, vec![a, b]).unwrap();
        let r2 = t.add_node(7.0, 1.0).unwrap();
        let u = t.run(&[r1, r2]).unwrap();
        assert!((u[r2] - 7.0).abs() < 1e-12);
        assert!((u[a] + u[b] - u[r1]).abs() < 1e-9);
    }

    #[test]
    fn deep_tree_does_not_overflow_stack() {
        // A path of 100 000 unary nodes exercises the iterative passes.
        let mut t = CiTree::with_capacity(100_000);
        let mut prev = t.add_node(1.0, 1.0).unwrap();
        let root = prev;
        for _ in 0..99_999 {
            let next = t.add_node(1.0, 1.0).unwrap();
            t.set_children(prev, vec![next]).unwrap();
            prev = next;
        }
        let u = t.run(&[root]).unwrap();
        assert!(u.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn variance_reduction_statistical() {
        // Monte-Carlo: the CI root estimate of a binary tree beats the
        // raw root observation in mean squared error.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let lap = dpgrid_mech::Laplace::new(1.0).unwrap();
        let truth_root = 100.0;
        let truth_leaf = 25.0;
        let trials = 5_000;
        let (mut mse_raw, mut mse_ci) = (0.0, 0.0);
        for _ in 0..trials {
            let mut t = CiTree::new();
            let noisy_root = truth_root + lap.sample(&mut rng);
            let root = t.add_node(noisy_root, 2.0).unwrap();
            let mids: Vec<usize> = (0..2)
                .map(|_| {
                    t.add_node(2.0 * truth_leaf + lap.sample(&mut rng), 2.0)
                        .unwrap()
                })
                .collect();
            t.set_children(root, mids.clone()).unwrap();
            for &m in &mids {
                let leaves: Vec<usize> = (0..2)
                    .map(|_| t.add_node(truth_leaf + lap.sample(&mut rng), 2.0).unwrap())
                    .collect();
                t.set_children(m, leaves).unwrap();
            }
            let u = t.run(&[root]).unwrap();
            mse_raw += (noisy_root - truth_root).powi(2);
            mse_ci += (u[root] - truth_root).powi(2);
        }
        assert!(
            mse_ci < mse_raw * 0.8,
            "CI mse {mse_ci} not clearly below raw {mse_raw}"
        );
    }
}
