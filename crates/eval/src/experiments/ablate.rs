//! Ablations of the design choices DESIGN.md calls out.
//!
//! Four questions, each isolated on the checkin and landmark datasets:
//!
//! 1. **Constrained inference** — how much does AG's two-level merge
//!    (§IV-B) buy? (`A*` vs `A*[noCI]`)
//! 2. **Guideline-2 adaptivity** — does adapting `m₂` to the noisy cell
//!    count beat partitioning every cell the same way? (`A*` vs
//!    `A*[m2=k]` for a fixed k matching the average leaf budget)
//! 3. **Noise source** — Laplace vs the integer geometric mechanism at
//!    the same ε (`U*` vs `U*[geo]`): the geometric's variance is
//!    slightly lower, so it should never hurt.
//! 4. **Square vs aspect-aware cells** — the paper always uses `m × m`
//!    even on non-square domains; does matching the aspect ratio help?
//!    (`U*` vs `U*[aspect]`; checkin's domain is 2.4 : 1)
//!
//! Plus the KD stopping rule (`Khy` vs `Khy[stop=0]`), which quantifies
//! why \[3\]'s data-dependent trees matter at small ε.

use dpgrid_core::guidelines;
use dpgrid_geo::generators::PaperDataset;

use super::{DataBundle, ExpContext};
use crate::method::Method;
use crate::report::profile_table;
use crate::Result;

/// Runs all ablation panels; writes CSVs and returns the markdown.
pub fn run(ctx: &ExpContext) -> Result<String> {
    let dir = ctx.dir("ablate");
    let mut md = String::from("## Ablations — design choices under the knife\n\n");
    for which in [PaperDataset::Checkin, PaperDataset::Landmark] {
        let bundle = DataBundle::prepare(which, ctx)?;
        let n = bundle.dataset.len();
        for &eps in &ctx.epsilons {
            let m1 = guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C);
            // A fixed m2 with comparable total leaf count: the average
            // adaptive m2 is ≈ √(N'(1-α)ε/c₂) at N' = N/m1².
            let avg_n_prime = n as f64 / (m1 * m1) as f64;
            let fixed_m2 =
                guidelines::guideline2(avg_n_prime, (1.0 - 0.5) * eps, guidelines::DEFAULT_C2)
                    .max(1);

            let methods = vec![
                // 1. constrained inference
                Method::AgVariant {
                    m1: None,
                    ci: true,
                    fixed_m2: None,
                },
                Method::AgVariant {
                    m1: None,
                    ci: false,
                    fixed_m2: None,
                },
                // 2. Guideline-2 adaptivity
                Method::AgVariant {
                    m1: None,
                    ci: true,
                    fixed_m2: Some(fixed_m2),
                },
                // 3. noise source
                Method::UgVariant {
                    m: None,
                    geometric: false,
                    aspect: false,
                },
                Method::UgVariant {
                    m: None,
                    geometric: true,
                    aspect: false,
                },
                // 4. cell shape
                Method::UgVariant {
                    m: None,
                    geometric: false,
                    aspect: true,
                },
                // 5. KD adaptive stopping
                Method::KdHybridVariant { stop_factor: 3.0 },
                Method::KdHybridVariant { stop_factor: 0.0 },
            ];
            let stem = format!("{}_eps{eps}", which.name());
            let evals = bundle.run_panel(&dir, &stem, &methods, eps, ctx)?;
            let title = format!("ablate: {} ε={eps}", which.name());
            md.push_str(&profile_table(&title, &evals).to_markdown());
        }
    }
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_ablate_test"));
        ctx.scale = 1024;
        ctx.queries_per_size = 5;
        let md = run(&ctx).unwrap();
        assert!(md.contains("noCI"));
        assert!(md.contains("[geo]"));
        assert!(md.contains("stop=0"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
