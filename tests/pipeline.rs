//! End-to-end publishing-pipeline tests: every method over every paper
//! dataset, driven through the one construction path
//! (`Method::build_boxed` / `Pipeline::publish`).

use dpgrid::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn all_methods() -> Vec<Method> {
    vec![
        Method::Flat,
        Method::ug(16),
        Method::ug_suggested(),
        Method::ag(8),
        Method::ag_suggested(),
        Method::privelet(16),
        Method::KdStandard,
        Method::KdHybrid,
        Method::hierarchy(16, 2, 2),
    ]
}

/// The full registry, ablation variants included — the list the
/// determinism tests sweep.
fn all_method_variants() -> Vec<Method> {
    let mut methods = all_methods();
    methods.extend([
        Method::UgVariant {
            m: Some(12),
            geometric: true,
            aspect: true,
        },
        Method::AgVariant {
            m1: Some(6),
            ci: false,
            fixed_m2: Some(3),
        },
        Method::KdHybridVariant { stop_factor: 0.0 },
    ]);
    methods
}

#[test]
fn every_method_on_every_dataset() {
    for which in PaperDataset::ALL {
        let dataset = which.generate_n(1, 5_000).unwrap();
        let d = dataset.domain().rect();
        // A handful of queries across scales.
        let queries = [
            Rect::new(d.x0(), d.y0(), d.x1(), d.y1()).unwrap(),
            Rect::new(
                d.x0() + d.width() * 0.25,
                d.y0() + d.height() * 0.25,
                d.x0() + d.width() * 0.75,
                d.y0() + d.height() * 0.75,
            )
            .unwrap(),
            Rect::new(
                d.x0() + d.width() * 0.4,
                d.y0() + d.height() * 0.4,
                d.x0() + d.width() * 0.45,
                d.y0() + d.height() * 0.45,
            )
            .unwrap(),
        ];
        for method in all_methods() {
            let syn = method
                .build_boxed(&dataset, 1.0, &mut rng(42))
                .unwrap_or_else(|e| panic!("{method:?} on {}: {e}", which.name()));
            for q in &queries {
                let ans = syn.answer(q);
                assert!(
                    ans.is_finite(),
                    "{method:?} on {} returned non-finite answer",
                    which.name()
                );
            }
            // Total estimate is within noise range of N.
            let total = syn.total_estimate();
            assert!(
                (total - 5_000.0).abs() < 2_500.0,
                "{method:?} on {}: total estimate {total} too far from 5000",
                which.name()
            );
        }
    }
}

#[test]
fn near_exact_at_large_epsilon() {
    // At ε = 10⁴ every method's whole-domain estimate converges to N.
    // (Much larger ε would make Guideline 1 request grids beyond the
    // memory cap — that failure mode is itself covered in dpgrid-core's
    // tests.)
    let dataset = PaperDataset::Landmark.generate_n(2, 3_000).unwrap();
    let whole = *dataset.domain().rect();
    for method in all_methods() {
        let syn = method.build_boxed(&dataset, 1e4, &mut rng(9)).unwrap();
        let ans = syn.answer(&whole);
        assert!(
            (ans - 3_000.0).abs() < 1.5,
            "{method:?}: whole-domain answer {ans}"
        );
    }
}

#[test]
fn ag_beats_flat_on_clustered_data() {
    // The whole point of adaptive partitioning: on clustered data the
    // flat total-count release misestimates local ranges badly.
    let dataset = PaperDataset::Checkin.generate_n(3, 50_000).unwrap();
    let index = PointIndex::build(&dataset);
    let d = dataset.domain().rect();
    // 20 mid-size queries.
    let mut queries = Vec::new();
    let mut r = rng(5);
    for _ in 0..20 {
        let w = d.width() * 0.1;
        let h = d.height() * 0.1;
        let x0 = rand::Rng::random_range(&mut r, d.x0()..d.x1() - w);
        let y0 = rand::Rng::random_range(&mut r, d.y0()..d.y1() - h);
        queries.push(Rect::new(x0, y0, x0 + w, y0 + h).unwrap());
    }
    // Published through the pipeline: both methods go through exactly
    // the same path a data owner would use.
    let flat = Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::Flat)
        .seed(6)
        .publish()
        .unwrap();
    let ag = Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ag_suggested())
        .seed(7)
        .publish()
        .unwrap();
    let err = |syn: &dyn Synopsis| -> f64 {
        queries
            .iter()
            .map(|q| (syn.answer(q) - index.count(q) as f64).abs())
            .sum::<f64>()
    };
    let flat_err = err(&flat);
    let ag_err = err(&ag);
    assert!(
        ag_err < flat_err * 0.5,
        "AG total abs error {ag_err} not clearly below Flat {flat_err}"
    );
}

#[test]
fn epsilon_is_recorded_on_all_releases() {
    let dataset = PaperDataset::Storage.generate_n(4, 1_000).unwrap();
    for method in all_methods() {
        let rel = Pipeline::new(&dataset)
            .epsilon(0.25)
            .method(method)
            .seed(11)
            .publish()
            .unwrap();
        assert_eq!(rel.epsilon(), 0.25, "{method:?}");
        assert_eq!(rel.metadata().epsilon, 0.25, "{method:?}");
        assert_eq!(rel.method_kind(), Some(&method), "{method:?}");
        assert_eq!(rel.metadata().seed, Some(11), "{method:?}");
    }
}

#[test]
fn cells_partition_domain_for_all_methods() {
    let dataset = PaperDataset::Road.generate_n(5, 2_000).unwrap();
    let domain_area = dataset.domain().area();
    for method in all_methods() {
        let syn = method.build_boxed(&dataset, 1.0, &mut rng(13)).unwrap();
        let cells = syn.cells();
        let area: f64 = cells.iter().map(|(r, _)| r.area()).sum();
        assert!(
            (area - domain_area).abs() < domain_area * 1e-9,
            "{method:?}: cell area {area} vs domain {domain_area}"
        );
    }
}

#[test]
fn synthetic_regeneration_roundtrip() {
    use dpgrid::core::synthetic;
    let dataset = PaperDataset::Landmark.generate_n(6, 20_000).unwrap();
    let release = Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ag_suggested())
        .seed(15)
        .publish()
        .unwrap();
    let synth = synthetic::synthesize(&release, 20_000, &mut rng(16)).unwrap();
    assert_eq!(synth.len(), 20_000);
    assert_eq!(synth.domain(), dataset.domain());
    // Densities correlate: compare 8x8 histograms.
    let g1 = DenseGrid::count(&dataset, 8, 8).unwrap();
    let g2 = DenseGrid::count(&synth, 8, 8).unwrap();
    let (mut dot, mut n1, mut n2) = (0.0, 0.0, 0.0);
    for i in 0..64 {
        let a = g1.values()[i];
        let b = g2.values()[i];
        dot += a * b;
        n1 += a * a;
        n2 += b * b;
    }
    let corr = dot / (n1.sqrt() * n2.sqrt());
    assert!(corr > 0.9, "density correlation {corr}");
}

/// Serialises a release to its canonical JSON bytes.
fn json_bytes(rel: &Release) -> Vec<u8> {
    let mut buf = Vec::new();
    rel.write_json(&mut buf).unwrap();
    buf
}

#[test]
fn seeded_pipeline_is_byte_identical_across_all_variants() {
    // Every registry entry, ablation variants included: publishing
    // twice with the same seed must produce byte-identical JSON.
    let dataset = PaperDataset::Storage.generate_n(7, 1_500).unwrap();
    for method in all_method_variants() {
        let publish = || {
            Pipeline::new(&dataset)
                .epsilon(0.8)
                .method(method)
                .seed(99)
                .publish()
                .unwrap()
        };
        assert_eq!(
            json_bytes(&publish()),
            json_bytes(&publish()),
            "{method:?}: same seed must give identical releases"
        );
    }
}

proptest! {
    /// Determinism is seed- and method-independent: any seed (the
    /// metadata's string wire encoding is lossless over the full u64
    /// range), any registry entry — the same publish twice is the same
    /// bytes.
    #[test]
    fn pipeline_determinism_property(
        seed in any::<u64>(),
        method_idx in 0usize..12,
        eps_scale in 1u32..40,
    ) {
        let dataset = PaperDataset::Checkin.generate_n(8, 1_200).unwrap();
        let method = all_method_variants()[method_idx];
        let epsilon = eps_scale as f64 * 0.05;
        let publish = || {
            Pipeline::new(&dataset)
                .epsilon(epsilon)
                .method(method)
                .seed(seed)
                .publish()
                .unwrap()
        };
        let (a, b) = (publish(), publish());
        prop_assert_eq!(json_bytes(&a), json_bytes(&b));
        // And the recorded metadata survives a JSON round-trip intact.
        let back = Release::read_json(&json_bytes(&a)[..]).unwrap();
        prop_assert_eq!(back.metadata(), a.metadata());
        prop_assert_eq!(back.metadata().seed, Some(seed));
    }
}
